"""Extend-style greedy configuration selection under a byte budget.

The selector walks a neighbourhood of single-knob changes (bin counts,
bitmap dim subsets, zone-map column sets, cache budgets, batch windows,
shard counts) and repeatedly applies the change with the best predicted
pages-decoded improvement *per byte spent*, until no change clears the
marginal-gain threshold -- the shape of Extend's greedy index selection
(SNIPPETS.md snippet 1), with configs in place of index subsets.

Budget handling is monotone **by construction**: the unlimited-budget
greedy path is computed once, and a budget selects the longest prefix
of that path whose absolute spend fits.  Since every step on the path
strictly improves predicted cost and the feasible prefix only grows
with budget, more budget can never predict worse -- the property the
budget-monotonicity tests assert.

:func:`GreedyConfigSelector.select_divergent` extends this to N
replicas: observations are clustered (seeded per workload kind), each
cluster is greedily tuned in isolation, and observations re-assign to
whichever tuned replica predicts cheapest, alternating for a bounded
number of rounds.  The result is a set of deliberately *different*
configs -- e.g. a fine-binned membership specialist next to a zone-map
slab specialist -- plus the assignment the router's cost scoring will
re-derive online.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.tune.config import TuningConfig
from repro.tune.evaluator import CostReplayEvaluator
from repro.tune.trace import TraceObservation

__all__ = [
    "TuningStep",
    "TuningResult",
    "DivergentPlan",
    "GreedyConfigSelector",
]

#: Stop when the best remaining change saves fewer predicted pages than
#: this across the whole trace.
DEFAULT_MIN_GAIN_PAGES = 0.5
#: Hard cap on greedy steps (the neighbourhood is small; this is a
#: runaway guard, not a tuning knob).
DEFAULT_MAX_STEPS = 12

def _cluster_mismatch(config: TuningConfig, observation: TraceObservation) -> int:
    """1 when ``config`` clusters on an axis the query never constrains.

    Fully oblique queries carry no axis bounds, so every config predicts
    the same scan-bound cost for them; this is the tie-break that keeps
    them off specialized layouts (an axis-major table is strictly worse
    at pruning anything that ignores its sort axis).
    """
    cluster = config.cluster_dim
    if cluster is None or cluster not in observation.dims:
        return 0
    axis = observation.dims.index(cluster)
    if math.isfinite(observation.lows[axis]) or math.isfinite(
        observation.highs[axis]
    ):
        return 0
    if cluster in observation.memberships:
        return 0
    return 1


_BIN_CHOICES = (0, 8, 16, 32, 64, 128, 256)
_INDEX_CACHE_CHOICES = (1 << 20, 4 << 20, 16 << 20)
_DECODED_CACHE_CHOICES = (16 << 20, 64 << 20, 128 << 20)
_BATCH_CHOICES = (1, 8, 16)
_SHARD_CHOICES = (0, 2, 4)


@dataclass(frozen=True)
class TuningStep:
    """One accepted greedy move."""

    description: str
    config: TuningConfig
    predicted_pages: float
    spend_bytes: int
    gain_per_byte: float


@dataclass(frozen=True)
class TuningResult:
    """A selected config plus the path that led to it."""

    config: TuningConfig
    baseline_config: TuningConfig
    steps: tuple[TuningStep, ...]
    predicted_pages: float
    baseline_pages: float
    spend_bytes: int
    budget_bytes: int | None

    @property
    def predicted_savings(self) -> float:
        """Fraction of baseline predicted pages removed (0..1)."""
        if self.baseline_pages <= 0:
            return 0.0
        return 1.0 - self.predicted_pages / self.baseline_pages

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "config_id": self.config.config_id(),
            "baseline_config": self.baseline_config.to_dict(),
            "predicted_pages": self.predicted_pages,
            "baseline_pages": self.baseline_pages,
            "predicted_savings": self.predicted_savings,
            "spend_bytes": self.spend_bytes,
            "budget_bytes": self.budget_bytes,
            "steps": [
                {
                    "description": step.description,
                    "predicted_pages": step.predicted_pages,
                    "spend_bytes": step.spend_bytes,
                }
                for step in self.steps
            ],
        }


@dataclass(frozen=True)
class DivergentPlan:
    """N tuned replica configs plus the trace assignment that shaped them."""

    results: tuple[TuningResult, ...]
    #: Per-observation replica index, parallel to the trace it was built from.
    assignment: tuple[int, ...]
    baseline_pages: float
    predicted_pages: float
    rounds: int = 0
    #: Majority replica per workload kind (reporting / routing-share gates).
    kind_replicas: dict[str, int] = field(default_factory=dict)

    @property
    def configs(self) -> tuple[TuningConfig, ...]:
        return tuple(result.config for result in self.results)

    def to_dict(self) -> dict:
        return {
            "replicas": [result.to_dict() for result in self.results],
            "baseline_pages": self.baseline_pages,
            "predicted_pages": self.predicted_pages,
            "predicted_savings": (
                1.0 - self.predicted_pages / self.baseline_pages
                if self.baseline_pages > 0
                else 0.0
            ),
            "rounds": self.rounds,
            "kind_replicas": dict(self.kind_replicas),
        }


class GreedyConfigSelector:
    """Greedy gain-per-byte config search over a trace."""

    def __init__(
        self,
        evaluator: CostReplayEvaluator,
        min_gain_pages: float = DEFAULT_MIN_GAIN_PAGES,
        max_steps: int = DEFAULT_MAX_STEPS,
    ):
        self.evaluator = evaluator
        self.min_gain_pages = min_gain_pages
        self.max_steps = max_steps

    # -- candidate neighbourhood -------------------------------------------

    def _neighbor_changes(
        self, config: TuningConfig, allow_cluster: bool = True
    ) -> list[tuple[str, TuningConfig]]:
        """Single-knob variations of ``config``, deterministically ordered."""
        dims = self.evaluator.profile.dims
        changes: list[tuple[str, TuningConfig]] = []
        for bins in _BIN_CHOICES:
            if bins != config.bitmap_bins:
                changes.append(
                    (f"bitmap_bins={bins}", config.replace(bitmap_bins=bins))
                )
        subsets: list[tuple[str, ...] | None] = [None]
        subsets.extend((dim,) for dim in dims)
        for subset in subsets:
            if subset != config.bitmap_dims:
                label = "*" if subset is None else ",".join(subset)
                changes.append(
                    (f"bitmap_dims={label}", config.replace(bitmap_dims=subset))
                )
        for zone_maps in (True, False):
            if zone_maps != config.zone_maps:
                changes.append(
                    (f"zone_maps={zone_maps}", config.replace(zone_maps=zone_maps))
                )
        zone_sets: list[tuple[str, ...] | None] = [None, tuple(dims)]
        for zone_set in zone_sets:
            if config.zone_maps and zone_set != config.zone_map_columns:
                label = "*" if zone_set is None else ",".join(zone_set)
                changes.append(
                    (
                        f"zone_columns={label}",
                        config.replace(zone_map_columns=zone_set),
                    )
                )
        for shards in _SHARD_CHOICES:
            if shards != config.shards:
                changes.append(
                    (f"shards={shards}", config.replace(shards=shards))
                )
        for budget in _INDEX_CACHE_CHOICES:
            if budget != config.index_cache_bytes:
                changes.append(
                    (
                        f"index_cache={budget >> 20}MB",
                        config.replace(index_cache_bytes=budget),
                    )
                )
        for budget in _DECODED_CACHE_CHOICES:
            if budget != config.decoded_cache_bytes:
                changes.append(
                    (
                        f"decoded_cache={budget >> 20}MB",
                        config.replace(decoded_cache_bytes=budget),
                    )
                )
        for batch in _BATCH_CHOICES:
            if batch != config.batch_size:
                changes.append(
                    (f"batch_size={batch}", config.replace(batch_size=batch))
                )
        if allow_cluster:
            clusters: list[str | None] = [None]
            clusters.extend(dims)
            for cluster in clusters:
                if cluster != config.cluster_dim:
                    changes.append(
                        (
                            f"cluster_dim={cluster or 'kd'}",
                            config.replace(cluster_dim=cluster),
                        )
                    )
        return changes

    # -- greedy path ---------------------------------------------------------

    def greedy_path(
        self,
        trace: Sequence[TraceObservation],
        base: TuningConfig | None = None,
        allow_cluster: bool = True,
    ) -> tuple[TuningConfig, list[TuningStep], float]:
        """Unlimited-budget greedy walk; returns (base, steps, base_pages).

        Every accepted step strictly improves predicted pages; ties in
        gain-per-byte break toward the earlier (deterministically
        ordered) candidate, so the path is a pure function of
        (profile, trace, base) -- the seeded-determinism property.
        """
        base = base or TuningConfig()
        evaluator = self.evaluator
        current = base
        current_pages = evaluator.evaluate(base, trace)["predicted_pages"]
        base_spend = base.memory_bytes(evaluator.profile)
        steps: list[TuningStep] = []
        for _ in range(self.max_steps):
            best: TuningStep | None = None
            for description, candidate in self._neighbor_changes(
                current, allow_cluster=allow_cluster
            ):
                pages = evaluator.evaluate(candidate, trace)["predicted_pages"]
                gain = current_pages - pages
                if gain < self.min_gain_pages:
                    continue
                spend = max(
                    1, candidate.memory_bytes(evaluator.profile) - base_spend
                )
                per_byte = gain / spend
                if best is None or per_byte > best.gain_per_byte:
                    best = TuningStep(
                        description=description,
                        config=candidate,
                        predicted_pages=pages,
                        spend_bytes=spend,
                        gain_per_byte=per_byte,
                    )
            if best is None:
                break
            current = best.config
            current_pages = best.predicted_pages
            steps.append(best)
        return base, steps, evaluator.evaluate(base, trace)["predicted_pages"]

    def select(
        self,
        trace: Sequence[TraceObservation],
        budget_bytes: int | None = None,
        base: TuningConfig | None = None,
        allow_cluster: bool = True,
    ) -> TuningResult:
        """Pick the best config whose spend over ``base`` fits the budget.

        The budget truncates the precomputed greedy path at the first
        step whose *absolute* spend (config memory minus base memory)
        exceeds it.  Larger budgets keep strictly longer prefixes, and
        each step improves cost, so predicted pages are monotone
        non-increasing in budget.
        """
        base, path, base_pages = self.greedy_path(
            trace, base, allow_cluster=allow_cluster
        )
        base_spend = base.memory_bytes(self.evaluator.profile)
        chosen = base
        chosen_pages = base_pages
        taken: list[TuningStep] = []
        for step in path:
            spend = max(
                0, step.config.memory_bytes(self.evaluator.profile) - base_spend
            )
            if budget_bytes is not None and spend > budget_bytes:
                break
            chosen = step.config
            chosen_pages = step.predicted_pages
            taken.append(step)
        return TuningResult(
            config=chosen,
            baseline_config=base,
            steps=tuple(taken),
            predicted_pages=chosen_pages,
            baseline_pages=base_pages,
            spend_bytes=max(
                0, chosen.memory_bytes(self.evaluator.profile) - base_spend
            ),
            budget_bytes=budget_bytes,
        )

    # -- divergent replica selection -----------------------------------------

    def select_divergent(
        self,
        trace: Sequence[TraceObservation],
        num_replicas: int,
        budget_bytes: int | None = None,
        base: TuningConfig | None = None,
        max_rounds: int = 4,
    ) -> DivergentPlan:
        """Tune N deliberately different configs, one per trace cluster.

        Alternating minimization: (1) greedily tune a config for each
        observation subset, (2) reassign every observation to the
        replica whose tuned config predicts cheapest (ties to the lower
        replica id), repeat until the assignment is stable or
        ``max_rounds`` is hit.  Seeding groups by workload kind so
        distinct classes start in distinct clusters; everything after
        that is cost-driven.

        Replica 0 is the **generalist anchor**: it tunes every knob
        except ``cluster_dim``, keeping the base widest-axis kd layout
        (the C-Store rule of thumb -- one copy keeps the full sort
        order).  Queries no specialized layout helps always have a
        competent home, and faulted specialists degrade onto a replica
        that is never pathological for their class.
        """
        base = base or TuningConfig()
        trace = list(trace)
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        evaluator = self.evaluator
        baseline_pages = evaluator.evaluate(base, trace)["predicted_pages"]
        if not trace or num_replicas == 1:
            result = self.select(trace, budget_bytes, base)
            return DivergentPlan(
                results=(result,) * max(1, num_replicas),
                assignment=tuple(0 for _ in trace),
                baseline_pages=baseline_pages,
                predicted_pages=result.predicted_pages,
                rounds=0,
                kind_replicas={obs.kind: 0 for obs in trace},
            )

        # Seed: spread workload kinds across the *specialist* replicas
        # (1..N-1) round-robin, in deterministic sorted-kind order.  The
        # anchor starts empty on purpose -- every kind gets one round in
        # front of the full knob set (cluster_dim included), and the
        # reassignment tie-break drains whatever specialization cannot
        # help back to the anchor.
        kinds = sorted({observation.kind for observation in trace})
        specialists = list(range(1, num_replicas))
        kind_seed = {
            kind: specialists[index % len(specialists)]
            for index, kind in enumerate(kinds)
        }
        assignment = [kind_seed[observation.kind] for observation in trace]

        results: list[TuningResult] = []
        rounds = 0
        for rounds in range(1, max_rounds + 1):
            results = []
            for replica in range(num_replicas):
                subset = [
                    observation
                    for observation, owner in zip(trace, assignment)
                    if owner == replica
                ]
                results.append(
                    self.select(
                        subset, budget_bytes, base,
                        allow_cluster=replica > 0,
                    )
                )
            reassigned = [
                min(
                    range(num_replicas),
                    key=lambda replica: (
                        evaluator.predict_pages(
                            results[replica].config, observation
                        ),
                        _cluster_mismatch(
                            results[replica].config, observation
                        ),
                        replica,
                    ),
                )
                for observation in trace
            ]
            if reassigned == assignment:
                break
            assignment = reassigned

        # Score each replica's final subset with the same evaluate()
        # machinery the baseline used (duplicate-hit discounts included)
        # so the two totals are in identical units.  Duplicates of one
        # fingerprint always share a replica -- identical features score
        # identically -- so the per-subset discount composes cleanly.
        predicted = sum(
            evaluator.evaluate(
                results[replica].config,
                [
                    observation
                    for observation, owner in zip(trace, assignment)
                    if owner == replica
                ],
            )["predicted_pages"]
            for replica in range(num_replicas)
        )
        kind_votes: dict[str, dict[int, int]] = {}
        for observation, owner in zip(trace, assignment):
            kind_votes.setdefault(observation.kind, {})
            kind_votes[observation.kind][owner] = (
                kind_votes[observation.kind].get(owner, 0) + 1
            )
        kind_replicas = {
            kind: max(sorted(votes), key=lambda r: votes[r])
            for kind, votes in kind_votes.items()
        }
        return DivergentPlan(
            results=tuple(results),
            assignment=tuple(assignment),
            baseline_pages=baseline_pages,
            predicted_pages=predicted,
            rounds=rounds,
            kind_replicas=kind_replicas,
        )
