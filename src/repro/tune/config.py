"""Tuning configuration: the knob vector the selector searches over.

A :class:`TuningConfig` names every layout/runtime decision PRs 1-9
made tunable -- shard count, zone-map column subset, bitmap dims +
``num_bins``, index/decoded-page cache budgets, batch window -- in one
frozen value with a stable :meth:`config_id`.  The greedy selector
mutates these one knob at a time; :class:`ReplicaSet` materializes one
table per config; the result cache folds ``config_id`` into
fingerprints so differently-configured replicas never share entries.

``memory_bytes`` is the *budget model*: a deliberately simple,
monotone estimate of the extra resident/storage bytes a config costs
over running with nothing (no bitmaps, no zone maps, zero caches).  It
only has to rank configs consistently for the greedy
gain-per-byte criterion -- it is not an allocator.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.bitmap.index import DEFAULT_BITMAP_BINS
from repro.db.buffer_pool import DEFAULT_DECODED_BYTES, DEFAULT_INDEX_CACHE_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tune.evaluator import TableProfile

__all__ = ["TuningConfig", "default_config"]

#: Rough fixed overhead per extra shard (worker bookkeeping, per-shard
#: buffer-pool floor) charged by the budget model.
_SHARD_OVERHEAD_BYTES = 64 << 10
#: Zone maps store float64 min/max per (page, column).
_ZONE_ENTRY_BYTES = 16


@dataclass(frozen=True)
class TuningConfig:
    """One complete knob assignment for a table replica.

    ``bitmap_dims=None`` means "all coordinate dims"; an empty tuple
    would be rejected by the bitmap builder, so "no bitmap at all" is
    spelled ``bitmap_bins=0``.  ``zone_map_columns=None`` keeps the
    default all-numeric-columns behaviour.  ``cluster_dim`` picks an
    axis-major physical layout (the kd-tree splits that axis at every
    level, so the clustered table ends up sorted by it -- the C-Store
    "different sort order per replica" move); ``None`` keeps the
    default widest-axis median splits.
    """

    shards: int = 0
    bitmap_bins: int = DEFAULT_BITMAP_BINS
    bitmap_dims: tuple[str, ...] | None = None
    zone_maps: bool = True
    zone_map_columns: tuple[str, ...] | None = None
    index_cache_bytes: int = DEFAULT_INDEX_CACHE_BYTES
    decoded_cache_bytes: int = DEFAULT_DECODED_BYTES
    batch_size: int = 1
    cluster_dim: str | None = None

    def __post_init__(self):
        if self.shards and self.shards & (self.shards - 1):
            raise ValueError("shards must be 0 or a power of two")
        if self.bitmap_bins < 0:
            raise ValueError("bitmap_bins must be >= 0")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "bitmap_bins": self.bitmap_bins,
            "bitmap_dims": list(self.bitmap_dims) if self.bitmap_dims else None,
            "zone_maps": self.zone_maps,
            "zone_map_columns": (
                list(self.zone_map_columns) if self.zone_map_columns else None
            ),
            "index_cache_bytes": self.index_cache_bytes,
            "decoded_cache_bytes": self.decoded_cache_bytes,
            "batch_size": self.batch_size,
            "cluster_dim": self.cluster_dim,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TuningConfig":
        return cls(
            shards=int(payload.get("shards", 0)),
            bitmap_bins=int(payload.get("bitmap_bins", DEFAULT_BITMAP_BINS)),
            bitmap_dims=(
                tuple(payload["bitmap_dims"]) if payload.get("bitmap_dims") else None
            ),
            zone_maps=bool(payload.get("zone_maps", True)),
            zone_map_columns=(
                tuple(payload["zone_map_columns"])
                if payload.get("zone_map_columns")
                else None
            ),
            index_cache_bytes=int(
                payload.get("index_cache_bytes", DEFAULT_INDEX_CACHE_BYTES)
            ),
            decoded_cache_bytes=int(
                payload.get("decoded_cache_bytes", DEFAULT_DECODED_BYTES)
            ),
            batch_size=int(payload.get("batch_size", 1)),
            cluster_dim=payload.get("cluster_dim") or None,
        )

    def replace(self, **changes) -> "TuningConfig":
        return replace(self, **changes)

    def config_id(self) -> str:
        """Stable 12-hex identity of the knob assignment.

        Folded into result-cache fingerprints: two replicas with the
        same config share cache entries (their answers are
        interchangeable), two with different configs never do.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha1(canonical.encode()).hexdigest()[:12]

    def describe(self) -> str:
        """One-line human summary for CLI / benchmark output."""
        bitmap = (
            "bitmap=off"
            if not self.bitmap_bins
            else "bitmap[%s]x%d"
            % ("*" if self.bitmap_dims is None else ",".join(self.bitmap_dims),
               self.bitmap_bins)
        )
        zones = (
            "zones=off"
            if not self.zone_maps
            else "zones=%s"
            % ("*" if self.zone_map_columns is None
               else ",".join(self.zone_map_columns))
        )
        cluster = (
            "cluster=kd" if self.cluster_dim is None
            else f"cluster={self.cluster_dim}"
        )
        return (
            f"shards={self.shards} {bitmap} {zones} {cluster} "
            f"icache={self.index_cache_bytes >> 20}MB "
            f"dcache={self.decoded_cache_bytes >> 20}MB "
            f"batch={self.batch_size}"
        )

    # -- budget model -------------------------------------------------------

    def memory_bytes(self, profile: "TableProfile") -> int:
        """Monotone estimate of the bytes this config spends.

        Bitmap cost grows with both the bin count (per-bin bitmap words
        plus summary levels) and the covered dim count; zone maps cost
        16 bytes per page per column; cache budgets count at face
        value; each shard adds a fixed overhead.  Monotonicity in every
        knob is what makes "more budget never predicts worse" provable
        for the greedy prefix selector.
        """
        total = int(self.index_cache_bytes) + int(self.decoded_cache_bytes)
        total += self.shards * _SHARD_OVERHEAD_BYTES
        if self.bitmap_bins:
            dims = (
                len(self.bitmap_dims)
                if self.bitmap_dims is not None
                else len(profile.dims)
            )
            # Sparse word-aligned bitmaps: every row sets exactly one bit
            # per dim (~num_rows/8 bytes across the bins), plus per-bin
            # container + summary-hierarchy overhead that grows with the
            # bin count.
            per_dim = profile.num_rows / 8.0 + self.bitmap_bins * 64.0
            per_dim *= 1.0 + self.bitmap_bins / 512.0
            total += int(dims * per_dim)
        if self.zone_maps:
            columns = (
                len(self.zone_map_columns)
                if self.zone_map_columns is not None
                else profile.num_numeric_columns
            )
            total += _ZONE_ENTRY_BYTES * columns * profile.num_pages
        return total


def default_config() -> TuningConfig:
    """The uniform baseline every tuned config is compared against."""
    return TuningConfig()
