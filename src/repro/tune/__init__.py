"""Workload-driven auto-tuning and divergent replica routing.

The loop: the service records every executed query into a
:class:`~repro.tune.trace.WorkloadTraceRecorder`; the
:class:`~repro.tune.evaluator.CostReplayEvaluator` replays that trace
against candidate :class:`~repro.tune.config.TuningConfig` values
without executing a single query; the
:class:`~repro.tune.selector.GreedyConfigSelector` walks the candidate
space under a byte budget; and the winning configs materialize as a
divergent :class:`~repro.tune.replicas.ReplicaSet` fronted by a
:class:`~repro.tune.replicas.ReplicaRouter`.
"""

from repro.tune.config import TuningConfig, default_config
from repro.tune.evaluator import CostReplayEvaluator, TableProfile
from repro.tune.replicas import Replica, ReplicaRouter, ReplicaSet, ReplicaSpec
from repro.tune.selector import (
    DivergentPlan,
    GreedyConfigSelector,
    TuningResult,
    TuningStep,
)
from repro.tune.trace import (
    TraceObservation,
    WorkloadTraceRecorder,
    observation_from_query,
    read_trace,
    write_trace,
)

__all__ = [
    "CostReplayEvaluator",
    "DivergentPlan",
    "GreedyConfigSelector",
    "Replica",
    "ReplicaRouter",
    "ReplicaSet",
    "ReplicaSpec",
    "TableProfile",
    "TraceObservation",
    "TuningConfig",
    "TuningResult",
    "TuningStep",
    "WorkloadTraceRecorder",
    "default_config",
    "observation_from_query",
    "read_trace",
    "write_trace",
]
