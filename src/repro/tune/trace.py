"""Workload trace capture: the observations the auto-tuner learns from.

Every executed query leaves one compact :class:`TraceObservation` behind
-- a normalized fingerprint, the per-axis slab the query constrained,
its IN-list values, the engine the planner chose, predicted vs. actual
pages decoded, and wall time.  Observations land in a *bounded* in-memory
ring (old entries fall off; a service that runs for days keeps a
recent-window trace, not an unbounded log) and round-trip through JSONL
so a trace captured from a live replay can feed ``python -m repro tune``
offline.

The features deliberately mirror what the cost models can actually use:
axis-aligned bounds (:func:`repro.bitmap.index.axis_bounds`) and
membership value lists are exactly the inputs of the kd, scan, zone-map,
and bitmap cost formulas, so the
:class:`~repro.tune.evaluator.CostReplayEvaluator` can re-score a
recorded query under a *different* configuration without re-executing
it.  Oblique halfspaces contribute nothing to any index's pruning and
are represented only by what they leave behind (their bounding slab).

Recording is fed by two hooks: :class:`~repro.core.planner.QueryPlanner`
records around its own engine dispatch (solo and batched), and the
service executor records for engines that do not record themselves
(e.g. a sharded scatter-gather engine).  Cache hits execute nothing and
are not recorded.
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.bitmap.index import axis_bounds
from repro.geometry.halfspace import Polyhedron
from repro.service.result_cache import query_fingerprint

__all__ = [
    "DEFAULT_TRACE_CAPACITY",
    "TraceObservation",
    "WorkloadTraceRecorder",
    "classify_query",
    "read_trace",
    "write_trace",
]

#: Ring capacity: enough to cover a long replay window while bounding a
#: perpetually serving process to a few MB of observations.
DEFAULT_TRACE_CAPACITY = 4096


def classify_query(
    polyhedron: Polyhedron | None,
    memberships: dict | None,
    lows: Sequence[float],
    highs: Sequence[float],
) -> str:
    """Coarse workload-class label for one query.

    ``membership`` (IN-list probes) dominates, then ``oblique`` (any
    multi-coefficient halfspace -- no index prunes on it), then ``box``
    (at least one finite axis bound) and ``full`` (unconstrained).  The
    label is a reporting/clustering convenience; the evaluator scores
    from the numeric features, never from the label.
    """
    if memberships:
        return "membership"
    if polyhedron is not None:
        for halfspace in polyhedron.halfspaces:
            if len(np.flatnonzero(halfspace.normal)) > 1:
                return "oblique"
    if any(math.isfinite(v) for v in lows) or any(math.isfinite(v) for v in highs):
        return "box"
    return "full"


@dataclass(frozen=True)
class TraceObservation:
    """One executed query, reduced to what the cost models consume."""

    #: Normalized layout-independent query fingerprint (dedup / repeats).
    fingerprint: str
    #: Workload-class label (``membership`` / ``box`` / ``oblique`` / ``full``).
    kind: str
    #: Coordinate columns the bounds refer to, in axis order.
    dims: tuple[str, ...]
    #: Per-axis lower bounds implied by axis-aligned halfspaces (-inf = free).
    lows: tuple[float, ...]
    #: Per-axis upper bounds (+inf = free).
    highs: tuple[float, ...]
    #: IN-list predicates: column -> sorted distinct probe values.
    memberships: dict[str, tuple[float, ...]] = field(default_factory=dict)
    #: Engine that served the query (``kdtree``/``scan``/``bitmap``/``hybrid``).
    engine: str = ""
    #: The planner's calibrated pages-decoded prediction for that engine.
    predicted_pages: float = float("nan")
    #: Pages actually decoded.
    actual_pages: int = 0
    wall_s: float = 0.0
    estimated_selectivity: float = float("nan")
    actual_selectivity: float = float("nan")
    rows_returned: int = 0
    #: Which replica served it (empty on a single-table engine).
    replica: str = ""

    def constrained_axes(self) -> list[int]:
        """Axis indices with at least one finite bound."""
        return [
            axis
            for axis in range(len(self.dims))
            if math.isfinite(self.lows[axis]) or math.isfinite(self.highs[axis])
        ]

    # -- JSONL round-trip ---------------------------------------------------

    def to_json_dict(self) -> dict:
        """JSON-safe form (inf/nan encoded as ``None``)."""

        def _num(value: float):
            return float(value) if math.isfinite(value) else None

        return {
            "fp": self.fingerprint,
            "kind": self.kind,
            "dims": list(self.dims),
            "lows": [_num(v) for v in self.lows],
            "highs": [_num(v) for v in self.highs],
            "in": {col: list(vals) for col, vals in self.memberships.items()},
            "engine": self.engine,
            "pred_pages": _num(self.predicted_pages),
            "pages": int(self.actual_pages),
            "wall_s": float(self.wall_s),
            "est_sel": _num(self.estimated_selectivity),
            "act_sel": _num(self.actual_selectivity),
            "rows": int(self.rows_returned),
            "replica": self.replica,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "TraceObservation":
        """Inverse of :meth:`to_json_dict`."""
        lows = tuple(
            float("-inf") if v is None else float(v) for v in payload["lows"]
        )
        highs = tuple(
            float("inf") if v is None else float(v) for v in payload["highs"]
        )

        def _num(value, default=float("nan")):
            return default if value is None else float(value)

        return cls(
            fingerprint=payload["fp"],
            kind=payload["kind"],
            dims=tuple(payload["dims"]),
            lows=lows,
            highs=highs,
            memberships={
                col: tuple(float(v) for v in vals)
                for col, vals in payload.get("in", {}).items()
            },
            engine=payload.get("engine", ""),
            predicted_pages=_num(payload.get("pred_pages")),
            actual_pages=int(payload.get("pages", 0)),
            wall_s=float(payload.get("wall_s", 0.0)),
            estimated_selectivity=_num(payload.get("est_sel")),
            actual_selectivity=_num(payload.get("act_sel")),
            rows_returned=int(payload.get("rows", 0)),
            replica=payload.get("replica", ""),
        )


def observation_from_query(
    table_name: str,
    dims: Sequence[str],
    polyhedron: Polyhedron | None,
    memberships: dict | None,
    planned,
    wall_s: float,
    replica: str = "",
) -> TraceObservation:
    """Reduce one executed :class:`PlannedQuery` to a trace observation."""
    dims = tuple(dims)
    if polyhedron is not None:
        lows, highs = axis_bounds(polyhedron, len(dims))
        fingerprint = query_fingerprint(
            table_name,
            list(dims),
            polyhedron,
            index_name="trace",
            layout_version="",
            memberships=memberships,
        )
    else:  # pragma: no cover - every engine path passes a polyhedron
        lows = np.full(len(dims), -np.inf)
        highs = np.full(len(dims), np.inf)
        fingerprint = f"trace:{table_name}:none"
    member_values = {
        col: tuple(np.unique(np.asarray(values, dtype=np.float64)).tolist())
        for col, values in (memberships or {}).items()
    }
    stats = planned.stats
    predicted = float(stats.extra.get(f"cost_{planned.chosen_path}", float("nan")))
    return TraceObservation(
        fingerprint=fingerprint,
        kind=classify_query(polyhedron, memberships, lows, highs),
        dims=dims,
        lows=tuple(float(v) for v in lows),
        highs=tuple(float(v) for v in highs),
        memberships=member_values,
        engine=planned.chosen_path,
        predicted_pages=predicted,
        actual_pages=int(stats.pages_touched),
        wall_s=float(wall_s),
        estimated_selectivity=float(planned.estimated_selectivity),
        actual_selectivity=float(
            getattr(planned, "actual_selectivity", float("nan"))
        ),
        rows_returned=int(stats.rows_returned),
        replica=replica,
    )


class WorkloadTraceRecorder:
    """Thread-safe bounded ring of :class:`TraceObservation` entries.

    ``record`` is called from planner worker threads on the query hot
    path, so it does only the feature reduction and a deque append; all
    aggregation happens at read time.  ``recorded`` counts every
    observation ever seen (including ones the ring has since evicted).
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY):
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque[TraceObservation] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.recorded = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def record(
        self,
        table_name: str,
        dims: Sequence[str],
        polyhedron: Polyhedron | None,
        memberships: dict | None,
        planned,
        wall_s: float,
        replica: str = "",
    ) -> TraceObservation:
        """Fold one executed query into the ring; returns the observation."""
        observation = observation_from_query(
            table_name, dims, polyhedron, memberships, planned, wall_s, replica
        )
        with self._lock:
            self._ring.append(observation)
            self.recorded += 1
        return observation

    def extend(self, observations: Iterable[TraceObservation]) -> None:
        """Append pre-built observations (trace import)."""
        with self._lock:
            for observation in observations:
                self._ring.append(observation)
                self.recorded += 1

    def observations(self) -> list[TraceObservation]:
        """Snapshot of the ring contents, oldest first."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        """Drop the ring (the ``recorded`` total is kept)."""
        with self._lock:
            self._ring.clear()

    def kind_counts(self) -> dict[str, int]:
        """Observations per workload class (reporting)."""
        counts: dict[str, int] = {}
        for observation in self.observations():
            counts[observation.kind] = counts.get(observation.kind, 0) + 1
        return counts

    def export_jsonl(self, path: str | Path) -> int:
        """Write the ring as JSON-lines; returns the line count."""
        return write_trace(path, self.observations())

    def tagged(self, replica: str) -> "_TaggedRecorder":
        """A view that stamps ``replica`` on everything it records."""
        return _TaggedRecorder(self, replica)


class _TaggedRecorder:
    """Thin recorder facade that pins the ``replica`` tag (router use)."""

    def __init__(self, recorder: WorkloadTraceRecorder, replica: str):
        self._recorder = recorder
        self.replica = replica

    def record(self, table_name, dims, polyhedron, memberships, planned, wall_s, replica=""):
        return self._recorder.record(
            table_name, dims, polyhedron, memberships, planned, wall_s,
            replica=replica or self.replica,
        )


def write_trace(path: str | Path, observations: Iterable[TraceObservation]) -> int:
    """Write observations as one JSON object per line; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for observation in observations:
            fh.write(json.dumps(observation.to_json_dict()))
            fh.write("\n")
            count += 1
    return count


def read_trace(path: str | Path) -> list[TraceObservation]:
    """Load a JSONL trace written by :func:`write_trace` (blank lines skipped)."""
    observations: list[TraceObservation] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                observations.append(TraceObservation.from_json_dict(json.loads(line)))
    return observations


def retag(observation: TraceObservation, replica: str) -> TraceObservation:
    """Copy an observation with a different replica tag."""
    return replace(observation, replica=replica)
