"""Divergent replicas: N copies of one table, each built to a different
tuned configuration, with cost-scored routing in front.

Classical replication keeps copies identical and buys availability.
Divergent replication (the tuner's output) makes each copy *good at
something*: one replica might carry a fine-binned bitmap over the one
column the membership workload probes, another full zone maps and a big
decoded cache for repeated slab scans.  Every replica holds the same
rows and answers every query exactly -- the configs change page-pruning
power, never answers -- so the :class:`ReplicaRouter` is free to send
each query wherever it is predicted cheapest, and to *degrade* to any
live replica when the preferred one faults.

Builds reuse the existing machinery end to end: an unsharded replica is
a :class:`~repro.core.kdtree.KdTreeIndex` + optional
:class:`~repro.bitmap.index.BitmapIndex` behind a
:class:`~repro.core.planner.QueryPlanner`; a sharded replica goes
through :meth:`~repro.shard.partitioner.KdPartitioner.plan` /
:func:`~repro.shard.partitioner.build_shard` on either transport.
Ingest fans writes to *every* replica through each one's WAL-first
delta path, so replicas stay row-identical between merges.

:class:`ReplicaSpec` is the wire form: JSON-serializable
``(replica_id, table, dims, config)`` records a control plane can ship
to remote builders, mirroring how :class:`ShardSpec` ships shards to
worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bitmap.index import BitmapIndex, axis_bounds
from repro.core.batch import BatchMemberResult, BatchResult
from repro.core.kdtree import KdTreeIndex
from repro.core.planner import PlannedQuery, QueryPlanner
from repro.db.catalog import Database, DatabaseOptions
from repro.db.errors import StorageFault
from repro.db.stats import IOStats
from repro.db.table import DEFAULT_ROWS_PER_PAGE
from repro.geometry.halfspace import Polyhedron
from repro.tune.config import TuningConfig
from repro.tune.evaluator import CostReplayEvaluator, TableProfile
from repro.tune.trace import TraceObservation, classify_query

__all__ = ["Replica", "ReplicaRouter", "ReplicaSet", "ReplicaSpec"]


@dataclass(frozen=True)
class ReplicaSpec:
    """JSON-shippable recipe for one replica (the wire artifact)."""

    replica_id: int
    table: str
    dims: tuple[str, ...]
    config: TuningConfig
    seed: int = 0

    def to_dict(self) -> dict:
        return {
            "replica_id": self.replica_id,
            "table": self.table,
            "dims": list(self.dims),
            "config": self.config.to_dict(),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ReplicaSpec":
        return cls(
            replica_id=int(payload["replica_id"]),
            table=payload["table"],
            dims=tuple(payload["dims"]),
            config=TuningConfig.from_dict(payload["config"]),
            seed=int(payload.get("seed", 0)),
        )


@dataclass
class Replica:
    """One materialized copy: its config and planner-shaped engine."""

    replica_id: int
    config: TuningConfig
    #: A QueryPlanner (unsharded) or ScatterGatherExecutor/worker pool
    #: (sharded) -- anything speaking the engine protocol.
    engine: object
    #: The replica's own database (``None`` for sharded engines, whose
    #: shards each own one).
    database: Database | None = None

    @property
    def tag(self) -> str:
        return f"r{self.replica_id}"

    @property
    def scope(self) -> str:
        """Cache-scope token: replica identity + config identity."""
        return f"r{self.replica_id}:{self.config.config_id()}"


def _build_replica(
    replica_id: int,
    name: str,
    data: dict[str, np.ndarray],
    dims: list[str],
    config: TuningConfig,
    seed: int,
    transport: str,
) -> Replica:
    """Materialize one replica to its config, reusing the shard machinery."""
    bitmap_dims = (
        list(config.bitmap_dims) if config.bitmap_dims is not None else list(dims)
    )
    # A tuned cluster_dim asks for the axis-major kd layout: the tree
    # splits that axis at every level, so the clustered table comes out
    # sorted by it (divergent sort orders across replicas).
    axis_policy = (
        f"prefer:{list(dims).index(config.cluster_dim)}"
        if config.cluster_dim in dims
        else "widest"
    )
    options = DatabaseOptions(
        zone_maps=config.zone_maps,
        zone_map_columns=config.zone_map_columns,
        decoded_cache_bytes=config.decoded_cache_bytes,
        index_cache_bytes=config.index_cache_bytes,
    )
    if config.shards:
        from repro.shard.executor import ScatterGatherExecutor
        from repro.shard.partitioner import (
            KdPartitioner,
            ShardSet,
            build_shard,
        )
        from repro.geometry.boxes import Box

        partitioner = KdPartitioner(config.shards, axis_policy=axis_policy)
        specs = partitioner.plan(
            name,
            data,
            list(dims),
            options=options,
            bitmap_bins=config.bitmap_bins,
            bitmap_dims=config.bitmap_dims,
        )
        if transport == "process":
            engine = ScatterGatherExecutor(
                specs=specs, transport="process", seed=seed + replica_id
            )
        else:
            shards = [build_shard(spec) for spec in specs]
            lo = np.min(np.stack([s.partition_box.lo for s in specs]), axis=0)
            hi = np.max(np.stack([s.partition_box.hi for s in specs]), axis=0)
            shard_set = ShardSet(name, list(dims), shards, Box(lo, hi))
            engine = ScatterGatherExecutor(shard_set, seed=seed + replica_id)
        return Replica(replica_id, config, engine)
    database = options.open()
    index = KdTreeIndex.build(
        database, name, data, list(dims), axis_policy=axis_policy
    )
    if config.bitmap_bins:
        try:
            BitmapIndex.build(
                database,
                name,
                bitmap_dims,
                num_bins=config.bitmap_bins,
                table_dims=list(dims),
            )
        except StorageFault:
            pass  # the replica keeps its kd/scan paths, like a shard would
    planner = QueryPlanner(index, seed=seed + replica_id)
    return Replica(replica_id, config, planner, database=database)


class ReplicaSet:
    """N divergently-configured copies of one table behind one write path.

    Reads go through :class:`ReplicaRouter`; writes come through
    :meth:`insert_rows` / :meth:`delete_by_key`, which fan to every
    replica's existing WAL/delta ingest path so the copies stay
    row-identical (each replica assigns its own internal row ids --
    layouts differ by design, so cross-replica identity is by key
    column, not row id).
    """

    def __init__(self, name: str, dims: list[str], replicas: list[Replica],
                 profile: TableProfile, key_column: str | None = None):
        if not replicas:
            raise ValueError("a replica set needs at least one replica")
        self.name = name
        self.dims = list(dims)
        self.replicas = list(replicas)
        self.profile = profile
        self.key_column = key_column

    @classmethod
    def build(
        cls,
        name: str,
        data: dict[str, np.ndarray],
        dims: Sequence[str],
        configs: Sequence[TuningConfig],
        *,
        seed: int = 0,
        transport: str = "thread",
        key_column: str | None = None,
        profile: TableProfile | None = None,
    ) -> "ReplicaSet":
        """Materialize one replica per config over the same rows."""
        dims = list(dims)
        if not configs:
            raise ValueError("need at least one config")
        num_rows = len(next(iter(data.values())))
        if profile is None:
            profile = TableProfile(
                data, dims, num_rows, DEFAULT_ROWS_PER_PAGE, seed=seed
            )
        replicas = [
            _build_replica(i, name, data, dims, config, seed, transport)
            for i, config in enumerate(configs)
        ]
        return cls(name, dims, replicas, profile, key_column=key_column)

    def specs(self) -> list[ReplicaSpec]:
        """The set's wire form (what a control plane would ship/persist)."""
        return [
            ReplicaSpec(
                replica_id=replica.replica_id,
                table=self.name,
                dims=tuple(self.dims),
                config=replica.config,
            )
            for replica in self.replicas
        ]

    def __len__(self) -> int:
        return len(self.replicas)

    def __iter__(self):
        return iter(self.replicas)

    def __getitem__(self, replica_id: int) -> Replica:
        return self.replicas[replica_id]

    # -- write fan-out -------------------------------------------------------

    def insert_rows(self, data: dict[str, np.ndarray]) -> np.ndarray:
        """Insert into every replica's delta tier; primary's ids returned.

        Each replica WALs and indexes the rows through its own ingest
        path, so merge-on-read sees them everywhere immediately -- the
        regression tests assert rows are visible on all replicas before
        any merge runs.
        """
        ids: np.ndarray | None = None
        for replica in self.replicas:
            engine = replica.engine
            if isinstance(engine, QueryPlanner):
                assigned = engine.index.table.insert_rows(data)
            else:
                assigned = engine.insert_rows(data)
            if ids is None:
                ids = np.asarray(assigned)
        return ids if ids is not None else np.empty(0, dtype=np.int64)

    def delete_by_key(self, values) -> int:
        """Delete rows by key-column membership on every replica.

        Row ids are replica-local (layouts differ), so deletes resolve
        per replica: a membership probe on the key column finds that
        replica's ids, which its tombstone path then removes.  Returns
        the count removed from the first replica.
        """
        if self.key_column is None:
            raise ValueError("delete_by_key needs key_column set at build time")
        values = np.atleast_1d(np.asarray(values))
        trivial = _trivial_polyhedron(len(self.dims))
        removed = 0
        for position, replica in enumerate(self.replicas):
            engine = replica.engine
            planned = engine.execute(
                trivial, memberships={self.key_column: values}
            )
            ids = planned.rows.get("_row_id", np.empty(0, dtype=np.int64))
            if isinstance(engine, QueryPlanner):
                count = engine.index.table.delete_rows(ids)
            else:
                count = engine.delete_rows(ids)
            if position == 0:
                removed = int(count)
        return removed

    def merge_all(self, threshold: float = 0.0) -> None:
        """Fold every replica's delta tier into its main layout."""
        for replica in self.replicas:
            engine = replica.engine
            if isinstance(engine, QueryPlanner):
                replica.database.ingest.merge_all(threshold=threshold)
            else:
                engine.merge(threshold=threshold)

    def close(self) -> None:
        for replica in self.replicas:
            close = getattr(replica.engine, "close", None)
            if callable(close):
                close()


def _trivial_polyhedron(dim: int) -> Polyhedron:
    """An always-true constraint (membership-only queries)."""
    from repro.geometry.halfspace import Halfspace

    normal = np.zeros(dim)
    normal[0] = 1.0
    return Polyhedron([Halfspace(normal, np.inf)])


class ReplicaRouter:
    """Planner-shaped facade that routes each query to its best replica.

    Scoring: replicas whose engine exposes ``predict_cost`` (unsharded
    planners) answer with their calibrated in-memory prediction --
    for the bitmap engine that is the *exact* candidate page count,
    computed from compressed bitmap ANDs before any I/O.  Engines that
    cannot be asked cheaply (process-pool shards) are scored by the
    shared :class:`CostReplayEvaluator` config model instead, so no
    routing decision ever crosses a process boundary.

    Degradation: replicas are tried in ascending predicted cost; a
    :class:`StorageFault` from one moves on to the next live replica.
    Any answer served by a non-preferred replica is flagged
    ``fallback`` and ``no_cache`` -- its fingerprint belongs to the
    preferred replica's cache scope, and a degraded answer must never
    be replayed under it.
    """

    def __init__(self, replica_set: ReplicaSet):
        self.replica_set = replica_set
        self._evaluator = CostReplayEvaluator(replica_set.profile)
        self._routes = {replica.replica_id: 0 for replica in replica_set}
        self._degraded = 0
        self.trace_recorder = None

    # -- engine-protocol identity -------------------------------------------

    @property
    def table_name(self) -> str:
        return self.replica_set.name

    @property
    def dims(self) -> list[str]:
        return list(self.replica_set.dims)

    @property
    def layout_version(self) -> str:
        """Every replica's layout, concatenated: any copy moving (merge,
        repartition, ingest epoch) invalidates cached results."""
        parts = [
            f"{replica.scope}@{getattr(replica.engine, 'layout_version', '')}"
            for replica in self.replica_set
        ]
        return "replicas:" + ";".join(parts)

    # -- scoring -------------------------------------------------------------

    def _query_observation(
        self, polyhedron: Polyhedron | None, memberships
    ) -> TraceObservation:
        """Reduce a live query to the evaluator's feature form."""
        dims = tuple(self.replica_set.dims)
        if polyhedron is not None:
            lows, highs = axis_bounds(polyhedron, len(dims))
        else:
            lows = np.full(len(dims), -np.inf)
            highs = np.full(len(dims), np.inf)
        member_values = {
            col: tuple(np.unique(np.asarray(vals, dtype=np.float64)).tolist())
            for col, vals in (memberships or {}).items()
        }
        return TraceObservation(
            fingerprint="",
            kind=classify_query(polyhedron, memberships, lows, highs),
            dims=dims,
            lows=tuple(float(v) for v in lows),
            highs=tuple(float(v) for v in highs),
            memberships=member_values,
        )

    def score(
        self, polyhedron: Polyhedron, memberships=None
    ) -> dict[int, float]:
        """Predicted pages decoded per replica for one query."""
        observation: TraceObservation | None = None
        scores: dict[int, float] = {}
        for replica in self.replica_set:
            predictor = getattr(replica.engine, "predict_cost", None)
            if callable(predictor):
                try:
                    scores[replica.replica_id] = float(
                        predictor(polyhedron, memberships)
                    )
                    continue
                except StorageFault:
                    pass  # price the sick replica by the config model
            if observation is None:
                observation = self._query_observation(polyhedron, memberships)
            scores[replica.replica_id] = self._evaluator.predict_pages(
                replica.config, observation
            )
        return scores

    def route(self, polyhedron: Polyhedron, memberships=None) -> list[int]:
        """Replica ids in ascending predicted cost (ties: lower id)."""
        scores = self.score(polyhedron, memberships)
        return sorted(scores, key=lambda rid: (scores[rid], rid))

    def routing_report(self) -> dict:
        """Cumulative routing shares and degradation count."""
        return {
            "routes": dict(self._routes),
            "degraded": self._degraded,
        }

    def cache_scope(self, polyhedron: Polyhedron, memberships=None) -> str:
        """The preferred replica's cache-scope token for this query.

        Folded into result-cache fingerprints by the service: results
        are cached *per chosen replica config*, so two replicas never
        share entries even for the same geometric question.
        """
        preferred = self.route(polyhedron, memberships)[0]
        return self.replica_set[preferred].scope

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        polyhedron: Polyhedron,
        cancel_check=None,
        memberships=None,
        exclude: frozenset[int] = frozenset(),
    ) -> PlannedQuery:
        """Route to the cheapest replica, degrading down the order on faults."""
        order = [
            rid for rid in self.route(polyhedron, memberships)
            if rid not in exclude
        ]
        if not order:
            raise StorageFault("no live replica available")
        last_error: StorageFault | None = None
        for position, replica_id in enumerate(order):
            replica = self.replica_set[replica_id]
            try:
                planned = replica.engine.execute(
                    polyhedron, cancel_check=cancel_check, memberships=memberships
                )
            except StorageFault as exc:
                last_error = exc
                continue
            planned.stats.extra["replica_id"] = replica_id
            self._routes[replica_id] = self._routes.get(replica_id, 0) + 1
            if position > 0:
                self._degraded += 1
                planned.fallback = True
                planned.no_cache = True
                if not planned.fallback_reason:
                    planned.fallback_reason = (
                        f"preferred replica {order[0]} faulted; served by "
                        f"replica {replica_id}"
                    )
            return planned
        raise last_error if last_error is not None else StorageFault(
            "all replicas failed"
        )

    def execute_batch(
        self, polyhedra, cancel_checks=None, memberships_list=None
    ) -> BatchResult:
        """Route a micro-batch: members group by preferred replica.

        Each group runs through its replica's own ``execute_batch``
        (shared kd traversals / candidate fetches within the group); a
        group-level or member-level :class:`StorageFault` re-runs the
        member solo through :meth:`execute` with the dead replica
        excluded, so one replica's outage degrades those members instead
        of failing the batch.
        """
        n = len(polyhedra)
        checks = list(cancel_checks) if cancel_checks is not None else [None] * n
        member_filters = (
            list(memberships_list) if memberships_list is not None else [None] * n
        )
        result = BatchResult(
            members=[BatchMemberResult() for _ in range(n)], occupancy=n
        )
        groups: dict[int, list[int]] = {}
        for m in range(n):
            preferred = self.route(polyhedra[m], member_filters[m])[0]
            groups.setdefault(preferred, []).append(m)
        for replica_id in sorted(groups):
            group = groups[replica_id]
            replica = self.replica_set[replica_id]
            batch_runner = getattr(replica.engine, "execute_batch", None)
            if callable(batch_runner):
                try:
                    sub = batch_runner(
                        [polyhedra[m] for m in group],
                        cancel_checks=[checks[m] for m in group],
                        memberships_list=[member_filters[m] for m in group],
                    )
                except StorageFault:
                    self._solo_retry(group, polyhedra, checks, member_filters,
                                     result, exclude=frozenset({replica_id}))
                    continue
                result.pages_decoded += sub.pages_decoded
                result.shared_decode_hits += sub.shared_decode_hits
                retry: list[int] = []
                for m, member in zip(group, sub.members):
                    if member.error is not None and isinstance(
                        member.error, StorageFault
                    ):
                        retry.append(m)
                        continue
                    if member.planned is not None:
                        member.planned.stats.extra["replica_id"] = replica_id
                        self._routes[replica_id] = (
                            self._routes.get(replica_id, 0) + 1
                        )
                    result.members[m] = member
                if retry:
                    self._solo_retry(retry, polyhedra, checks, member_filters,
                                     result, exclude=frozenset({replica_id}))
            else:
                self._solo_retry(group, polyhedra, checks, member_filters,
                                 result, exclude=frozenset())
        return result

    def _solo_retry(self, members, polyhedra, checks, member_filters, result,
                    exclude: frozenset[int]) -> None:
        """Per-member fallback path of :meth:`execute_batch`."""
        for m in members:
            try:
                planned = self.execute(
                    polyhedra[m],
                    cancel_check=checks[m],
                    memberships=member_filters[m],
                    exclude=exclude,
                )
            except BaseException as exc:
                result.members[m].error = exc
                continue
            if exclude:
                planned.fallback = True
                planned.no_cache = True
                if not planned.fallback_reason:
                    planned.fallback_reason = (
                        f"batch replica {sorted(exclude)} faulted"
                    )
            result.members[m].planned = planned

    # -- observability / lifecycle ------------------------------------------

    def attach_trace_recorder(self, recorder) -> None:
        """Wire a workload-trace ring into every planner-backed replica.

        The service checks ``self.trace_recorder`` to avoid recording
        the same execution twice (planners record themselves).
        """
        self.trace_recorder = recorder
        for replica in self.replica_set:
            engine = replica.engine
            if isinstance(engine, QueryPlanner):
                engine.trace_recorder = recorder
                engine.trace_tag = replica.tag

    def counters(self) -> dict[str, int]:
        total: dict[str, int] = {
            f"routed_r{rid}": count for rid, count in sorted(self._routes.items())
        }
        total["degraded"] = self._degraded
        for replica in self.replica_set:
            getter = getattr(replica.engine, "counters", None)
            if callable(getter):
                for key, value in getter().items():
                    total[key] = total.get(key, 0) + value
        return total

    def io_stats(self) -> IOStats:
        total = IOStats()
        for replica in self.replica_set:
            getter = getattr(replica.engine, "io_stats", None)
            if callable(getter):
                stats = getter()
            elif replica.database is not None:
                stats = replica.database.io_stats
            else:
                continue
            total.add(**stats.snapshot().as_dict())
        return total

    def cost_report(self) -> dict:
        """Per-replica planner calibration snapshots (where available)."""
        report = {}
        for replica in self.replica_set:
            getter = getattr(replica.engine, "cost_report", None)
            if callable(getter):
                report[replica.tag] = getter()
        return report

    def close(self) -> None:
        self.replica_set.close()
