"""k-NN classification over the indexed color space (§2.2).

"The color of points in Figure 1 corresponds to the so called spectral
type of the object (star, galaxy or quasar).  This information is
available for less than 1% of the objects ... but classification of all
objects is a crucial task for astronomy."

:class:`KnnClassifier` is the straightforward index-backed solution: a
labeled training table under a kd-tree, majority vote (optionally
distance-weighted) over the boundary-point k-NN result.  It is the
classification twin of the photo-z estimator -- same index, categorical
target.
"""

from __future__ import annotations

import numpy as np

from repro.core.kdtree import KdTreeIndex
from repro.core.knn import knn_boundary_points
from repro.db.catalog import Database

__all__ = ["KnnClassifier"]


class KnnClassifier:
    """Majority-vote k-NN classifier over an indexed training set."""

    def __init__(
        self,
        database: Database,
        training_points: np.ndarray,
        training_labels: np.ndarray,
        k: int = 15,
        weighted: bool = True,
        table_name: str = "knn_training",
    ):
        training_points = np.asarray(training_points, dtype=np.float64)
        training_labels = np.asarray(training_labels)
        if training_points.ndim != 2:
            raise ValueError("training_points must be (n, d)")
        if len(training_points) != len(training_labels):
            raise ValueError("points and labels must align")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.weighted = weighted
        self._dims = [f"x{i}" for i in range(training_points.shape[1])]
        data = {name: training_points[:, i] for i, name in enumerate(self._dims)}
        data["label"] = training_labels.astype(np.int64)
        self._index = KdTreeIndex.build(database, table_name, data, self._dims)

    @property
    def index(self) -> KdTreeIndex:
        """The kd-tree over the training table."""
        return self._index

    def predict_one(self, point: np.ndarray) -> int:
        """Class of one point by (weighted) majority vote."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (len(self._dims),):
            raise ValueError(f"point must have {len(self._dims)} coordinates")
        result = knn_boundary_points(self._index, point, self.k)
        rows = self._index.table.gather(result.row_ids)
        labels = rows["label"]
        if self.weighted:
            weights = 1.0 / np.maximum(result.distances, 1e-12)
        else:
            weights = np.ones(len(labels))
        votes: dict[int, float] = {}
        for label, weight in zip(labels, weights):
            votes[int(label)] = votes.get(int(label), 0.0) + float(weight)
        return max(votes, key=votes.get)

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Classes for ``(n, d)`` points."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return np.array([self.predict_one(p) for p in points], dtype=np.int64)

    def accuracy(self, points: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of correct predictions on a labeled set."""
        labels = np.asarray(labels)
        return float((self.predict(points) == labels).mean())
