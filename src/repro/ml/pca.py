"""Karhunen-Loève transform (principal component analysis).

"It has been shown that the first few principal components of the
Karhunen-Loeve transform is enough to describe most of the physical
characteristics.  Essentially with a principal component transformation
we can create a low (we have chosen 5) dimensional feature vector for
galaxies" (§4.2).  This turns the 3000-dimensional spectrum space into a
feature space the spatial indexes can handle.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PrincipalComponents"]


class PrincipalComponents:
    """PCA fit by SVD of the centered (optionally normalized) sample.

    Parameters
    ----------
    num_components:
        Dimensionality of the feature space (the paper chose 5).
    normalize:
        Scale every input vector to unit L2 norm before centering --
        standard for spectra, where overall flux is brightness, not
        shape, and similarity should be shape-based.
    """

    def __init__(self, num_components: int = 5, normalize: bool = True):
        if num_components < 1:
            raise ValueError("num_components must be >= 1")
        self.num_components = num_components
        self.normalize = normalize
        self._mean: np.ndarray | None = None
        self._components: np.ndarray | None = None
        self._explained_variance: np.ndarray | None = None
        self._total_variance: float = 0.0

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._components is not None

    @property
    def components(self) -> np.ndarray:
        """The ``(num_components, d)`` eigenbasis rows."""
        self._require_fitted()
        return self._components

    @property
    def explained_variance(self) -> np.ndarray:
        """Variance captured by each retained component."""
        self._require_fitted()
        return self._explained_variance

    @property
    def explained_variance_ratio(self) -> np.ndarray:
        """Fraction of total variance captured per component."""
        self._require_fitted()
        if self._total_variance <= 0.0:
            return np.zeros_like(self._explained_variance)
        return self._explained_variance / self._total_variance

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("PrincipalComponents is not fitted")

    def _prepare(self, vectors: np.ndarray) -> np.ndarray:
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ValueError("vectors must be (n, d)")
        if self.normalize:
            norms = np.linalg.norm(vectors, axis=1, keepdims=True)
            norms[norms == 0.0] = 1.0
            vectors = vectors / norms
        return vectors

    def fit(self, vectors: np.ndarray) -> "PrincipalComponents":
        """Estimate the KL basis from a sample."""
        vectors = self._prepare(vectors)
        if len(vectors) < 2:
            raise ValueError("need at least 2 samples")
        if self.num_components > min(vectors.shape):
            raise ValueError(
                f"num_components={self.num_components} exceeds data rank bound "
                f"{min(vectors.shape)}"
            )
        self._mean = vectors.mean(axis=0)
        centered = vectors - self._mean
        _, singular, vt = np.linalg.svd(centered, full_matrices=False)
        variances = singular**2 / (len(vectors) - 1)
        self._components = vt[: self.num_components]
        self._explained_variance = variances[: self.num_components]
        self._total_variance = float(variances.sum())
        return self

    def transform(self, vectors: np.ndarray) -> np.ndarray:
        """Project onto the retained components -> ``(n, num_components)``."""
        self._require_fitted()
        vectors = self._prepare(vectors)
        return (vectors - self._mean) @ self._components.T

    def fit_transform(self, vectors: np.ndarray) -> np.ndarray:
        """Fit then transform the same sample."""
        return self.fit(vectors).transform(vectors)

    def inverse_transform(self, features: np.ndarray) -> np.ndarray:
        """Reconstruct (normalized, mean-added) vectors from features."""
        self._require_fitted()
        features = np.asarray(features, dtype=np.float64)
        return features @ self._components + self._mean

    def reconstruction_error(self, vectors: np.ndarray) -> float:
        """Mean squared residual of projecting and reconstructing."""
        self._require_fitted()
        prepared = self._prepare(vectors)
        reconstructed = self.inverse_transform(self.transform(vectors))
        return float(np.mean((prepared - reconstructed) ** 2))
