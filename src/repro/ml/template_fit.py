"""Template-fitting photometric redshifts: the Figure 7 baseline.

"These template fitting methods are based on the convolution of template
spectra and optical filter transmission curves.  They require a
substantial amount of computation and can only be run offline ...
Another drawback of this technique is the difficulty in calibrating it
to get rid of systematic observational errors" (§4.1).

The estimator precomputes a grid of model magnitudes over (redshift,
galaxy type) by pushing template spectra through the filter bank, then
chi-square-fits each observed object against the grid.  Its systematic
weakness is modeled exactly as it occurs in practice: the observed
photometry carries per-band calibration offsets the templates know
nothing about, so the best-fitting redshift is biased in a
color-dependent way -- the "large scatter" of Figure 7.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.spectra import FilterBank, SpectrumTemplates

__all__ = ["TemplateFitEstimator"]


class TemplateFitEstimator:
    """Grid chi-square template fitting over (z, type)."""

    def __init__(
        self,
        templates: SpectrumTemplates | None = None,
        filters: FilterBank | None = None,
        z_grid: np.ndarray | None = None,
        type_grid: np.ndarray | None = None,
        magnitude_error: float = 0.05,
    ):
        self.templates = templates or SpectrumTemplates()
        self.filters = filters or FilterBank(self.templates.wavelengths)
        self.z_grid = (
            np.linspace(0.0, 0.55, 56) if z_grid is None else np.asarray(z_grid, float)
        )
        self.type_grid = (
            np.linspace(0.0, 1.0, 9) if type_grid is None else np.asarray(type_grid, float)
        )
        if magnitude_error <= 0:
            raise ValueError("magnitude_error must be positive")
        self.magnitude_error = magnitude_error
        self._model_mags, self._model_z = self._precompute()

    def _precompute(self) -> tuple[np.ndarray, np.ndarray]:
        """Model magnitudes over the (z, type) grid -- the offline step.

        The paper's numbers for scale: "the total computation on a 28
        processor Blade server took almost 10 days" at 270M objects;
        here the grid is small and cached once.
        """
        models = []
        redshifts = []
        for z in self.z_grid:
            for mix in self.type_grid:
                spectrum = self.templates.galaxy_blend(float(mix), z=float(z))
                models.append(self.filters.magnitudes(spectrum))
                redshifts.append(z)
        return np.array(models), np.array(redshifts)

    @property
    def grid_size(self) -> int:
        """Number of (z, type) grid models."""
        return len(self._model_z)

    def estimate_one(self, magnitudes: np.ndarray) -> float:
        """Chi-square best-fit redshift of one object.

        An overall magnitude offset (the unknown luminosity / distance
        normalization) is profiled out analytically, as real template
        fitters do: only colors constrain the fit.
        """
        magnitudes = np.asarray(magnitudes, dtype=np.float64)
        if magnitudes.shape != (5,):
            raise ValueError("magnitudes must be a length-5 ugriz vector")
        residual = magnitudes - self._model_mags
        offset = residual.mean(axis=1, keepdims=True)
        chi2 = np.sum(((residual - offset) / self.magnitude_error) ** 2, axis=1)
        return float(self._model_z[int(np.argmin(chi2))])

    def estimate(self, magnitudes: np.ndarray) -> np.ndarray:
        """Best-fit redshifts for many objects, ``(n, 5)`` -> ``(n,)``."""
        magnitudes = np.atleast_2d(np.asarray(magnitudes, dtype=np.float64))
        return np.array([self.estimate_one(row) for row in magnitudes])
