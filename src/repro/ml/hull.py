"""Convex-hull similarity queries (§2.2).

"Automatic clustering, finding similar objects with drawing a convex
hull around the training set or finding nearest neighbors in the color
space are a few other typical problems astronomers need to solve."

:class:`ConvexHullSelector` turns a labeled training set into the
polyhedron query the paper describes: the convex hull of the training
points (QHull facets -> halfspaces, optionally padded), evaluated
through any spatial index.  This is exactly how "find everything that
looks like these confirmed quasars" runs server-side.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import ConvexHull

from repro.core.index_base import SpatialIndex
from repro.db.stats import QueryStats
from repro.geometry.halfspace import Halfspace, Polyhedron

__all__ = ["ConvexHullSelector"]


class ConvexHullSelector:
    """The convex hull of a training set, as an index-executable query.

    Parameters
    ----------
    training_points:
        ``(m, d)`` examples with ``m >= d + 1`` in general position.
    margin:
        Outward padding of every facet (in the same units as the data):
        a small positive margin admits objects just outside the hull of
        a finite training sample, the usual practice.
    """

    def __init__(self, training_points: np.ndarray, margin: float = 0.0):
        training_points = np.asarray(training_points, dtype=np.float64)
        if training_points.ndim != 2:
            raise ValueError("training_points must be (m, d)")
        m, dim = training_points.shape
        if m < dim + 1:
            raise ValueError(f"need at least d + 1 = {dim + 1} training points")
        if margin < 0:
            raise ValueError("margin must be >= 0")
        self.dim = dim
        self.margin = margin
        self._hull = ConvexHull(training_points, qhull_options="QJ")
        # QHull equations are (normal, offset) with normal . x + offset <= 0
        # inside; normals are unit length, so the margin is a plain shift.
        halfspaces = [
            Halfspace(eq[:-1], -eq[-1] + margin) for eq in self._hull.equations
        ]
        self.polyhedron = Polyhedron(halfspaces)

    @property
    def num_facets(self) -> int:
        """Facet count of the (padded) hull."""
        return len(self.polyhedron)

    @property
    def hull_volume(self) -> float:
        """Volume of the unpadded hull (QHull's measure)."""
        return float(self._hull.volume)

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Membership mask without touching any index."""
        return self.polyhedron.contains_points(np.asarray(points, dtype=np.float64))

    def select(self, index: SpatialIndex) -> tuple[dict, QueryStats]:
        """Run the hull as a polyhedron query through a spatial index."""
        if len(index.dims) != self.dim:
            raise ValueError(
                f"index has {len(index.dims)} dims, hull has {self.dim}"
            )
        return index.query_polyhedron(self.polyhedron)
