"""Analysis algorithms: the paper's scientific applications (§4).

* :mod:`repro.ml.pca` -- Karhunen-Loève transform: "the first few
  principal components ... is enough to describe most of the physical
  characteristics" (§4.2), turning 3000-dim spectra into 5-dim feature
  vectors.
* :mod:`repro.ml.polyfit` -- multi-parameter general linear least
  squares (the Numerical-Recipes-style fit the paper's CLR procedure
  runs), used for the local polynomial photo-z estimate.
* :mod:`repro.ml.photoz` -- the k-NN + local polynomial photometric
  redshift estimator (Figure 8).
* :mod:`repro.ml.template_fit` -- the template-fitting baseline with its
  calibration-systematics weakness (Figure 7).
* :mod:`repro.ml.bst` -- Basin Spanning Tree clustering from Voronoi
  cell densities (Figure 6).
* :mod:`repro.ml.evaluate` -- metrics: cluster/class agreement,
  regression error, retrieval precision.
"""

from repro.ml.pca import PrincipalComponents
from repro.ml.polyfit import PolynomialFeatures, general_least_squares
from repro.ml.photoz import KnnPolyRedshiftEstimator
from repro.ml.template_fit import TemplateFitEstimator
from repro.ml.bst import (
    basin_spanning_tree,
    clusters_from_parents,
    merge_small_clusters,
    smooth_densities,
)
from repro.ml.classify import KnnClassifier
from repro.ml.hull import ConvexHullSelector
from repro.ml.outliers import (
    KdTreeOutlierDetector,
    VoronoiOutlierDetector,
    flag_fraction,
)
from repro.ml.evaluate import (
    cluster_class_agreement,
    regression_report,
    retrieval_precision,
)

__all__ = [
    "PrincipalComponents",
    "PolynomialFeatures",
    "general_least_squares",
    "KnnPolyRedshiftEstimator",
    "TemplateFitEstimator",
    "basin_spanning_tree",
    "clusters_from_parents",
    "merge_small_clusters",
    "smooth_densities",
    "ConvexHullSelector",
    "KnnClassifier",
    "KdTreeOutlierDetector",
    "VoronoiOutlierDetector",
    "flag_fraction",
    "cluster_class_agreement",
    "regression_report",
    "retrieval_precision",
]
