"""Basin Spanning Tree clustering (§4, Figure 6).

"We used the volumes of Voronoi cells to find density peaks (small cell
volume means large local density), and connected each cell to one
neighbor, the one with the largest density.  Continuing this as a
gradient process we separate density clusters."

The BST is a forest over the Voronoi cells: every cell points to its
densest neighbor when that neighbor is denser than itself, and is a root
(a density peak) otherwise.  Connected components of the forest are the
clusters; each data point inherits its cell's cluster.  Against the
subset with known spectral classes the paper reports 92% agreement.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "basin_spanning_tree",
    "clusters_from_parents",
    "merge_small_clusters",
    "smooth_densities",
]


def smooth_densities(
    densities: np.ndarray,
    neighbors: Callable[[int], Sequence[int]],
    rounds: int = 1,
) -> np.ndarray:
    """Average densities with Delaunay neighbors, ``rounds`` times.

    Raw per-cell densities (points / estimated cell volume) carry
    shot noise that creates spurious local peaks; the BST's gradient
    process presumes a smooth density field, so a round or two of
    neighbor averaging before building the tree recovers the paper's
    behaviour at small points-per-cell ratios.
    """
    densities = np.asarray(densities, dtype=np.float64).copy()
    for _ in range(rounds):
        smoothed = densities.copy()
        for cell in range(len(densities)):
            nbrs = list(neighbors(cell))
            if nbrs:
                total = densities[cell] + sum(densities[int(j)] for j in nbrs)
                smoothed[cell] = total / (len(nbrs) + 1)
        densities = smoothed
    return densities


def basin_spanning_tree(
    densities: np.ndarray,
    neighbors: Callable[[int], Sequence[int]],
) -> np.ndarray:
    """Parent pointers of the basin spanning tree.

    Parameters
    ----------
    densities:
        Per-cell density estimates (e.g. points / Voronoi volume).
    neighbors:
        Adjacency accessor -- typically
        ``lambda i: graph.neighbors(i)`` over a
        :class:`repro.tessellation.DelaunayGraph`.

    Returns
    -------
    ``parents`` with ``parents[i] = j`` (the densest strictly denser
    neighbor) or ``parents[i] = i`` for density peaks.  Ties in density
    are broken toward the lower index so the gradient process cannot
    cycle.
    """
    densities = np.asarray(densities, dtype=np.float64)
    n = len(densities)
    parents = np.arange(n, dtype=np.int64)
    for cell in range(n):
        best = cell
        best_density = densities[cell]
        for raw in neighbors(cell):
            other = int(raw)
            denser = densities[other] > best_density or (
                densities[other] == best_density and other < best
            )
            if denser:
                best = other
                best_density = densities[other]
        parents[cell] = best
    return parents


def clusters_from_parents(parents: np.ndarray) -> np.ndarray:
    """Cluster labels = index of the density peak each cell drains to.

    Follows parent pointers with path compression; labels are peak cell
    indices (roots), so the number of distinct labels is the number of
    density peaks.
    """
    parents = np.asarray(parents, dtype=np.int64)
    labels = np.full(len(parents), -1, dtype=np.int64)

    for start in range(len(parents)):
        if labels[start] != -1:
            continue
        path = []
        node = start
        while labels[node] == -1 and parents[node] != node:
            path.append(node)
            node = int(parents[node])
        root = labels[node] if labels[node] != -1 else node
        labels[node] = root
        for visited in path:
            labels[visited] = root
    return labels


def merge_small_clusters(
    labels: np.ndarray,
    densities: np.ndarray,
    neighbors: Callable[[int], Sequence[int]],
    min_size: int,
) -> np.ndarray:
    """Absorb clusters smaller than ``min_size`` into a neighboring basin.

    Small basins (noise peaks) are reassigned to the cluster of their
    densest outside neighbor, iterating until every cluster clears the
    threshold or nothing changes.  This is the practical knob real
    density-peak pipelines add on top of the raw BST.
    """
    labels = np.asarray(labels, dtype=np.int64).copy()
    densities = np.asarray(densities, dtype=np.float64)
    for _ in range(len(labels)):
        unique, counts = np.unique(labels, return_counts=True)
        small = {int(u) for u, c in zip(unique, counts) if c < min_size}
        if not small:
            break
        changed = False
        for cluster in small:
            members = np.flatnonzero(labels == cluster)
            target, target_density = -1, -np.inf
            for cell in members:
                for raw in neighbors(int(cell)):
                    other = int(raw)
                    if labels[other] != cluster and densities[other] > target_density:
                        target, target_density = labels[other], densities[other]
            if target >= 0:
                labels[members] = target
                changed = True
        if not changed:
            break
    return labels
