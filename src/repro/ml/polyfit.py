"""Multi-parameter general linear least squares.

"The polynomial fit requires some intensive math calculation, including
matrix inversion that would be prohibitive to do with native SQL ...
This procedure uses a multi-parameter general least square fit code
written in C# [Numerical Recipes]" (§4.1).  This module is that fit:
polynomial feature expansion plus an SVD-based solver (the numerically
robust formulation NR recommends for general linear least squares).
"""

from __future__ import annotations

from itertools import combinations_with_replacement

import numpy as np

__all__ = ["PolynomialFeatures", "general_least_squares"]


class PolynomialFeatures:
    """Multivariate polynomial design matrix up to a total degree.

    Terms are every monomial ``prod(x_i^{e_i})`` with
    ``sum(e_i) <= degree``, including the constant; e.g. degree 2 over
    (a, b) yields [1, a, b, a^2, ab, b^2].
    """

    def __init__(self, degree: int = 1):
        if degree < 0:
            raise ValueError("degree must be >= 0")
        self.degree = degree
        self._dim: int | None = None
        self._exponents: list[tuple[int, ...]] = []

    def num_terms(self, dim: int) -> int:
        """Number of monomials for a given input dimension."""
        self._build(dim)
        return len(self._exponents)

    def _build(self, dim: int) -> None:
        if self._dim == dim:
            return
        exponents: list[tuple[int, ...]] = []
        for total in range(self.degree + 1):
            for combo in combinations_with_replacement(range(dim), total):
                exp = [0] * dim
                for axis in combo:
                    exp[axis] += 1
                exponents.append(tuple(exp))
        self._dim = dim
        self._exponents = exponents

    def design_matrix(self, x: np.ndarray) -> np.ndarray:
        """Evaluate all monomials at each row of ``x``."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        self._build(x.shape[1])
        columns = []
        for exponent in self._exponents:
            col = np.ones(len(x))
            for axis, power in enumerate(exponent):
                if power:
                    col = col * x[:, axis] ** power
            columns.append(col)
        return np.column_stack(columns)


def general_least_squares(
    design: np.ndarray,
    target: np.ndarray,
    weights: np.ndarray | None = None,
    rcond: float = 1e-10,
) -> np.ndarray:
    """Solve ``design @ coeffs ~= target`` by SVD (NR's svdfit).

    Parameters
    ----------
    weights:
        Optional per-row weights (inverse variances); rows are scaled by
        ``sqrt(weight)`` before solving.
    rcond:
        Singular values below ``rcond * max_singular`` are zeroed --
        NR's prescription for near-degenerate design matrices (which the
        local photo-z fit hits whenever the neighbors are collinear in
        color space).
    """
    design = np.asarray(design, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if design.ndim != 2 or target.ndim != 1 or len(design) != len(target):
        raise ValueError("design must be (n, p) and target (n,)")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != target.shape:
            raise ValueError("weights must align with target")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        scale = np.sqrt(weights)
        design = design * scale[:, np.newaxis]
        target = target * scale
    u, singular, vt = np.linalg.svd(design, full_matrices=False)
    cutoff = rcond * (singular[0] if len(singular) else 0.0)
    inv = np.where(singular > cutoff, 1.0 / np.maximum(singular, 1e-300), 0.0)
    return vt.T @ (inv * (u.T @ target))
