"""Evaluation metrics for the scientific applications."""

from __future__ import annotations

import numpy as np

__all__ = ["cluster_class_agreement", "regression_report", "retrieval_precision"]


def cluster_class_agreement(
    cluster_labels: np.ndarray, true_classes: np.ndarray
) -> float:
    """Fraction of objects whose cluster's majority class matches theirs.

    This is the paper's Figure 6 metric: "for 100K objects with a priori
    spectral classes 92% of objects were classified correctly" -- each
    unsupervised cluster is named after its majority spectral class,
    and the agreement is the fraction of objects carrying that name
    correctly.
    """
    cluster_labels = np.asarray(cluster_labels)
    true_classes = np.asarray(true_classes)
    if cluster_labels.shape != true_classes.shape:
        raise ValueError("label arrays must align")
    if len(cluster_labels) == 0:
        return 0.0
    correct = 0
    for cluster in np.unique(cluster_labels):
        members = true_classes[cluster_labels == cluster]
        _, counts = np.unique(members, return_counts=True)
        correct += int(counts.max())
    return correct / len(cluster_labels)


def regression_report(
    estimated: np.ndarray, truth: np.ndarray
) -> dict[str, float]:
    """RMS error, mean bias, median absolute error, and outlier rate.

    The Figure 7 vs Figure 8 comparison is about the scatter of
    estimated-vs-true redshift around the diagonal; ``rms`` is the
    headline number ("average error decreased by more than 50%").
    """
    estimated = np.asarray(estimated, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimated.shape != truth.shape:
        raise ValueError("arrays must align")
    residual = estimated - truth
    rms = float(np.sqrt(np.mean(residual**2)))
    return {
        "rms": rms,
        "bias": float(residual.mean()),
        "median_abs": float(np.median(np.abs(residual))),
        "outlier_rate": float(np.mean(np.abs(residual) > 0.1)),
        "n": float(len(truth)),
    }


def retrieval_precision(
    query_classes: np.ndarray, retrieved_classes: np.ndarray
) -> float:
    """Same-class precision of a similarity search.

    ``retrieved_classes`` is ``(n_queries, k)``: the classes of the top-k
    matches per query (Figures 9 and 10 show the top-2).  Returns the
    fraction of retrieved items sharing the query's class.
    """
    query_classes = np.asarray(query_classes)
    retrieved_classes = np.atleast_2d(np.asarray(retrieved_classes))
    if len(query_classes) != len(retrieved_classes):
        raise ValueError("one row of retrievals per query")
    if retrieved_classes.size == 0:
        return 0.0
    matches = retrieved_classes == query_classes[:, np.newaxis]
    return float(matches.mean())
