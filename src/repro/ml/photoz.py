"""k-NN + local polynomial photometric redshift estimation (§4.1, Fig. 8).

The paper's pseudo code, verbatim::

    foreach (Galaxy g in UnknownSet) {
        neighbors    = NearestNeighbors(g, ReferenceSet)
        polynomCoeffs = FitPolynomial(neighbors.Colors, neighbors.Redshifts)
        g.Redshift   = Estimate(g.Colors, polynomCoeffs)
    }

``NearestNeighbors`` runs through the kd-tree index of §3.3 (the
reference set lives in an engine table, clustered by kd-leaf), and
``FitPolynomial`` is the general least squares of
:mod:`repro.ml.polyfit`.  "Instead of using the average, a local low
order polynomial fit over the neighbors gives a better estimate."
"""

from __future__ import annotations

import numpy as np

from repro.core.kdtree import KdTreeIndex
from repro.core.knn import knn_boundary_points
from repro.db.catalog import Database
from repro.ml.polyfit import PolynomialFeatures, general_least_squares

__all__ = ["KnnPolyRedshiftEstimator"]

_BANDS = ("u", "g", "r", "i", "z")


class KnnPolyRedshiftEstimator:
    """Non-parametric photo-z estimator over an indexed reference set.

    Parameters
    ----------
    k:
        Neighbors per estimate (enough to constrain the polynomial).
    degree:
        Local polynomial degree; the paper's "low order" -- 1 (linear)
        or 2 (quadratic) are sensible; 0 degrades to the plain k-NN mean.
    """

    def __init__(
        self,
        database: Database,
        reference_magnitudes: np.ndarray,
        reference_redshifts: np.ndarray,
        k: int = 32,
        degree: int = 1,
        table_name: str = "photoz_reference",
    ):
        reference_magnitudes = np.asarray(reference_magnitudes, dtype=np.float64)
        reference_redshifts = np.asarray(reference_redshifts, dtype=np.float64)
        if reference_magnitudes.ndim != 2 or reference_magnitudes.shape[1] != 5:
            raise ValueError("reference_magnitudes must be (n, 5) ugriz")
        if len(reference_magnitudes) != len(reference_redshifts):
            raise ValueError("magnitudes and redshifts must align")
        if k < 2:
            raise ValueError("k must be >= 2")
        self.k = k
        self.degree = degree
        self._features = PolynomialFeatures(degree)
        data = {band: reference_magnitudes[:, idx] for idx, band in enumerate(_BANDS)}
        data["redshift"] = reference_redshifts
        self._index = KdTreeIndex.build(
            database, table_name, data, dims=list(_BANDS)
        )

    @property
    def index(self) -> KdTreeIndex:
        """The kd-tree index over the reference table."""
        return self._index

    def estimate_one(self, magnitudes: np.ndarray) -> float:
        """Photo-z of one object from its five magnitudes."""
        magnitudes = np.asarray(magnitudes, dtype=np.float64)
        if magnitudes.shape != (5,):
            raise ValueError("magnitudes must be a length-5 ugriz vector")
        neighbors = knn_boundary_points(self._index, magnitudes, self.k)
        rows = self._index.table.gather(neighbors.row_ids)
        colors = np.column_stack([rows[band] for band in _BANDS])
        redshifts = rows["redshift"]
        if self.degree == 0 or len(redshifts) <= self._features.num_terms(5):
            return float(redshifts.mean())
        # Center the local coordinates on the query for conditioning.
        design = self._features.design_matrix(colors - magnitudes)
        coeffs = general_least_squares(design, redshifts)
        query_design = self._features.design_matrix(np.zeros((1, 5)))
        estimate = float((query_design @ coeffs).item())
        # Guard against ill-conditioned extrapolation: the estimate must
        # stay within the neighbors' redshift range (physically, photo-z
        # interpolates the local color-redshift relation).
        return float(np.clip(estimate, redshifts.min(), redshifts.max()))

    def estimate(self, magnitudes: np.ndarray) -> np.ndarray:
        """Photo-z of many objects, shape ``(n, 5)`` -> ``(n,)``."""
        magnitudes = np.atleast_2d(np.asarray(magnitudes, dtype=np.float64))
        return np.array([self.estimate_one(row) for row in magnitudes])
