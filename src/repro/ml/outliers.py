"""Density-based outlier detection.

Two detectors from the paper's toolbox:

* :class:`KdTreeOutlierDetector` -- the kd-tree route the paper cites
  ("Kd-trees can be used efficiently for outlier detection [8]",
  Chaudhary, Szalay & Moore): leaf density = rows / tight-box volume;
  points in the sparsest leaves are outlier candidates.
* :class:`VoronoiOutlierDetector` -- the §3.4 route: inverse Voronoi
  cell volume as the density; points in the lowest-density cells are
  flagged ("it can be used for finding clusters and outliers").

Both return a per-point outlier *score* (higher = more anomalous =
lower local density) plus a thresholded flagging helper, so they can be
compared head to head (the E-extension bench does).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.core.kdtree import KdTree
from repro.tessellation.delaunay import DelaunayGraph
from repro.tessellation.density import density_from_volumes, voronoi_volume_estimates

__all__ = ["KdTreeOutlierDetector", "VoronoiOutlierDetector", "flag_fraction"]


def flag_fraction(scores: np.ndarray, fraction: float) -> np.ndarray:
    """Boolean mask of the top ``fraction`` scores (the flagged points)."""
    if not (0.0 < fraction < 1.0):
        raise ValueError("fraction must be in (0, 1)")
    threshold = np.quantile(scores, 1.0 - fraction)
    return scores >= threshold


class KdTreeOutlierDetector:
    """Leaf-density outlier scores from a balanced kd-tree.

    Parameters
    ----------
    num_levels:
        Tree depth; more levels = finer density resolution but noisier
        per-leaf estimates.  Defaults to the √N rule.
    """

    def __init__(self, points: np.ndarray, num_levels: int | None = None):
        points = np.asarray(points, dtype=np.float64)
        self._tree = KdTree(points, num_levels=num_levels)
        self._scores = self._compute_scores(points)

    def _compute_scores(self, points: np.ndarray) -> np.ndarray:
        tree = self._tree
        scores = np.empty(len(points))
        for leaf in range(tree.first_leaf, 2 * tree.first_leaf):
            start, end = tree.node_rows(leaf)
            rows = tree.permutation[start:end]
            if len(rows) == 0:
                continue
            # Tight-box volume; degenerate axes get the partition extent
            # so isolated points in huge empty cells score high.
            tight = tree.tight_box(leaf)
            partition = tree.partition_box(leaf)
            widths = np.where(tight.widths > 0, tight.widths, partition.widths)
            volume = float(np.prod(np.maximum(widths, 1e-12)))
            density = len(rows) / volume
            scores[rows] = -np.log(max(density, 1e-300))
        return scores

    @property
    def tree(self) -> KdTree:
        """The underlying kd-tree."""
        return self._tree

    def scores(self) -> np.ndarray:
        """Per-point outlier scores (higher = sparser neighborhood)."""
        return self._scores.copy()

    def flag(self, fraction: float) -> np.ndarray:
        """Mask of the ``fraction`` most anomalous points."""
        return flag_fraction(self._scores, fraction)


class VoronoiOutlierDetector:
    """Voronoi-cell-density outlier scores from a seed sample."""

    def __init__(
        self,
        points: np.ndarray,
        num_seeds: int = 1000,
        seed: int = 0,
    ):
        points = np.asarray(points, dtype=np.float64)
        if num_seeds > len(points):
            raise ValueError("num_seeds cannot exceed the number of points")
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(points), num_seeds, replace=False)
        self._graph = DelaunayGraph(points[chosen])
        volumes = voronoi_volume_estimates(self._graph)
        _, assignment = cKDTree(self._graph.seeds).query(points)
        counts = np.bincount(assignment, minlength=num_seeds)
        densities = density_from_volumes(volumes, counts)
        self._cell_scores = -np.log(np.maximum(densities, 1e-300))
        self._assignment = assignment

    @property
    def graph(self) -> DelaunayGraph:
        """The seeds' Delaunay graph."""
        return self._graph

    def scores(self) -> np.ndarray:
        """Per-point outlier scores (the cell's negative log density)."""
        return self._cell_scores[self._assignment]

    def flag(self, fraction: float) -> np.ndarray:
        """Mask of the ``fraction`` most anomalous points."""
        return flag_fraction(self.scores(), fraction)
