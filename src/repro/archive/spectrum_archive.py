"""An in-database spectrum archive with feature-space similarity search.

Storage layout (all engine tables):

* ``<name>_spectra`` -- one row per object: ``spectrum_id`` plus the
  full spectrum as a fixed-width binary vector column (the §3.5 design:
  native binary + zero-copy decode), clustered by id so fetching a
  match's spectrum is one page-range read.
* ``<name>_features`` -- the 5-D (configurable) Karhunen-Loeve features
  with any metadata columns, kd-tree indexed and clustered by leaf.

The similarity query is the paper's two-phase pattern: k-NN in the
low-dimensional feature space through the spatial index, then fetch only
the winners' 3000-sample vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.kdtree import KdTreeIndex
from repro.core.knn import knn_boundary_points
from repro.db.catalog import Database
from repro.db.stats import QueryStats
from repro.ml.pca import PrincipalComponents
from repro.vectype.codec import NativeBinaryCodec, VectorColumn

__all__ = ["SpectrumArchive", "SimilarSpectrum"]


@dataclass
class SimilarSpectrum:
    """One similarity-search match."""

    spectrum_id: int
    distance: float
    spectrum: np.ndarray
    metadata: dict


class SpectrumArchive:
    """Stores spectra + KL features; answers similarity queries."""

    def __init__(
        self,
        database: Database,
        name: str,
        pca: PrincipalComponents,
        codec: NativeBinaryCodec,
        feature_index: KdTreeIndex,
        metadata_columns: list[str],
    ):
        self._db = database
        self._name = name
        self._pca = pca
        self._codec = codec
        self._feature_index = feature_index
        self._metadata_columns = metadata_columns
        self._spectra_table = database.table(f"{name}_spectra")

    # -- construction -----------------------------------------------------------

    @staticmethod
    def build(
        database: Database,
        name: str,
        spectra: np.ndarray,
        metadata: dict[str, np.ndarray] | None = None,
        num_components: int = 5,
    ) -> "SpectrumArchive":
        """Ingest an ``(n, d)`` spectrum matrix (d ~ 3000 in the paper).

        Fits the KL basis on the ingested set, stores the raw vectors in
        a binary column, and indexes the features with a kd-tree.
        """
        spectra = np.asarray(spectra, dtype=np.float64)
        if spectra.ndim != 2 or len(spectra) < 2:
            raise ValueError("spectra must be (n >= 2, d)")
        metadata = dict(metadata or {})
        for key, values in metadata.items():
            if len(values) != len(spectra):
                raise ValueError(f"metadata column {key!r} length mismatch")

        pca = PrincipalComponents(num_components).fit(spectra)
        features = pca.transform(spectra)

        codec = NativeBinaryCodec(spectra.shape[1])
        database.create_table(
            f"{name}_spectra",
            {
                "spectrum_id": np.arange(len(spectra), dtype=np.int64),
                "flux": codec.encode_rows(spectra),
            },
            clustered_by=("spectrum_id",),
        )

        feature_data: dict[str, np.ndarray] = {
            f"kl{i}": features[:, i] for i in range(num_components)
        }
        feature_data["spectrum_id"] = np.arange(len(spectra), dtype=np.int64)
        for key, values in metadata.items():
            feature_data[key] = np.asarray(values)
        feature_index = KdTreeIndex.build(
            database,
            f"{name}_features",
            feature_data,
            [f"kl{i}" for i in range(num_components)],
        )
        return SpectrumArchive(
            database, name, pca, codec, feature_index, sorted(metadata)
        )

    # -- properties -----------------------------------------------------------------

    @property
    def num_spectra(self) -> int:
        """Number of archived spectra."""
        return self._spectra_table.num_rows

    @property
    def num_components(self) -> int:
        """Dimensionality of the feature space."""
        return self._pca.num_components

    @property
    def feature_index(self) -> KdTreeIndex:
        """The kd-tree over the KL features."""
        return self._feature_index

    def explained_variance_ratio(self) -> np.ndarray:
        """Variance captured per retained KL component."""
        return self._pca.explained_variance_ratio

    # -- access ------------------------------------------------------------------------

    def features_of(self, spectrum: np.ndarray) -> np.ndarray:
        """Project a raw spectrum onto the archive's KL basis."""
        spectrum = np.asarray(spectrum, dtype=np.float64)
        if spectrum.ndim == 1:
            spectrum = spectrum[np.newaxis, :]
        return self._pca.transform(spectrum)[0]

    def fetch_spectrum(
        self, spectrum_id: int, stats: QueryStats | None = None
    ) -> np.ndarray:
        """Read one stored spectrum (clustered range read + binary decode)."""
        if not (0 <= spectrum_id < self.num_spectra):
            raise IndexError(f"spectrum {spectrum_id} out of range")
        rows = self._spectra_table.read_rows(spectrum_id, spectrum_id + 1)
        return self._codec.decode_rows(rows["flux"])[0]

    def spectra_column(self) -> VectorColumn:
        """The raw vector column (for bulk scans)."""
        return VectorColumn(self._spectra_table, "flux", self._codec)

    # -- similarity search ----------------------------------------------------------------

    def similar(
        self, spectrum: np.ndarray, k: int = 2, skip_self: bool = True
    ) -> list[SimilarSpectrum]:
        """The Figures 9/10 operation: most similar archived spectra.

        Parameters
        ----------
        spectrum:
            A raw spectrum on the archive's wavelength grid.
        k:
            Matches to return.
        skip_self:
            Drop an exact (zero-feature-distance) match of the query
            itself, as the paper's figures do.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        feature = self.features_of(spectrum)
        fetch = k + (1 if skip_self else 0)
        result = knn_boundary_points(self._feature_index, feature, fetch)
        rows = self._feature_index.table.gather(result.row_ids)
        matches: list[SimilarSpectrum] = []
        for rank in range(len(result.row_ids)):
            distance = float(result.distances[rank])
            if skip_self and distance < 1e-12 and len(matches) < len(result.row_ids) - k + 1:
                # Tolerate at most one self-match drop.
                skip_self = False
                continue
            spectrum_id = int(rows["spectrum_id"][rank])
            matches.append(
                SimilarSpectrum(
                    spectrum_id=spectrum_id,
                    distance=distance,
                    spectrum=self.fetch_spectrum(spectrum_id),
                    metadata={
                        key: rows[key][rank] for key in self._metadata_columns
                    },
                )
            )
            if len(matches) == k:
                break
        return matches
