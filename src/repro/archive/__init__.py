"""The spectrum archive: a SpectrumService analog (§4.2).

"SDSS spectra ... are stored in a separate archive, called
SpectrumService"; similarity search runs over 5-D Karhunen-Loeve
features, and the full ~3000-sample vectors are fetched only for the few
matches.  :class:`SpectrumArchive` packages that pattern over the
engine: spectra live in a binary vector column (:mod:`repro.vectype`),
their PCA features in an indexed table (:mod:`repro.core`), and
``similar()`` does the feature-space k-NN plus the spectrum fetch in one
call.
"""

from repro.archive.spectrum_archive import SpectrumArchive, SimilarSpectrum

__all__ = ["SpectrumArchive", "SimilarSpectrum"]
