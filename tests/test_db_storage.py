"""Tests for the storage backends and the buffer pool."""

import numpy as np
import pytest

from repro.db import BufferPool, FileStorage, MemoryStorage, Page


def page(page_id, n=8):
    return Page(page_id=page_id, start_row=page_id * n, columns={"a": np.arange(n) + page_id})


@pytest.fixture(params=["memory", "file"])
def storage(request, tmp_path):
    if request.param == "memory":
        return MemoryStorage()
    return FileStorage(tmp_path / "pages")


class TestStorage:
    def test_write_read_roundtrip(self, storage):
        storage.write_page("t", page(0))
        got = storage.read_page("t", 0)
        assert np.array_equal(got.columns["a"], np.arange(8))

    def test_missing_page_keyerror(self, storage):
        with pytest.raises(KeyError):
            storage.read_page("t", 42)

    def test_io_counters(self, storage):
        storage.write_page("t", page(0))
        storage.write_page("t", page(1))
        storage.read_page("t", 0)
        assert storage.stats.page_writes == 2
        assert storage.stats.page_reads == 1
        assert storage.stats.bytes_written > 0
        assert storage.stats.bytes_read > 0

    def test_num_pages(self, storage):
        assert storage.num_pages("t") == 0
        storage.write_page("t", page(0))
        storage.write_page("t", page(1))
        assert storage.num_pages("t") == 2

    def test_overwrite_same_id(self, storage):
        storage.write_page("t", page(0))
        storage.write_page("t", page(0))
        assert storage.num_pages("t") == 1

    def test_namespaces_isolated(self, storage):
        storage.write_page("a", page(0))
        storage.write_page("b", page(0, n=4))
        assert storage.read_page("a", 0).num_rows == 8
        assert storage.read_page("b", 0).num_rows == 4

    def test_drop_namespace(self, storage):
        storage.write_page("t", page(0))
        storage.drop_namespace("t")
        assert storage.num_pages("t") == 0
        with pytest.raises(KeyError):
            storage.read_page("t", 0)

    def test_drop_absent_namespace_is_noop(self, storage):
        storage.drop_namespace("ghost")


class TestBufferPool:
    def test_cache_hit_avoids_storage_read(self):
        storage = MemoryStorage()
        pool = BufferPool(storage, capacity_pages=4)
        pool.put("t", page(0))
        reads_before = storage.stats.page_reads
        pool.get("t", 0)
        pool.get("t", 0)
        assert storage.stats.page_reads == reads_before
        assert storage.stats.cache_hits == 2

    def test_lru_eviction(self):
        storage = MemoryStorage()
        pool = BufferPool(storage, capacity_pages=2)
        for page_id in range(3):
            pool.put("t", page(page_id))
        # page 0 is the least recently used -> evicted.
        storage.stats.reset()
        pool.get("t", 0)
        assert storage.stats.cache_misses == 1
        assert storage.stats.page_reads == 1

    def test_get_refreshes_lru_order(self):
        storage = MemoryStorage()
        pool = BufferPool(storage, capacity_pages=2)
        pool.put("t", page(0))
        pool.put("t", page(1))
        pool.get("t", 0)  # 0 becomes most recent
        pool.put("t", page(2))  # evicts 1
        storage.stats.reset()
        pool.get("t", 0)
        assert storage.stats.cache_hits == 1
        pool.get("t", 1)
        assert storage.stats.cache_misses == 1

    def test_unbounded_pool(self):
        storage = MemoryStorage()
        pool = BufferPool(storage, capacity_pages=None)
        for page_id in range(100):
            pool.put("t", page(page_id))
        assert len(pool) == 100

    def test_capacity_guard(self):
        with pytest.raises(ValueError):
            BufferPool(MemoryStorage(), capacity_pages=0)

    def test_invalidate_namespace(self):
        storage = MemoryStorage()
        pool = BufferPool(storage, capacity_pages=10)
        pool.put("a", page(0))
        pool.put("b", page(0))
        pool.invalidate("a")
        storage.stats.reset()
        pool.get("a", 0)
        assert storage.stats.cache_misses == 1
        pool.get("b", 0)
        assert storage.stats.cache_hits == 1

    def test_clear(self):
        storage = MemoryStorage()
        pool = BufferPool(storage, capacity_pages=10)
        pool.put("t", page(0))
        pool.clear()
        assert len(pool) == 0


class TestFileStorageOnDisk:
    def test_files_actually_exist(self, tmp_path):
        storage = FileStorage(tmp_path / "db")
        storage.write_page("t", page(0))
        files = list((tmp_path / "db" / "t").iterdir())
        assert len(files) == 1
        assert files[0].suffix == ".page"

    def test_survives_reopen(self, tmp_path):
        FileStorage(tmp_path / "db").write_page("t", page(5))
        reopened = FileStorage(tmp_path / "db")
        got = reopened.read_page("t", 5)
        assert got.start_row == 40
