"""Tests for halfspaces and convex polyhedra."""

import numpy as np
import pytest

from repro.geometry import Box, BoxRelation, Halfspace, Polyhedron


class TestHalfspace:
    def test_contains_point(self):
        hs = Halfspace(np.array([1.0, 0.0]), 1.0)  # x <= 1
        assert hs.contains_point([0.5, 99.0])
        assert hs.contains_point([1.0, 0.0])  # closed
        assert not hs.contains_point([1.5, 0.0])

    def test_rejects_zero_normal(self):
        with pytest.raises(ValueError):
            Halfspace(np.zeros(3), 1.0)

    def test_signed_distance_scale_invariant(self):
        a = Halfspace(np.array([1.0, 0.0]), 1.0)
        b = Halfspace(np.array([10.0, 0.0]), 10.0)
        p = [3.0, 0.0]
        assert np.isclose(a.signed_distance(p), b.signed_distance(p))
        assert np.isclose(a.signed_distance(p), 2.0)

    def test_signed_distance_negative_inside(self):
        hs = Halfspace(np.array([0.0, 1.0]), 0.0)  # y <= 0
        assert hs.signed_distance([0.0, -2.0]) == -2.0

    def test_box_extremes_match_corners(self):
        rng = np.random.default_rng(1)
        b = Box(np.array([-1.0, 0.0, 2.0]), np.array([1.0, 3.0, 5.0]))
        for _ in range(20):
            hs = Halfspace(rng.normal(size=3), 0.0)
            values = b.corners() @ hs.normal
            lo, hi = hs.box_extremes(b)
            assert np.isclose(lo, values.min())
            assert np.isclose(hi, values.max())

    def test_flipped(self):
        hs = Halfspace(np.array([1.0]), 2.0)
        flipped = hs.flipped()
        assert flipped.contains_point([3.0])
        assert not flipped.contains_point([1.0])

    def test_contains_points_vectorized(self):
        hs = Halfspace(np.array([1.0, 1.0]), 1.0)
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.5]])
        assert hs.contains_points(pts).tolist() == [True, False, True]


class TestPolyhedron:
    def test_from_box_membership_matches_box(self):
        rng = np.random.default_rng(2)
        b = Box(np.array([0.0, -1.0, 2.0]), np.array([1.0, 1.0, 3.0]))
        poly = Polyhedron.from_box(b)
        pts = rng.uniform(-2, 4, size=(500, 3))
        assert np.array_equal(poly.contains_points(pts), b.contains_points(pts))

    def test_needs_halfspaces(self):
        with pytest.raises(ValueError):
            Polyhedron([])

    def test_dimension_consistency(self):
        with pytest.raises(ValueError):
            Polyhedron(
                [Halfspace(np.ones(2), 0.0), Halfspace(np.ones(3), 0.0)]
            )

    def test_from_inequalities(self):
        poly = Polyhedron.from_inequalities(
            np.array([[1.0, 0.0], [-1.0, 0.0]]), np.array([1.0, 0.0])
        )
        assert poly.contains_point([0.5, 123.0])
        assert not poly.contains_point([-0.5, 0.0])

    def test_intersected_with(self):
        a = Polyhedron.from_box(Box(np.zeros(2), np.ones(2) * 2))
        b = Polyhedron.from_box(Box(np.ones(2), np.ones(2) * 3))
        both = a.intersected_with(b)
        assert both.contains_point([1.5, 1.5])
        assert not both.contains_point([0.5, 0.5])

    def test_len_and_repr(self):
        poly = Polyhedron.from_box(Box.unit(3))
        assert len(poly) == 6
        assert "dim=3" in repr(poly)


class TestClassifyBox:
    def setup_method(self):
        # The triangle x >= 0, y >= 0, x + y <= 1.
        self.poly = Polyhedron(
            [
                Halfspace(np.array([-1.0, 0.0]), 0.0),
                Halfspace(np.array([0.0, -1.0]), 0.0),
                Halfspace(np.array([1.0, 1.0]), 1.0),
            ]
        )

    def test_inside(self):
        b = Box(np.array([0.1, 0.1]), np.array([0.2, 0.2]))
        assert self.poly.classify_box(b) is BoxRelation.INSIDE

    def test_outside_separated_by_one_halfspace(self):
        b = Box(np.array([2.0, 2.0]), np.array([3.0, 3.0]))
        assert self.poly.classify_box(b) is BoxRelation.OUTSIDE

    def test_partial(self):
        b = Box(np.array([0.4, 0.4]), np.array([0.8, 0.8]))
        assert self.poly.classify_box(b) is BoxRelation.PARTIAL

    def test_conservative_never_wrong(self):
        # Randomized soundness check: INSIDE boxes contain only members,
        # OUTSIDE boxes contain no members.
        rng = np.random.default_rng(3)
        for _ in range(200):
            lo = rng.uniform(-1, 1.5, 2)
            hi = lo + rng.uniform(0.01, 1.0, 2)
            b = Box(lo, hi)
            relation = self.poly.classify_box(b)
            sample = rng.uniform(lo, hi, size=(64, 2))
            inside = self.poly.contains_points(sample)
            if relation is BoxRelation.INSIDE:
                assert inside.all()
            elif relation is BoxRelation.OUTSIDE:
                assert not inside.any()


class TestClassifyBall:
    def setup_method(self):
        self.poly = Polyhedron.from_box(Box(np.zeros(3), np.ones(3)))

    def test_inside(self):
        rel = self.poly.classify_ball(np.array([0.5, 0.5, 0.5]), 0.2)
        assert rel is BoxRelation.INSIDE

    def test_outside(self):
        rel = self.poly.classify_ball(np.array([3.0, 0.5, 0.5]), 0.5)
        assert rel is BoxRelation.OUTSIDE

    def test_partial(self):
        rel = self.poly.classify_ball(np.array([0.5, 0.5, 0.5]), 2.0)
        assert rel is BoxRelation.PARTIAL

    def test_soundness_random(self):
        rng = np.random.default_rng(4)
        for _ in range(200):
            center = rng.uniform(-0.5, 1.5, 3)
            radius = rng.uniform(0.01, 0.8)
            relation = self.poly.classify_ball(center, radius)
            direction = rng.normal(size=(64, 3))
            direction /= np.linalg.norm(direction, axis=1, keepdims=True)
            sample = center + direction * rng.uniform(0, radius, (64, 1))
            inside = self.poly.contains_points(sample)
            if relation is BoxRelation.INSIDE:
                assert inside.all()
            elif relation is BoxRelation.OUTSIDE:
                assert not inside.any()


class TestMinDistance:
    def test_inside_is_zero(self):
        poly = Polyhedron.from_box(Box.unit(2))
        assert poly.min_distance_to_point([0.5, 0.5]) == 0.0

    def test_lower_bound_property(self):
        # min_distance is a valid lower bound on the true distance.
        poly = Polyhedron.from_box(Box.unit(2))
        p = np.array([2.0, 2.0])
        bound = poly.min_distance_to_point(p)
        true = np.sqrt(2.0)
        assert 0 < bound <= true + 1e-12

    def test_axis_aligned_exact(self):
        poly = Polyhedron.from_box(Box.unit(2))
        assert np.isclose(poly.min_distance_to_point([3.0, 0.5]), 2.0)


class TestSimplexAround:
    def test_center_inside(self):
        center = np.array([1.0, -2.0, 0.5])
        poly = Polyhedron.simplex_around(center, 0.5)
        assert poly.contains_point(center)

    def test_bounded_reach(self):
        center = np.zeros(3)
        poly = Polyhedron.simplex_around(center, 0.5)
        assert not poly.contains_point(center - 10.0)
