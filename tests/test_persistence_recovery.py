"""Tests for catalog persistence, recovery logging, and the LOD pyramid."""

import numpy as np
import pytest

from repro import (
    Box,
    Database,
    DelaunayPyramid,
    KdTreeIndex,
    LoggedStorage,
    attach_database,
    save_catalog,
)
from repro.db import MemoryStorage
from repro.db.persistence import CATALOG_FILENAME
from repro.geometry.sfc import morton_decode, morton_index


class TestLoggedStorage:
    @pytest.fixture()
    def logged_db(self):
        logged = LoggedStorage(MemoryStorage())
        db = Database(logged, buffer_pages=None)
        rng = np.random.default_rng(0)
        table = db.create_table("t", {"a": rng.normal(size=500)}, rows_per_page=64)
        return db, logged, table

    def test_one_record_per_page_write(self, logged_db):
        _, logged, table = logged_db
        assert len(logged.log_records()) == table.num_pages

    def test_log_amplifies_write_bytes(self, logged_db):
        # The "huge / slow log" effect: full recovery ~doubles bytes written.
        _, logged, _ = logged_db
        assert logged.log_bytes() >= logged.inner.stats.bytes_written

    def test_records_verify(self, logged_db):
        _, logged, _ = logged_db
        assert all(record.verify() for record in logged.log_records())

    def test_replay_rebuilds_storage(self, logged_db):
        db, logged, table = logged_db
        fresh = MemoryStorage()
        applied = logged.replay(fresh)
        assert applied == table.num_pages
        original = logged.inner.read_page("t", 0)
        rebuilt = fresh.read_page("t", 0)
        assert np.array_equal(original.columns["a"], rebuilt.columns["a"])

    def test_corrupt_record_rejected_in_strict_mode(self, logged_db):
        _, logged, _ = logged_db
        # Flip a payload byte in the last record.
        raw = bytearray(logged._log[-1])
        raw[-1] ^= 0xFF
        logged._log[-1] = bytes(raw)
        with pytest.raises(ValueError, match="checksum"):
            logged.replay(MemoryStorage(), on_corrupt="raise")

    def test_corrupt_record_skipped_with_warning_by_default(self, logged_db, caplog):
        _, logged, table = logged_db
        raw = bytearray(logged._log[2])
        raw[-1] ^= 0xFF
        logged._log[2] = bytes(raw)
        fresh = MemoryStorage()
        with caplog.at_level("WARNING", logger="repro.db.recovery"):
            applied = logged.replay(fresh)
        # Every healthy record applied; the torn one skipped, never written.
        assert applied == table.num_pages - 1
        assert fresh.num_pages("t") == table.num_pages - 1
        assert any("checksum" in message for message in caplog.messages)

    def test_corrupt_header_skipped_with_warning(self, logged_db, caplog):
        _, logged, table = logged_db
        # Mangle the magic itself: the record header is unreadable.
        logged._log[0] = b"XXXX" + logged._log[0][4:]
        fresh = MemoryStorage()
        with caplog.at_level("WARNING", logger="repro.db.recovery"):
            applied = logged.replay(fresh)
        assert applied == table.num_pages - 1
        with pytest.raises(ValueError, match="magic"):
            logged.replay(MemoryStorage(), on_corrupt="raise")

    def test_replay_rejects_unknown_mode(self, logged_db):
        _, logged, _ = logged_db
        with pytest.raises(ValueError, match="on_corrupt"):
            logged.replay(MemoryStorage(), on_corrupt="ignore")

    def test_reads_pass_through(self, logged_db):
        db, logged, table = logged_db
        db.cold_cache()
        page = table.read_page(0)
        assert page.num_rows == 64

    def test_sequence_increases(self, logged_db):
        _, logged, _ = logged_db
        sequences = [r.sequence for r in logged.log_records()]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)


class TestLogRecordVerify:
    """Unit coverage of the checksum path itself (previously untested)."""

    @staticmethod
    def _record(payload: bytes):
        import zlib

        from repro.db import LogRecord as LR

        return LR(
            sequence=1,
            namespace="t",
            page_id=0,
            payload=payload,
            checksum=zlib.crc32(payload),
        )

    def test_intact_payload_verifies(self):
        record = self._record(b"healthy page bytes")
        assert record.verify()

    def test_any_single_byte_flip_is_detected(self):
        payload = b"0123456789abcdef"
        for position in range(len(payload)):
            mutated = bytearray(payload)
            mutated[position] ^= 0x01
            record = self._record(payload)
            record.payload = bytes(mutated)
            assert not record.verify(), f"flip at byte {position} went undetected"

    def test_truncated_payload_is_detected(self):
        record = self._record(b"0123456789abcdef")
        record.payload = record.payload[:-1]
        assert not record.verify()

    def test_wrong_checksum_is_detected(self):
        record = self._record(b"payload")
        record.checksum ^= 0xDEADBEEF
        assert not record.verify()


class TestCatalogPersistence:
    def test_save_and_attach_roundtrip(self, tmp_path):
        db = Database.on_disk(tmp_path)
        rng = np.random.default_rng(1)
        data = {"a": rng.normal(size=300), "key": rng.integers(0, 5, 300)}
        db.create_table("t1", data, rows_per_page=32, clustered_by=("key",))
        db.create_table("t2", {"x": np.arange(10.0)})
        path = save_catalog(db)
        assert path.name == CATALOG_FILENAME

        reopened = attach_database(tmp_path)
        assert reopened.table_names() == ["t1", "t2"]
        t1 = reopened.table("t1")
        assert t1.num_rows == 300
        assert t1.clustered_by == ("key",)
        assert (np.diff(t1.read_column("key")) >= 0).all()
        assert np.allclose(
            np.sort(t1.read_column("a")), np.sort(data["a"])
        )

    def test_attach_preserves_dtypes(self, tmp_path):
        db = Database.on_disk(tmp_path)
        db.create_table(
            "typed",
            {
                "f": np.arange(5.0),
                "i": np.arange(5, dtype=np.int32),
                "s": np.array([b"abc"] * 5, dtype="S3"),
            },
        )
        save_catalog(db)
        reopened = attach_database(tmp_path)
        table = reopened.table("typed")
        assert table.dtype_of("i") == np.int32
        assert table.dtype_of("s") == np.dtype("S3")

    def test_attach_missing_catalog(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            attach_database(tmp_path)

    def test_save_requires_file_backend(self):
        db = Database.in_memory()
        with pytest.raises(TypeError):
            save_catalog(db)

    def test_attach_detects_missing_pages(self, tmp_path):
        db = Database.on_disk(tmp_path)
        db.create_table("t", {"a": np.arange(100.0)}, rows_per_page=10)
        save_catalog(db)
        # Delete a page file behind the catalog's back.
        victim = next((tmp_path / "t").glob("*.page"))
        victim.unlink()
        with pytest.raises(ValueError, match="pages"):
            attach_database(tmp_path)

    def test_indexes_rebuild_over_attached_tables(self, tmp_path):
        # The static-database recovery story: reattach, then rebuild the
        # index from the stored columns.
        rng = np.random.default_rng(2)
        db = Database.on_disk(tmp_path)
        pts = rng.normal(size=(2000, 3))
        db.create_table("pts", {"x": pts[:, 0], "y": pts[:, 1], "z": pts[:, 2]})
        save_catalog(db)

        reopened = attach_database(tmp_path)
        source = reopened.table("pts")
        columns = source.read_columns(["x", "y", "z"])
        index = KdTreeIndex.build(reopened, "pts_kd", columns, ["x", "y", "z"])
        box = Box.cube(np.zeros(3), 0.5)
        _, stats = index.query_box(box)
        assert stats.rows_returned == int(box.contains_points(pts).sum())


class TestDelaunayPyramid:
    @pytest.fixture(scope="class")
    def pyramid(self, clustered_points_3d):
        return DelaunayPyramid.build(
            clustered_points_3d, level_sizes=[40, 200, 800], seed=3
        )

    def test_levels(self, pyramid):
        assert pyramid.num_levels == 3
        assert pyramid.level(0).num_seeds == 40
        assert pyramid.level(2).num_seeds == 800

    def test_nested(self, pyramid):
        assert pyramid.is_nested()

    def test_level_for_view_refines(self, pyramid, clustered_points_3d):
        whole = Box.from_points(clustered_points_3d)
        # A huge target forces the finest level.
        assert pyramid.level_for_view(whole, 10**6) == 2
        # A tiny target is satisfied by the coarsest.
        assert pyramid.level_for_view(whole, 5) == 0

    def test_edges_in_view_monotone_in_level(self, pyramid, clustered_points_3d):
        whole = Box.from_points(clustered_points_3d)
        counts = [pyramid.edges_in_view(lvl, whole) for lvl in range(3)]
        assert counts == sorted(counts)

    def test_validation(self, clustered_points_3d):
        with pytest.raises(ValueError):
            DelaunayPyramid.build(clustered_points_3d, level_sizes=[100, 50])
        with pytest.raises(ValueError):
            DelaunayPyramid.build(
                clustered_points_3d, level_sizes=[10, 10**7]
            )
        with pytest.raises(ValueError):
            DelaunayPyramid([], [])

    def test_default_levels(self, clustered_points_3d):
        pyramid = DelaunayPyramid.build(clustered_points_3d, seed=4)
        assert pyramid.num_levels == 3
        assert pyramid.is_nested()


class TestMortonDecode:
    def test_roundtrip_2d(self):
        for code in range(256):
            assert morton_index(morton_decode(code, 2, 4), 4) == code

    def test_roundtrip_3d(self):
        for code in range(512):
            assert morton_index(morton_decode(code, 3, 3), 3) == code
