"""Tests for catalog persistence, recovery logging, and the LOD pyramid."""

import numpy as np
import pytest

from repro import (
    Box,
    Database,
    DelaunayPyramid,
    IngestWal,
    KdTreeIndex,
    LoggedStorage,
    attach_database,
    merge_table,
    save_catalog,
)
from repro.db import MemoryStorage, full_scan
from repro.db.persistence import CATALOG_FILENAME
from repro.geometry.sfc import morton_decode, morton_index


class TestLoggedStorage:
    @pytest.fixture()
    def logged_db(self):
        logged = LoggedStorage(MemoryStorage())
        db = Database(logged, buffer_pages=None)
        rng = np.random.default_rng(0)
        table = db.create_table("t", {"a": rng.normal(size=500)}, rows_per_page=64)
        return db, logged, table

    def test_one_record_per_page_write(self, logged_db):
        _, logged, table = logged_db
        assert len(logged.log_records()) == table.num_pages

    def test_log_amplifies_write_bytes(self, logged_db):
        # The "huge / slow log" effect: full recovery ~doubles bytes written.
        _, logged, _ = logged_db
        assert logged.log_bytes() >= logged.inner.stats.bytes_written

    def test_records_verify(self, logged_db):
        _, logged, _ = logged_db
        assert all(record.verify() for record in logged.log_records())

    def test_replay_rebuilds_storage(self, logged_db):
        db, logged, table = logged_db
        fresh = MemoryStorage()
        applied = logged.replay(fresh)
        assert applied == table.num_pages
        original = logged.inner.read_page("t", 0)
        rebuilt = fresh.read_page("t", 0)
        assert np.array_equal(original.columns["a"], rebuilt.columns["a"])

    def test_corrupt_record_rejected_in_strict_mode(self, logged_db):
        _, logged, _ = logged_db
        # Flip a payload byte in the last record.
        raw = bytearray(logged._log[-1])
        raw[-1] ^= 0xFF
        logged._log[-1] = bytes(raw)
        with pytest.raises(ValueError, match="checksum"):
            logged.replay(MemoryStorage(), on_corrupt="raise")

    def test_corrupt_record_skipped_with_warning_by_default(self, logged_db, caplog):
        _, logged, table = logged_db
        raw = bytearray(logged._log[2])
        raw[-1] ^= 0xFF
        logged._log[2] = bytes(raw)
        fresh = MemoryStorage()
        with caplog.at_level("WARNING", logger="repro.db.recovery"):
            applied = logged.replay(fresh)
        # Every healthy record applied; the torn one skipped, never written.
        assert applied == table.num_pages - 1
        assert fresh.num_pages("t") == table.num_pages - 1
        assert any("checksum" in message for message in caplog.messages)

    def test_corrupt_header_skipped_with_warning(self, logged_db, caplog):
        _, logged, table = logged_db
        # Mangle the magic itself: the record header is unreadable.
        logged._log[0] = b"XXXX" + logged._log[0][4:]
        fresh = MemoryStorage()
        with caplog.at_level("WARNING", logger="repro.db.recovery"):
            applied = logged.replay(fresh)
        assert applied == table.num_pages - 1
        with pytest.raises(ValueError, match="magic"):
            logged.replay(MemoryStorage(), on_corrupt="raise")

    def test_replay_rejects_unknown_mode(self, logged_db):
        _, logged, _ = logged_db
        with pytest.raises(ValueError, match="on_corrupt"):
            logged.replay(MemoryStorage(), on_corrupt="ignore")

    def test_reads_pass_through(self, logged_db):
        db, logged, table = logged_db
        db.cold_cache()
        page = table.read_page(0)
        assert page.num_rows == 64

    def test_sequence_increases(self, logged_db):
        _, logged, _ = logged_db
        sequences = [r.sequence for r in logged.log_records()]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)


class TestLogRecordVerify:
    """Unit coverage of the checksum path itself (previously untested)."""

    @staticmethod
    def _record(payload: bytes):
        import zlib

        from repro.db import LogRecord as LR

        return LR(
            sequence=1,
            namespace="t",
            page_id=0,
            payload=payload,
            checksum=zlib.crc32(payload),
        )

    def test_intact_payload_verifies(self):
        record = self._record(b"healthy page bytes")
        assert record.verify()

    def test_any_single_byte_flip_is_detected(self):
        payload = b"0123456789abcdef"
        for position in range(len(payload)):
            mutated = bytearray(payload)
            mutated[position] ^= 0x01
            record = self._record(payload)
            record.payload = bytes(mutated)
            assert not record.verify(), f"flip at byte {position} went undetected"

    def test_truncated_payload_is_detected(self):
        record = self._record(b"0123456789abcdef")
        record.payload = record.payload[:-1]
        assert not record.verify()

    def test_wrong_checksum_is_detected(self):
        record = self._record(b"payload")
        record.checksum ^= 0xDEADBEEF
        assert not record.verify()


class TestCatalogPersistence:
    def test_save_and_attach_roundtrip(self, tmp_path):
        db = Database.on_disk(tmp_path)
        rng = np.random.default_rng(1)
        data = {"a": rng.normal(size=300), "key": rng.integers(0, 5, 300)}
        db.create_table("t1", data, rows_per_page=32, clustered_by=("key",))
        db.create_table("t2", {"x": np.arange(10.0)})
        path = save_catalog(db)
        assert path.name == CATALOG_FILENAME

        reopened = attach_database(tmp_path)
        assert reopened.table_names() == ["t1", "t2"]
        t1 = reopened.table("t1")
        assert t1.num_rows == 300
        assert t1.clustered_by == ("key",)
        assert (np.diff(t1.read_column("key")) >= 0).all()
        assert np.allclose(
            np.sort(t1.read_column("a")), np.sort(data["a"])
        )

    def test_attach_preserves_dtypes(self, tmp_path):
        db = Database.on_disk(tmp_path)
        db.create_table(
            "typed",
            {
                "f": np.arange(5.0),
                "i": np.arange(5, dtype=np.int32),
                "s": np.array([b"abc"] * 5, dtype="S3"),
            },
        )
        save_catalog(db)
        reopened = attach_database(tmp_path)
        table = reopened.table("typed")
        assert table.dtype_of("i") == np.int32
        assert table.dtype_of("s") == np.dtype("S3")

    def test_attach_missing_catalog(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            attach_database(tmp_path)

    def test_save_requires_file_backend(self):
        db = Database.in_memory()
        with pytest.raises(TypeError):
            save_catalog(db)

    def test_attach_detects_missing_pages(self, tmp_path):
        db = Database.on_disk(tmp_path)
        db.create_table("t", {"a": np.arange(100.0)}, rows_per_page=10)
        save_catalog(db)
        # Delete a page file behind the catalog's back.
        victim = next((tmp_path / "t").glob("*.page"))
        victim.unlink()
        with pytest.raises(ValueError, match="pages"):
            attach_database(tmp_path)

    def test_indexes_rebuild_over_attached_tables(self, tmp_path):
        # The static-database recovery story: reattach, then rebuild the
        # index from the stored columns.
        rng = np.random.default_rng(2)
        db = Database.on_disk(tmp_path)
        pts = rng.normal(size=(2000, 3))
        db.create_table("pts", {"x": pts[:, 0], "y": pts[:, 1], "z": pts[:, 2]})
        save_catalog(db)

        reopened = attach_database(tmp_path)
        source = reopened.table("pts")
        columns = source.read_columns(["x", "y", "z"])
        index = KdTreeIndex.build(reopened, "pts_kd", columns, ["x", "y", "z"])
        box = Box.cube(np.zeros(3), 0.5)
        _, stats = index.query_box(box)
        assert stats.rows_returned == int(box.contains_points(pts).sum())


class TestIngestWalRecovery:
    """The ingest crash-point matrix: kill the process at every seam of a
    write (WAL append -> delta apply -> merge flush -> layout swap) and
    reopen from what would actually be durable -- the page files, the last
    saved catalog, and the surviving WAL frames.  Invariants: no
    acknowledged row is lost, and a torn merge is never visible."""

    N = 300

    def _disk_db(self, tmp_path):
        rng = np.random.default_rng(9)
        pts = rng.uniform(0.0, 10.0, size=(self.N, 3))
        data = {d: pts[:, i] for i, d in enumerate("xyz")}
        data["oid"] = np.arange(self.N, dtype=np.int64)
        db = Database.on_disk(tmp_path)
        db.create_table("t", data, rows_per_page=64)
        save_catalog(db)
        return db

    @staticmethod
    def _oids(db) -> set[int]:
        rows, _ = full_scan(db.table("t"), columns=["oid"])
        return set(int(v) for v in rows["oid"])

    @staticmethod
    def _batch(count: int, oid_start: int) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(oid_start)
        pts = rng.uniform(0.0, 10.0, size=(count, 3))
        batch = {d: pts[:, i] for i, d in enumerate("xyz")}
        batch["oid"] = np.arange(oid_start, oid_start + count, dtype=np.int64)
        return batch

    def test_acked_writes_survive_a_crash_before_any_merge(self, tmp_path):
        db = self._disk_db(tmp_path)
        db.table("t").insert_rows(self._batch(5, self.N))
        db.table("t").delete_rows(np.array([0, 1, 2]))
        expected = self._oids(db)

        # Crash: only the page files, catalog, and WAL frames survive.
        reopened = attach_database(tmp_path, wal_frames=db.ingest_wal.frames())
        assert self._oids(reopened) == expected
        assert reopened.table("t").num_live_rows == self.N - 3 + 5

    def test_crash_between_wal_append_and_delta_apply(self, tmp_path):
        db = self._disk_db(tmp_path)
        batch = self._batch(4, self.N)
        # The writer died after the WAL append returned (the row is
        # acknowledged the moment the record is durable) but before the
        # delta tier -- and therefore any reader -- saw the rows.
        db.ingest_wal.append_insert(
            "t",
            {
                name: np.ascontiguousarray(
                    batch[name], dtype=db.table("t").dtype_of(name)
                )
                for name in db.table("t").column_names
            },
        )
        assert self.N not in self._oids(db)  # never applied pre-crash

        reopened = attach_database(tmp_path, wal_frames=db.ingest_wal.frames())
        got = self._oids(reopened)
        assert {self.N, self.N + 1, self.N + 2, self.N + 3} <= got

    def test_crash_during_merge_flush_hides_the_torn_merge(self, tmp_path):
        db = self._disk_db(tmp_path)
        db.table("t").insert_rows(self._batch(6, self.N))
        db.table("t").delete_rows(np.array([7]))
        expected = self._oids(db)
        frames_before_merge = db.ingest_wal.frames()

        # The merge wrote its new generation's pages (and maybe swapped
        # in memory) but died before the commit fence reached the log;
        # the durable catalog still maps generation 0.  The stray
        # ``t@g1`` pages are unreferenced garbage, not a torn layout.
        merge_table(db, "t")
        crashed_wal = IngestWal(frames_before_merge)
        crashed_wal.append_merge_begin("t", 1)

        reopened = attach_database(tmp_path, wal_frames=crashed_wal.frames())
        assert reopened.table("t").physical_name == "t"
        assert self._oids(reopened) == expected
        # Every acknowledged pre-merge write was redone from the log.
        assert reopened.table("t").has_live_delta()

    def test_crash_after_commit_and_catalog_save_keeps_the_merge(self, tmp_path):
        db = self._disk_db(tmp_path)
        db.table("t").insert_rows(self._batch(6, self.N))
        db.table("t").delete_rows(np.array([7]))
        expected = self._oids(db)
        merge_table(db, "t")
        # The commit fence's durability contract for file-backed
        # databases: the catalog is saved with (after) the fence, so a
        # reopen maps the new generation.
        save_catalog(db)

        reopened = attach_database(tmp_path, wal_frames=db.ingest_wal.frames())
        table = reopened.table("t")
        assert table.physical_name == "t@g1"
        assert self._oids(reopened) == expected
        # The log was truncated at commit: nothing is replayed twice.
        assert not table.has_live_delta()
        assert table.num_rows == self.N - 1 + 6
        # The merged generation's zone map round-tripped under its
        # physical namespace.
        assert reopened.zone_map("t@g1") is not None

    def test_post_merge_writes_replay_onto_the_merged_generation(self, tmp_path):
        db = self._disk_db(tmp_path)
        db.table("t").insert_rows(self._batch(4, self.N))
        merge_table(db, "t")
        save_catalog(db)
        db.table("t").insert_rows(self._batch(3, self.N + 4))
        expected = self._oids(db)

        reopened = attach_database(tmp_path, wal_frames=db.ingest_wal.frames())
        assert self._oids(reopened) == expected
        assert reopened.table("t").num_live_rows == self.N + 7

    def test_torn_wal_frame_skipped_or_raised_on_attach(self, tmp_path, caplog):
        db = self._disk_db(tmp_path)
        db.table("t").insert_rows(self._batch(2, self.N))
        db.table("t").insert_rows(self._batch(2, self.N + 2))
        frames = db.ingest_wal.frames()
        mangled = bytearray(frames[-1])
        mangled[-1] ^= 0xFF
        frames[-1] = bytes(mangled)

        with caplog.at_level("WARNING", logger="repro.ingest.wal"):
            reopened = attach_database(tmp_path, wal_frames=frames)
        got = self._oids(reopened)
        assert {self.N, self.N + 1} <= got  # the healthy record replayed
        assert self.N + 2 not in got  # the torn one skipped, loudly
        assert any("checksum" in m for m in caplog.messages)
        with pytest.raises(ValueError, match="checksum"):
            attach_database(tmp_path, wal_frames=frames, on_corrupt="raise")


class TestDelaunayPyramid:
    @pytest.fixture(scope="class")
    def pyramid(self, clustered_points_3d):
        return DelaunayPyramid.build(
            clustered_points_3d, level_sizes=[40, 200, 800], seed=3
        )

    def test_levels(self, pyramid):
        assert pyramid.num_levels == 3
        assert pyramid.level(0).num_seeds == 40
        assert pyramid.level(2).num_seeds == 800

    def test_nested(self, pyramid):
        assert pyramid.is_nested()

    def test_level_for_view_refines(self, pyramid, clustered_points_3d):
        whole = Box.from_points(clustered_points_3d)
        # A huge target forces the finest level.
        assert pyramid.level_for_view(whole, 10**6) == 2
        # A tiny target is satisfied by the coarsest.
        assert pyramid.level_for_view(whole, 5) == 0

    def test_edges_in_view_monotone_in_level(self, pyramid, clustered_points_3d):
        whole = Box.from_points(clustered_points_3d)
        counts = [pyramid.edges_in_view(lvl, whole) for lvl in range(3)]
        assert counts == sorted(counts)

    def test_validation(self, clustered_points_3d):
        with pytest.raises(ValueError):
            DelaunayPyramid.build(clustered_points_3d, level_sizes=[100, 50])
        with pytest.raises(ValueError):
            DelaunayPyramid.build(
                clustered_points_3d, level_sizes=[10, 10**7]
            )
        with pytest.raises(ValueError):
            DelaunayPyramid([], [])

    def test_default_levels(self, clustered_points_3d):
        pyramid = DelaunayPyramid.build(clustered_points_3d, seed=4)
        assert pyramid.num_levels == 3
        assert pyramid.is_nested()


class TestMortonDecode:
    def test_roundtrip_2d(self):
        for code in range(256):
            assert morton_index(morton_decode(code, 2, 4), 4) == code

    def test_roundtrip_3d(self):
        for code in range(512):
            assert morton_index(morton_decode(code, 3, 3), 3) == code
