"""Auto-tuning and divergent replica routing (:mod:`repro.tune`).

Covers the tentpole loop end to end: the workload trace recorder ring
and its JSONL round trip, seeded determinism of the cost-replay
evaluator and greedy selector, budget monotonicity of the selection
(a property the prefix construction guarantees), differential identity
of routed replica answers against a single-table reference -- solo,
batched, under faults, and under ingest churn -- the ingest fan-out
regression (rows reach every replica before any merge), planner
calibration persistence across a catalog reattach, and the
degraded-answer cache veto.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, KdTreeIndex, QueryPlanner, sdss_color_sample
from repro.bitmap import BitmapIndex
from repro.db.errors import StorageFault
from repro.db.persistence import attach_database, save_catalog
from repro.db.table import DEFAULT_ROWS_PER_PAGE
from repro.datasets import QueryWorkload
from repro.geometry.halfspace import Halfspace, Polyhedron
from repro.service import QueryService
from repro.service.result_cache import query_fingerprint
from repro.tune import (
    CostReplayEvaluator,
    GreedyConfigSelector,
    ReplicaRouter,
    ReplicaSet,
    ReplicaSpec,
    TableProfile,
    TuningConfig,
    WorkloadTraceRecorder,
    default_config,
    read_trace,
)

BANDS = ["u", "g", "r", "i", "z"]


def _columns(rows: int, seed: int = 0):
    sample = sdss_color_sample(rows, seed=seed)
    columns = dict(sample.columns())
    columns["oid"] = np.arange(rows, dtype=np.int64)
    return sample, columns


def _slab(dim: int, axis: int, low: float, high: float) -> Polyhedron:
    e = np.zeros(dim)
    e[axis] = 1.0
    return Polyhedron([Halfspace(e, high), Halfspace(-e, -low)])


def _trivial(dim: int) -> Polyhedron:
    e = np.zeros(dim)
    e[0] = 1.0
    return Polyhedron([Halfspace(e, np.inf)])


def _mixed_queries(sample, count: int, seed: int = 0):
    workload = QueryWorkload(sample.magnitudes, seed=seed)
    base = workload.mixed(count, selectivities=[0.001, 0.01, 0.1, 0.4])
    return [q.polyhedron(BANDS) for q in base]


def _oids(rows: dict) -> set:
    return set(np.asarray(rows["oid"]).tolist())


@pytest.fixture(scope="module")
def traced_planner():
    """A default-config planner with a recorder, plus its executed trace."""
    sample, columns = _columns(3000, seed=3)
    db = Database.in_memory(buffer_pages=None)
    index = KdTreeIndex.build(db, "mags", columns, BANDS)
    BitmapIndex.build(db, "mags", BANDS)
    planner = QueryPlanner(index, seed=3)
    recorder = WorkloadTraceRecorder()
    planner.trace_recorder = recorder
    for polyhedron in _mixed_queries(sample, 24, seed=3):
        planner.execute(polyhedron)
    member_values = columns["r"][:: len(columns["r"]) // 20][:15]
    planner.execute(_trivial(5), memberships={"r": member_values})
    return sample, columns, planner, recorder


class TestTraceRecorder:
    def test_ring_is_bounded_but_counts_everything(self, traced_planner):
        sample, columns, planner, _ = traced_planner
        small = WorkloadTraceRecorder(capacity=4)
        planner.trace_recorder = small
        try:
            queries = _mixed_queries(sample, 10, seed=11)
            for polyhedron in queries:
                planner.execute(polyhedron)
        finally:
            planner.trace_recorder = traced_planner[3]
        assert len(small.observations()) == 4
        assert small.recorded == 10

    def test_observations_carry_plan_outcomes(self, traced_planner):
        _, _, _, recorder = traced_planner
        observations = recorder.observations()
        assert observations, "planner should have recorded executions"
        for obs in observations:
            assert obs.engine in {"kdtree", "scan", "bitmap", "hybrid"}
            assert obs.actual_pages >= 0
            assert obs.wall_s >= 0.0
            assert obs.dims == tuple(BANDS)
        kinds = recorder.kind_counts()
        assert kinds.get("membership", 0) >= 1
        assert kinds.get("box", 0) >= 1

    def test_jsonl_round_trip(self, traced_planner, tmp_path):
        _, _, _, recorder = traced_planner
        path = tmp_path / "trace.jsonl"
        count = recorder.export_jsonl(path)
        assert count == len(recorder.observations())
        loaded = read_trace(path)
        assert len(loaded) == count
        for original, parsed in zip(recorder.observations(), loaded):
            assert parsed.fingerprint == original.fingerprint
            assert parsed.kind == original.kind
            assert parsed.engine == original.engine
            assert parsed.lows == original.lows
            assert parsed.highs == original.highs
            assert parsed.memberships == original.memberships
            assert parsed.actual_pages == original.actual_pages


class TestSelectorDeterminism:
    def test_evaluator_and_selector_are_seed_deterministic(self, traced_planner):
        _, columns, _, recorder = traced_planner
        trace = recorder.observations()

        def run():
            profile = TableProfile(
                columns, BANDS, len(columns["oid"]), DEFAULT_ROWS_PER_PAGE,
                seed=17,
            )
            evaluator = CostReplayEvaluator(profile, trace=trace)
            selector = GreedyConfigSelector(evaluator)
            return selector.select(trace)

        first, second = run(), run()
        assert first.config == second.config
        assert first.predicted_pages == second.predicted_pages
        assert [s.description for s in first.steps] == [
            s.description for s in second.steps
        ]

    def test_divergent_plan_is_deterministic(self, traced_planner):
        _, columns, _, recorder = traced_planner
        trace = recorder.observations()
        profile = TableProfile(
            columns, BANDS, len(columns["oid"]), DEFAULT_ROWS_PER_PAGE, seed=17
        )
        evaluator = CostReplayEvaluator(profile, trace=trace)
        selector = GreedyConfigSelector(evaluator)
        first = selector.select_divergent(trace, 2)
        second = selector.select_divergent(trace, 2)
        assert [c.config_id() for c in first.configs] == [
            c.config_id() for c in second.configs
        ]
        assert first.assignment == second.assignment
        assert first.predicted_pages == second.predicted_pages


class TestBudgetMonotonicity:
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_more_budget_never_predicts_worse(self, seed):
        sample, columns = _columns(2000, seed=seed)
        db = Database.in_memory(buffer_pages=None)
        index = KdTreeIndex.build(db, "mags", columns, BANDS)
        BitmapIndex.build(db, "mags", BANDS)
        planner = QueryPlanner(index, seed=seed)
        recorder = WorkloadTraceRecorder()
        planner.trace_recorder = recorder
        for polyhedron in _mixed_queries(sample, 16, seed=seed):
            planner.execute(polyhedron)
        trace = recorder.observations()
        profile = TableProfile(
            columns, BANDS, len(columns["oid"]), DEFAULT_ROWS_PER_PAGE,
            seed=seed,
        )
        selector = GreedyConfigSelector(
            CostReplayEvaluator(profile, trace=trace)
        )
        budgets = [0, 64 << 10, 1 << 20, 16 << 20, 256 << 20, None]
        results = [selector.select(trace, budget_bytes=b) for b in budgets]
        for tighter, looser in zip(results, results[1:]):
            assert looser.predicted_pages <= tighter.predicted_pages
        for budget, result in zip(budgets, results):
            assert result.predicted_pages <= result.baseline_pages
            if budget is not None:
                assert result.spend_bytes <= budget
            # The budgeted choice is a prefix of the unlimited path.
            unlimited = results[-1]
            assert [s.description for s in result.steps] == [
                s.description for s in unlimited.steps[: len(result.steps)]
            ]


class _DeadEngine:
    """Engine stand-in whose every data-path call storage-faults.

    Prediction keeps answering (a sick replica still looks cheap to the
    router), so degradation is exercised on the execution path, exactly
    where a real storage outage would bite.
    """

    def __init__(self, inner):
        self.inner = inner

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def execute(self, *args, **kwargs):
        raise StorageFault("replica offline (injected)")

    def execute_batch(self, *args, **kwargs):
        raise StorageFault("replica offline (injected)")


@pytest.fixture(scope="class")
def routed_setup():
    """Two divergent replicas + an independent single-table reference."""
    sample, columns = _columns(2500, seed=5)
    configs = [
        default_config(),
        default_config().replace(
            bitmap_bins=128,
            bitmap_dims=("r",),
            zone_map_columns=("r", "oid"),
            cluster_dim="r",
        ),
    ]
    replica_set = ReplicaSet.build(
        "mags", columns, BANDS, configs, seed=5, key_column="oid"
    )
    router = ReplicaRouter(replica_set)
    ref_db = Database.in_memory(buffer_pages=None)
    reference = QueryPlanner(
        KdTreeIndex.build(ref_db, "mags_ref", columns, BANDS), seed=5
    )
    queries = _mixed_queries(sample, 12, seed=5)
    member_values = columns["r"][:: len(columns["r"]) // 30][:25]
    memberships = [None] * len(queries) + [{"r": member_values}]
    queries.append(_trivial(5))
    return sample, columns, replica_set, router, reference, queries, memberships


class TestRoutedDifferential:
    def test_solo_routed_equals_reference(self, routed_setup):
        _, _, _, router, reference, queries, memberships = routed_setup
        for polyhedron, member in zip(queries, memberships):
            routed = router.execute(polyhedron, memberships=member)
            serial = reference.execute(polyhedron, memberships=member)
            assert _oids(routed.rows) == _oids(serial.rows)
            assert "replica_id" in routed.stats.extra

    def test_batched_routed_equals_reference(self, routed_setup):
        _, _, _, router, reference, queries, memberships = routed_setup
        batch = router.execute_batch(queries, memberships_list=memberships)
        assert len(batch.members) == len(queries)
        for m, member_result in enumerate(batch.members):
            assert member_result.error is None
            serial = reference.execute(queries[m], memberships=memberships[m])
            assert _oids(member_result.planned.rows) == _oids(serial.rows)

    def test_faulted_replica_degrades_not_corrupts(self, routed_setup):
        _, _, replica_set, router, reference, queries, memberships = (
            routed_setup
        )
        victim = router.route(queries[0], memberships[0])[0]
        healthy_engine = replica_set[victim].engine
        replica_set[victim].engine = _DeadEngine(healthy_engine)
        try:
            routed = router.execute(queries[0], memberships=memberships[0])
            serial = reference.execute(queries[0], memberships=memberships[0])
            assert _oids(routed.rows) == _oids(serial.rows)
            assert routed.fallback
            assert routed.no_cache
            assert routed.stats.extra["replica_id"] != victim
            assert router.routing_report()["degraded"] >= 1
            # Batch members preferred onto the dead replica degrade too.
            batch = router.execute_batch(
                queries[:4], memberships_list=memberships[:4]
            )
            for m, member_result in enumerate(batch.members):
                assert member_result.error is None
                serial = reference.execute(
                    queries[m], memberships=memberships[m]
                )
                assert _oids(member_result.planned.rows) == _oids(serial.rows)
        finally:
            replica_set[victim].engine = healthy_engine

    def test_all_replicas_dead_raises_structured_fault(self, routed_setup):
        _, _, replica_set, router, _, queries, _ = routed_setup
        saved = [replica.engine for replica in replica_set]
        for replica in replica_set:
            replica.engine = _DeadEngine(replica.engine)
        try:
            with pytest.raises(StorageFault):
                router.execute(queries[0])
        finally:
            for replica, engine in zip(replica_set, saved):
                replica.engine = engine


class TestIngestFanOut:
    def test_inserts_reach_every_replica_before_any_merge(self):
        _, columns = _columns(1200, seed=9)
        configs = [
            default_config(),
            default_config().replace(bitmap_bins=64, bitmap_dims=("g",)),
        ]
        replica_set = ReplicaSet.build(
            "mags", columns, BANDS, configs, seed=9, key_column="oid"
        )
        fresh_oids = np.arange(1200, 1212, dtype=np.int64)
        fresh = {
            name: np.asarray(values)[:12].copy()
            for name, values in columns.items()
        }
        fresh["oid"] = fresh_oids
        replica_set.insert_rows(fresh)
        probe = {"oid": fresh_oids.astype(np.float64)}
        # Visible on EVERY replica straight from its delta tier -- no
        # merge has run yet.
        for replica in replica_set:
            planned = replica.engine.execute(_trivial(5), memberships=probe)
            assert _oids(planned.rows) == set(fresh_oids.tolist()), (
                f"replica {replica.replica_id} missing unmerged inserts"
            )
        replica_set.merge_all()
        for replica in replica_set:
            planned = replica.engine.execute(_trivial(5), memberships=probe)
            assert _oids(planned.rows) == set(fresh_oids.tolist())

    def test_routed_equals_reference_under_churn(self):
        sample, columns = _columns(1500, seed=13)
        configs = [
            default_config(),
            default_config().replace(bitmap_bins=64, bitmap_dims=("r",)),
        ]
        replica_set = ReplicaSet.build(
            "mags", columns, BANDS, configs, seed=13, key_column="oid"
        )
        router = ReplicaRouter(replica_set)
        ref_db = Database.in_memory(buffer_pages=None)
        ref_index = KdTreeIndex.build(ref_db, "mags_ref", columns, BANDS)
        reference = QueryPlanner(ref_index, seed=13)
        queries = _mixed_queries(sample, 6, seed=13)

        fresh = {
            name: np.asarray(values)[:40].copy()
            for name, values in columns.items()
        }
        fresh["oid"] = np.arange(1500, 1540, dtype=np.int64)
        replica_set.insert_rows(fresh)
        ref_index.table.insert_rows(fresh)

        victims = columns["oid"][100:110]
        replica_set.delete_by_key(victims)
        ref_rows = reference.execute(
            _trivial(5), memberships={"oid": victims.astype(np.float64)}
        ).rows
        ref_index.table.delete_rows(ref_rows["_row_id"])

        for polyhedron in queries:
            routed = router.execute(polyhedron)
            serial = reference.execute(polyhedron)
            assert _oids(routed.rows) == _oids(serial.rows)
        replica_set.merge_all()
        ref_db.ingest.merge_all(threshold=0.0)
        for polyhedron in queries:
            routed = router.execute(polyhedron)
            serial = reference.execute(polyhedron)
            assert _oids(routed.rows) == _oids(serial.rows)


class TestCalibrationPersistence:
    def test_calibration_survives_catalog_reattach(self, tmp_path):
        sample, columns = _columns(1500, seed=21)
        db = Database.on_disk(tmp_path, buffer_pages=None)
        index = KdTreeIndex.build(db, "mags", columns, BANDS)
        BitmapIndex.build(db, "mags", BANDS)
        planner = QueryPlanner(index, seed=21)
        for polyhedron in _mixed_queries(sample, 10, seed=21):
            planner.execute(polyhedron)
        warmed = planner.cost_report()
        assert warmed["observations"] > 0
        save_catalog(db)

        reopened = attach_database(tmp_path, buffer_pages=None)
        new_index = reopened.index("mags.kdtree")
        warm_planner = QueryPlanner(new_index, seed=21)
        report = warm_planner.cost_report()
        assert report["observations"] == warmed["observations"]
        assert report["calibration"] == pytest.approx(warmed["calibration"])
        assert report["selectivity_bias"] == pytest.approx(
            warmed["selectivity_bias"]
        )

    def test_live_databases_do_not_warm_new_planners(self):
        sample, columns = _columns(1200, seed=22)
        db = Database.in_memory(buffer_pages=None)
        index = KdTreeIndex.build(db, "mags", columns, BANDS)
        planner = QueryPlanner(index, seed=22)
        for polyhedron in _mixed_queries(sample, 6, seed=22):
            planner.execute(polyhedron)
        assert planner.cost_report()["observations"] > 0
        # The snapshot is persisted for a future reattach, but a second
        # planner over the same live database starts neutral.
        fresh = QueryPlanner(index, seed=22)
        assert fresh.cost_report()["observations"] == 0


class TestServiceIntegration:
    def test_degraded_answers_never_enter_the_result_cache(self):
        sample, columns = _columns(1500, seed=31)
        configs = [
            default_config(),
            default_config().replace(bitmap_bins=64, bitmap_dims=("r",)),
        ]
        replica_set = ReplicaSet.build(
            "mags", columns, BANDS, configs, seed=31, key_column="oid"
        )
        router = ReplicaRouter(replica_set)
        polyhedron = _mixed_queries(sample, 1, seed=31)[0]
        victim = router.route(polyhedron)[0]
        healthy_engine = replica_set[victim].engine
        replica_set[victim].engine = _DeadEngine(healthy_engine)
        service = QueryService(None, replicas=router, workers=2)
        try:
            with service:
                first = service.submit(polyhedron).result(timeout=30.0)
                second = service.submit(polyhedron).result(timeout=30.0)
            assert first.fallback
            assert not first.cache_hit
            # The degraded answer was vetoed from the cache, so the
            # repeat re-executes instead of replaying it.
            assert not second.cache_hit
            assert service.cache.insertions == 0
        finally:
            replica_set[victim].engine = healthy_engine

    def test_replica_scoped_fingerprints_differ(self):
        polyhedron = _slab(5, 2, 20.0, 21.0)
        base = dict(
            table_name="mags", dims=BANDS, polyhedron=polyhedron,
            layout_version="v1",
        )
        scoped_a = query_fingerprint(**base, config_id="r0:aaaa")
        scoped_b = query_fingerprint(**base, config_id="r1:bbbb")
        unscoped = query_fingerprint(**base)
        assert len({scoped_a, scoped_b, unscoped}) == 3

    def test_service_trace_recorder_tags_replicas(self):
        sample, columns = _columns(1200, seed=33)
        replica_set = ReplicaSet.build(
            "mags", columns, BANDS,
            [default_config(), default_config().replace(bitmap_bins=16)],
            seed=33, key_column="oid",
        )
        recorder = WorkloadTraceRecorder()
        service = QueryService(
            None, replicas=replica_set, workers=2, trace_recorder=recorder
        )
        with service:
            for polyhedron in _mixed_queries(sample, 5, seed=33):
                service.submit(polyhedron).result(timeout=30.0)
        observations = recorder.observations()
        assert observations
        assert all(obs.replica.startswith("r") for obs in observations)

    def test_replica_specs_round_trip(self):
        _, columns = _columns(600, seed=35)
        configs = [default_config(), default_config().replace(shards=2)]
        replica_set = ReplicaSet.build(
            "mags", columns, BANDS, configs, seed=35, key_column="oid"
        )
        for spec in replica_set.specs():
            clone = ReplicaSpec.from_dict(spec.to_dict())
            assert clone == spec
            assert clone.config.config_id() == spec.config.config_id()


class TestShardedReplica:
    def test_sharded_replica_config_answers_identically(self):
        sample, columns = _columns(1600, seed=41)
        configs = [
            default_config().replace(shards=2, bitmap_bins=16),
            default_config(),
        ]
        replica_set = ReplicaSet.build(
            "mags", columns, BANDS, configs, seed=41, key_column="oid"
        )
        router = ReplicaRouter(replica_set)
        ref_db = Database.in_memory(buffer_pages=None)
        reference = QueryPlanner(
            KdTreeIndex.build(ref_db, "mags_ref", columns, BANDS), seed=41
        )
        for polyhedron in _mixed_queries(sample, 8, seed=41):
            routed = router.execute(polyhedron)
            serial = reference.execute(polyhedron)
            assert _oids(routed.rows) == _oids(serial.rows)
        replica_set.close()
