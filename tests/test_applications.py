"""Tests for the application layer: archive, planner, outlier detectors."""

import numpy as np
import pytest

from repro import (
    Database,
    KdTreeIndex,
    KdTreeOutlierDetector,
    QueryPlanner,
    QueryWorkload,
    SpectrumArchive,
    SpectrumTemplates,
    VoronoiOutlierDetector,
    sdss_color_sample,
)
from repro.ml.outliers import flag_fraction

BANDS = ["u", "g", "r", "i", "z"]


class TestSpectrumArchive:
    @pytest.fixture(scope="class")
    def archive(self):
        rng = np.random.default_rng(7)
        templates = SpectrumTemplates()
        spectra, classes = [], []
        for _ in range(50):
            z = rng.uniform(0.0, 0.25)
            spectra.append(templates.observe(templates.elliptical(z), 40, rng))
            classes.append(0)
            spectra.append(templates.observe(templates.quasar(z), 40, rng))
            classes.append(1)
            spectra.append(templates.observe(templates.starburst(z), 40, rng))
            classes.append(2)
        db = Database.in_memory(buffer_pages=None)
        archive = SpectrumArchive.build(
            db, "arch", np.array(spectra), metadata={"cls": np.array(classes)}
        )
        return archive, np.array(spectra), np.array(classes)

    def test_shapes(self, archive):
        ar, spectra, _ = archive
        assert ar.num_spectra == len(spectra)
        assert ar.num_components == 5
        assert len(ar.explained_variance_ratio()) == 5

    def test_fetch_roundtrip(self, archive):
        ar, spectra, _ = archive
        for sid in (0, 73, 149):
            assert np.allclose(ar.fetch_spectrum(sid), spectra[sid])

    def test_fetch_bounds(self, archive):
        ar, _, _ = archive
        with pytest.raises(IndexError):
            ar.fetch_spectrum(10_000)

    def test_similar_same_class(self, archive):
        ar, spectra, classes = archive
        correct = total = 0
        for query in range(0, len(spectra), 17):
            for match in ar.similar(spectra[query], k=2):
                correct += int(match.metadata["cls"] == classes[query])
                total += 1
        assert correct / total > 0.9

    def test_similar_skips_self(self, archive):
        ar, spectra, _ = archive
        matches = ar.similar(spectra[0], k=2)
        assert all(m.spectrum_id != 0 for m in matches)

    def test_similar_keep_self(self, archive):
        ar, spectra, _ = archive
        matches = ar.similar(spectra[0], k=1, skip_self=False)
        assert matches[0].spectrum_id == 0
        assert matches[0].distance < 1e-9

    def test_similar_returns_full_spectra(self, archive):
        ar, spectra, _ = archive
        match = ar.similar(spectra[3], k=1)[0]
        assert match.spectrum.shape == spectra[0].shape
        assert np.allclose(match.spectrum, spectra[match.spectrum_id])

    def test_bulk_scan_column(self, archive):
        ar, spectra, _ = archive
        assert np.allclose(ar.spectra_column().read_all(), spectra)

    def test_validation(self):
        db = Database.in_memory()
        with pytest.raises(ValueError):
            SpectrumArchive.build(db, "bad", np.zeros((1, 10)))
        with pytest.raises(ValueError):
            SpectrumArchive.build(
                db, "bad2", np.random.default_rng(0).normal(size=(10, 20)),
                metadata={"x": np.zeros(3)},
            )
        ar = SpectrumArchive.build(
            db, "ok", np.random.default_rng(0).normal(size=(10, 20)),
            num_components=2,
        )
        with pytest.raises(ValueError):
            ar.similar(np.zeros(20), k=0)


class TestQueryPlanner:
    @pytest.fixture(scope="class")
    def planner_setup(self):
        sample = sdss_color_sample(20_000, seed=3)
        db = Database.in_memory(buffer_pages=None)
        index = KdTreeIndex.build(db, "plan_kd", sample.columns(), BANDS)
        return sample, QueryPlanner(index, seed=1)

    def test_selective_query_uses_index(self, planner_setup):
        sample, planner = planner_setup
        workload = QueryWorkload(sample.magnitudes, seed=4)
        result = planner.execute(workload.box_query(0.002).polyhedron(BANDS))
        assert result.chosen_path == "kdtree"

    def test_unselective_query_uses_scan(self, planner_setup):
        sample, planner = planner_setup
        workload = QueryWorkload(sample.magnitudes, seed=5)
        result = planner.execute(workload.box_query(0.7).polyhedron(BANDS))
        assert result.chosen_path == "scan"
        assert result.estimated_selectivity > 0.25

    def test_results_are_exact_either_way(self, planner_setup):
        sample, planner = planner_setup
        workload = QueryWorkload(sample.magnitudes, seed=6)
        for target in (0.01, 0.5):
            poly = workload.box_query(target).polyhedron(BANDS)
            result = planner.execute(poly)
            expected = int(poly.contains_points(sample.magnitudes).sum())
            assert result.stats.rows_returned == expected

    def test_estimates_are_calibrated(self, planner_setup):
        sample, planner = planner_setup
        workload = QueryWorkload(sample.magnitudes, seed=7)
        for target in (0.05, 0.3):
            poly = workload.box_query(target).polyhedron(BANDS)
            estimate, probed = planner.estimate_selectivity(poly)
            truth = poly.contains_points(sample.magnitudes).mean()
            assert probed >= 1
            assert abs(estimate - truth) < 0.15

    def test_validation(self, planner_setup):
        _, planner = planner_setup
        with pytest.raises(ValueError):
            QueryPlanner(planner.index, crossover=0.0)
        with pytest.raises(ValueError):
            QueryPlanner(planner.index, sample_pages=0)


class TestOutlierDetectors:
    @pytest.fixture(scope="class")
    def labeled_colors(self):
        sample = sdss_color_sample(15_000, seed=9)
        return sample.colors(), sample.labels == 3

    def test_kd_detector_beats_chance(self, labeled_colors):
        colors, truth = labeled_colors
        detector = KdTreeOutlierDetector(colors)
        flags = detector.flag(0.05)
        precision = truth[flags].mean()
        assert precision > 3 * truth.mean()

    def test_voronoi_detector_beats_chance(self, labeled_colors):
        colors, truth = labeled_colors
        detector = VoronoiOutlierDetector(colors, num_seeds=400)
        flags = detector.flag(0.05)
        precision = truth[flags].mean()
        assert precision > 5 * truth.mean()

    def test_scores_shape_and_direction(self, labeled_colors):
        colors, truth = labeled_colors
        detector = VoronoiOutlierDetector(colors, num_seeds=400)
        scores = detector.scores()
        assert scores.shape == (len(colors),)
        # Outliers score higher on average.
        assert scores[truth].mean() > scores[~truth].mean()

    def test_flag_fraction_size(self, labeled_colors):
        colors, _ = labeled_colors
        detector = KdTreeOutlierDetector(colors)
        flags = detector.flag(0.1)
        assert abs(flags.mean() - 0.1) < 0.05

    def test_flag_fraction_validation(self):
        with pytest.raises(ValueError):
            flag_fraction(np.arange(10.0), 0.0)
        with pytest.raises(ValueError):
            flag_fraction(np.arange(10.0), 1.0)

    def test_voronoi_seed_guard(self):
        with pytest.raises(ValueError):
            VoronoiOutlierDetector(np.zeros((10, 2)), num_seeds=50)

    def test_kd_detector_isolated_point(self):
        # One far-away point in a tight cluster must share the top score
        # (its leaf's box is stretched to reach it, so the whole leaf --
        # the kd detector's resolution limit -- scores maximal).
        rng = np.random.default_rng(0)
        pts = np.vstack([rng.normal(0, 0.1, (500, 2)), [[50.0, 50.0]]])
        detector = KdTreeOutlierDetector(pts, num_levels=5)
        scores = detector.scores()
        assert scores[500] == scores.max()
