"""Tests for the database catalog and stored procedures."""

import numpy as np
import pytest

from repro.db import Database
from repro.db.procedures import procedure


@pytest.fixture()
def db():
    return Database.in_memory(buffer_pages=8)


class TestCatalog:
    def test_table_lookup(self, db):
        db.create_table("t", {"a": np.arange(10)})
        assert db.table("t").num_rows == 10
        assert db.has_table("t")
        assert not db.has_table("u")

    def test_missing_table(self, db):
        with pytest.raises(KeyError):
            db.table("ghost")

    def test_table_names_sorted(self, db):
        db.create_table("zeta", {"a": np.arange(2)})
        db.create_table("alpha", {"a": np.arange(2)})
        assert db.table_names() == ["alpha", "zeta"]

    def test_drop_table_releases_pages(self, db):
        db.create_table("t", {"a": np.arange(100)}, rows_per_page=10)
        assert db.storage.num_pages("t") == 10
        db.drop_table("t")
        assert not db.has_table("t")
        assert db.storage.num_pages("t") == 0

    def test_drop_table_removes_its_indexes(self, db):
        db.create_table("t", {"a": np.arange(10)})

        class FakeIndex:
            table_name = "t"

        db.register_index("t.fake", FakeIndex())
        db.drop_table("t")
        assert db.index_names() == []

    def test_index_registry(self, db):
        sentinel = object()
        db.register_index("idx", sentinel)
        assert db.index("idx") is sentinel
        with pytest.raises(ValueError):
            db.register_index("idx", object())
        with pytest.raises(KeyError):
            db.index("ghost")

    def test_on_disk_constructor(self, tmp_path):
        db = Database.on_disk(tmp_path / "data")
        db.create_table("t", {"a": np.arange(10)}, rows_per_page=4)
        assert (tmp_path / "data" / "t").is_dir()

    def test_reset_io_stats(self, db):
        db.create_table("t", {"a": np.arange(10)})
        assert db.io_stats.page_writes > 0
        db.reset_io_stats()
        assert db.io_stats.page_writes == 0

    def test_cold_cache_forces_reads(self, db):
        table = db.create_table("t", {"a": np.arange(100)}, rows_per_page=10)
        db.cold_cache()
        db.reset_io_stats()
        table.read_column("a")
        assert db.io_stats.page_reads == 10


class TestProcedures:
    def test_register_and_call(self, db):
        db.create_table("t", {"a": np.arange(10)})

        def count_rows(database, table_name):
            return database.table(table_name).num_rows

        db.procedures.register("spCountRows", count_rows)
        assert db.procedures.call("spCountRows", "t") == 10
        assert db.procedures.call_count("spCountRows") == 1
        assert "spCountRows" in db.procedures

    def test_decorator_form(self, db):
        @procedure(db.procedures, "spDouble", description="doubles a number")
        def double(database, x):
            return 2 * x

        assert db.procedures.call("spDouble", 21) == 42
        assert db.procedures.describe("spDouble") == "doubles a number"

    def test_description_from_docstring(self, db):
        def proc(database):
            """First line becomes the description.

            Rest ignored.
            """

        db.procedures.register("spDoc", proc)
        assert db.procedures.describe("spDoc") == "First line becomes the description."

    def test_duplicate_name(self, db):
        db.procedures.register("p", lambda database: None)
        with pytest.raises(ValueError):
            db.procedures.register("p", lambda database: None)

    def test_missing_procedure(self, db):
        with pytest.raises(KeyError):
            db.procedures.call("ghost")

    def test_names(self, db):
        db.procedures.register("b", lambda database: None)
        db.procedures.register("a", lambda database: None)
        assert db.procedures.names() == ["a", "b"]
