"""Differential correctness: four executors, one answer.

Property-based (hypothesis) random boxes and polyhedra asserting that
the kd-tree index, the layered grid, the sharded scatter-gather engine,
and the index-free full scan return *identical row sets* over the same
data.  Each engine clusters rows differently, so identity is compared on
a stable ``oid`` column carried through every table.

This is the clean-room half of the robustness story; the fault sweeps
(test_faults.py) re-assert the same identities with storage failing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Box,
    Database,
    KdPartitioner,
    KdTreeIndex,
    Polyhedron,
    ScatterGatherExecutor,
    knn_boundary_points,
    knn_brute_force,
)
from repro.db.scan import BatchScanMember, batch_full_scan
from repro.net.pool import ShardWorkerPool
from repro.core.layered_grid import LayeredGridIndex
from repro.core.queries import polyhedron_full_scan
from repro.geometry.halfspace import Halfspace
from repro.service import rows_equal

pytestmark = pytest.mark.faultsweep

DIMS = ["x", "y", "z"]
NUM_ROWS = 3000

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def differential_data():
    """The shared bimodal dataset every engine in this module indexes."""
    rng = np.random.default_rng(13)
    points = np.vstack(
        [
            rng.normal([0.0, 0.0, 0.0], [0.5, 0.3, 0.7], size=(NUM_ROWS // 2, 3)),
            rng.normal([3.0, 2.0, 1.0], [0.9, 0.6, 0.4], size=(NUM_ROWS // 2, 3)),
        ]
    )
    data = {d: points[:, i] for i, d in enumerate(DIMS)}
    data["oid"] = np.arange(NUM_ROWS, dtype=np.int64)
    return data


@pytest.fixture(scope="module")
def differential_setup(differential_data):
    """One dataset, three access paths: kd table, grid table, plain table."""
    data = differential_data
    db = Database.in_memory(buffer_pages=None)
    kd = KdTreeIndex.build(db, "diff_kd", dict(data), DIMS)
    grid = LayeredGridIndex.build(db, "diff_grid", dict(data), DIMS, base=128)
    plain = db.create_table("diff_plain", dict(data))
    return db, kd, grid, plain


@pytest.fixture(scope="module")
def sharded_executor(differential_data):
    """A 4-way scatter-gather engine over the same dataset."""
    shard_set = KdPartitioner(4, buffer_pages=None).partition(
        "diff_sharded", dict(differential_data), DIMS
    )
    executor = ScatterGatherExecutor(shard_set)
    yield executor
    executor.close()


def _oids(rows: dict) -> frozenset[int]:
    return frozenset(int(v) for v in rows["oid"])


def _box_from_draws(centers, widths) -> Box:
    lo = np.asarray(centers) - np.asarray(widths) / 2.0
    hi = np.asarray(centers) + np.asarray(widths) / 2.0
    return Box(lo, hi)


# The data lives roughly in [-2, 6]^3; boxes are drawn to cover empty,
# partial, and near-total selectivities.
_center = st.floats(min_value=-2.0, max_value=5.0, allow_nan=False)
_width = st.floats(min_value=0.05, max_value=6.0, allow_nan=False)
_box_strategy = st.tuples(
    st.tuples(_center, _center, _center), st.tuples(_width, _width, _width)
)


class TestBoxDifferential:
    @_SETTINGS
    @given(draw=_box_strategy)
    def test_sharded_matches_scan_on_random_boxes(
        self, differential_setup, sharded_executor, draw
    ):
        # The scatter-gather engine re-clusters rows across four private
        # databases; the answer must still be the full scan's, oid for oid.
        db, kd, grid, plain = differential_setup
        polyhedron = Polyhedron.from_box(_box_from_draws(*draw))
        sharded = sharded_executor.execute(polyhedron)
        scan_rows, _ = polyhedron_full_scan(plain, DIMS, polyhedron)
        assert _oids(sharded.rows) == _oids(scan_rows)
        assert not sharded.partial
        assert sharded.shards_dispatched + sharded.shards_pruned == 4

    @_SETTINGS
    @given(draw=_box_strategy)
    def test_kdtree_grid_and_scan_agree_on_random_boxes(self, differential_setup, draw):
        db, kd, grid, plain = differential_setup
        box = _box_from_draws(*draw)
        polyhedron = Polyhedron.from_box(box)

        kd_rows, _ = kd.query_polyhedron(polyhedron)
        scan_rows, _ = polyhedron_full_scan(plain, DIMS, polyhedron)
        grid_result = grid.query_box(box)
        grid_oids = frozenset(
            int(v) for v in grid.table.gather(grid_result.row_ids)["oid"]
        )

        assert _oids(kd_rows) == _oids(scan_rows)
        assert grid_oids == _oids(scan_rows)

    @_SETTINGS
    @given(draw=_box_strategy)
    def test_kdtree_matches_scan_row_for_row_on_its_own_table(
        self, differential_setup, draw
    ):
        # Same table on both sides: compare full row contents, not just ids.
        db, kd, grid, plain = differential_setup
        polyhedron = Polyhedron.from_box(_box_from_draws(*draw))
        kd_rows, _ = kd.query_polyhedron(polyhedron)
        scan_rows, _ = polyhedron_full_scan(kd.table, DIMS, polyhedron)
        assert rows_equal(kd_rows, scan_rows)


# Random convex polyhedra: a few halfspaces with arbitrary orientations,
# offsets placed so the cutting planes pass through the data cloud.
_direction = st.tuples(
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
).filter(lambda v: abs(v[0]) + abs(v[1]) + abs(v[2]) > 1e-3)
_anchor = st.tuples(
    st.floats(min_value=-1.0, max_value=4.0, allow_nan=False),
    st.floats(min_value=-1.0, max_value=3.0, allow_nan=False),
    st.floats(min_value=-1.0, max_value=2.0, allow_nan=False),
)
_polyhedron_strategy = st.lists(
    st.tuples(_direction, _anchor), min_size=2, max_size=6
)


class TestPolyhedronDifferential:
    @_SETTINGS
    @given(facets=_polyhedron_strategy)
    def test_kdtree_matches_scan_on_random_polyhedra(self, differential_setup, facets):
        db, kd, grid, plain = differential_setup
        halfspaces = []
        for direction, anchor in facets:
            normal = np.asarray(direction, dtype=np.float64)
            normal /= np.linalg.norm(normal)
            # The plane passes through the anchor point: offset = n . a.
            halfspaces.append(Halfspace(normal, float(normal @ np.asarray(anchor))))
        polyhedron = Polyhedron(halfspaces)

        kd_rows, _ = kd.query_polyhedron(polyhedron)
        scan_rows, _ = polyhedron_full_scan(plain, DIMS, polyhedron)
        assert _oids(kd_rows) == _oids(scan_rows)

    def test_sharded_matches_scan_on_random_polyhedra(
        self, differential_setup, sharded_executor
    ):
        db, kd, grid, plain = differential_setup
        rng = np.random.default_rng(19)
        for _ in range(15):
            normals = rng.normal(size=(int(rng.integers(2, 6)), 3))
            normals /= np.linalg.norm(normals, axis=1, keepdims=True)
            anchors = rng.uniform([-1, -1, -1], [4, 3, 2], size=(len(normals), 3))
            polyhedron = Polyhedron(
                [
                    Halfspace(n, float(n @ a))
                    for n, a in zip(normals, anchors)
                ]
            )
            sharded = sharded_executor.execute(polyhedron)
            scan_rows, _ = polyhedron_full_scan(plain, DIMS, polyhedron)
            assert _oids(sharded.rows) == _oids(scan_rows)
            assert not sharded.partial

    def test_partition_and_tight_boxes_agree(self, differential_setup):
        # The two box families prune differently but must answer identically.
        db, kd, grid, plain = differential_setup
        rng = np.random.default_rng(5)
        for _ in range(10):
            center = rng.uniform([-1, -1, -1], [4, 3, 2])
            widths = rng.uniform(0.2, 4.0, size=3)
            polyhedron = Polyhedron.from_box(
                Box(center - widths / 2, center + widths / 2)
            )
            tight_rows, _ = kd.query_polyhedron(polyhedron, use_tight_boxes=True)
            part_rows, _ = kd.query_polyhedron(polyhedron, use_tight_boxes=False)
            assert rows_equal(tight_rows, part_rows)


_point = st.tuples(
    st.floats(min_value=-2.0, max_value=5.0, allow_nan=False),
    st.floats(min_value=-2.0, max_value=4.0, allow_nan=False),
    st.floats(min_value=-2.0, max_value=3.0, allow_nan=False),
)


class TestShardedKnnDifferential:
    @_SETTINGS
    @given(point=_point, k=st.integers(min_value=1, max_value=40))
    def test_sharded_knn_matches_brute_force(
        self, differential_data, sharded_executor, point, k
    ):
        # Frontier-merged k-NN across shard borders must equal the global
        # brute-force top-k -- the §3.3 soundness argument, one level up.
        data = differential_data
        pts = np.column_stack([data[d] for d in DIMS])
        query = np.asarray(point, dtype=np.float64)
        result = sharded_executor.knn(query, k)
        dist = np.sqrt(((pts - query) ** 2).sum(axis=1))
        order = np.argsort(dist, kind="stable")[:k]
        got = frozenset(
            int(v)
            for v in sharded_executor.shard_set.gather(result.row_ids)["oid"]
        )
        assert got == frozenset(int(v) for v in data["oid"][order])
        assert np.allclose(result.distances, dist[order])


# -- ingest interleavings --------------------------------------------------
#
# Random insert/delete/merge sequences; after every sequence the
# merge-on-read view (main pages + delta tier) must be indistinguishable
# from a table rebuilt from scratch over the surviving rows, on every
# read path.  The linearized python-side dict of live points is the
# oracle both sides are compared against.

_INGEST_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_op_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 2**16), st.integers(1, 40)),
        st.tuples(st.just("delete"), st.integers(0, 2**16), st.integers(1, 25)),
        st.tuples(st.just("merge"), st.just(0), st.just(0)),
    ),
    min_size=1,
    max_size=7,
)


def _seed_points(n: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0.0, 10.0, size=(n, 3))


def _apply_ops(db, name: str, ops, expected: dict[int, np.ndarray], next_oid: int):
    """Run an op sequence through the write path, mirroring it in python."""
    for kind, seed, count in ops:
        table = db.table(name)  # re-resolve: merges swap the table object
        rng = np.random.default_rng(seed)
        if kind == "insert":
            pts = rng.uniform(0.0, 10.0, size=(count, 3))
            batch = {d: pts[:, i] for i, d in enumerate(DIMS)}
            batch["oid"] = np.arange(next_oid, next_oid + count, dtype=np.int64)
            table.insert_rows(batch)
            for j in range(count):
                expected[next_oid + j] = pts[j]
            next_oid += count
        elif kind == "delete":
            from repro.db import full_scan

            live, _ = full_scan(table, columns=["oid"])
            count = min(count, len(live["oid"]) - 1)  # never empty the table
            if count <= 0:
                continue
            victims = rng.choice(len(live["oid"]), size=count, replace=False)
            table.delete_rows(live["_row_id"][victims])
            for oid in live["oid"][victims]:
                del expected[int(oid)]
        else:
            db.ingest.merge(name)  # no-op when clean, by design
    return next_oid


def _rebuild(expected: dict[int, np.ndarray]):
    """A from-scratch database over exactly the surviving rows."""
    oids = np.fromiter(expected.keys(), dtype=np.int64, count=len(expected))
    pts = np.array([expected[int(o)] for o in oids])
    data = {d: pts[:, i] for i, d in enumerate(DIMS)}
    data["oid"] = oids
    db = Database.in_memory(buffer_pages=None)
    index = KdTreeIndex.build(db, "rebuilt", data, DIMS)
    return db, index


class TestIngestDifferential:
    @_INGEST_SETTINGS
    @given(ops=_op_strategy)
    def test_merge_on_read_equals_rebuild_on_solo_paths(self, ops):
        pts = _seed_points(300, seed=101)
        data = {d: pts[:, i] for i, d in enumerate(DIMS)}
        data["oid"] = np.arange(300, dtype=np.int64)
        db = Database.in_memory(buffer_pages=None)
        KdTreeIndex.build(db, "ing", data, DIMS)
        expected = {int(o): pts[o] for o in range(300)}
        _apply_ops(db, "ing", ops, expected, next_oid=300)

        _, rebuilt = _rebuild(expected)
        table = db.table("ing")
        index = db.index("ing.kdtree")
        boxes = [
            Box(np.full(3, 2.0), np.full(3, 8.0)),
            Box(np.array([0.0, 4.0, 1.0]), np.array([5.0, 9.0, 6.0])),
            Box(np.full(3, -1.0), np.full(3, 11.0)),  # everything
        ]
        for box in boxes:
            poly = Polyhedron.from_box(box)
            want = _oids(rebuilt.query_polyhedron(poly)[0])

            kd_rows, _ = index.query_polyhedron(poly)
            assert _oids(kd_rows) == want

            scan_rows, _ = polyhedron_full_scan(table, DIMS, poly)
            assert _oids(scan_rows) == want

        # The shared-scan path sees the same tombstones and delta rows.
        def _pred(poly):
            return lambda cols: poly.contains_points(
                np.column_stack([cols[d] for d in DIMS])
            )

        members = [BatchScanMember(predicate=_pred(Polyhedron.from_box(b))) for b in boxes]
        results, _ = batch_full_scan(table, members)
        for (rows, _, error), box in zip(results, boxes):
            assert error is None
            want = _oids(rebuilt.query_polyhedron(Polyhedron.from_box(box))[0])
            assert _oids(rows) == want

    @_INGEST_SETTINGS
    @given(ops=_op_strategy, point=_point, k=st.integers(min_value=1, max_value=20))
    def test_merge_on_read_equals_rebuild_on_knn(self, ops, point, k):
        pts = _seed_points(200, seed=103)
        data = {d: pts[:, i] for i, d in enumerate(DIMS)}
        data["oid"] = np.arange(200, dtype=np.int64)
        db = Database.in_memory(buffer_pages=None)
        KdTreeIndex.build(db, "ingk", data, DIMS)
        expected = {int(o): pts[o] for o in range(200)}
        _apply_ops(db, "ingk", ops, expected, next_oid=200)

        index = db.index("ingk.kdtree")
        probe = np.asarray(point, dtype=np.float64) + 5.0  # data is [0, 10]^3
        exact = knn_boundary_points(index, probe, k)
        live = np.array(list(expected.values()))
        dist = np.sort(np.sqrt(((live - probe) ** 2).sum(axis=1)))[:k]
        assert np.allclose(np.sort(exact.distances), dist)
        brute = knn_brute_force(db.table("ingk"), DIMS, probe, k)
        assert np.allclose(np.sort(brute.distances), dist)


class TestShardedIngestDifferential:
    """Fixed-seed interleavings over both scatter-gather transports."""

    NUM_ROWS = 1500

    def _base_data(self, seed: int = 71):
        pts = _seed_points(self.NUM_ROWS, seed=seed)
        data = {d: pts[:, i] for i, d in enumerate(DIMS)}
        data["oid"] = np.arange(self.NUM_ROWS, dtype=np.int64)
        return data, {int(o): pts[o] for o in range(self.NUM_ROWS)}

    def _run_interleaving(self, executor, expected, rng, rounds=4):
        """Shared driver: churn, query, merge, re-cut, on either transport."""
        whole = Polyhedron.from_box(Box(np.full(3, -1.0), np.full(3, 11.0)))
        next_oid = self.NUM_ROWS
        for round_no in range(rounds):
            pts = rng.uniform(0.0, 10.0, size=(60, 3))
            batch = {d: pts[:, i] for i, d in enumerate(DIMS)}
            batch["oid"] = np.arange(next_oid, next_oid + 60, dtype=np.int64)
            executor.insert_rows(batch)
            for j in range(60):
                expected[next_oid + j] = pts[j]
            next_oid += 60

            # Deletes address rows by their *current* global ids.
            live = executor.execute(whole).rows
            oid_to_rid = {
                int(o): int(r) for o, r in zip(live["oid"], live["_row_id"])
            }
            assert set(oid_to_rid) == set(expected)
            victims = rng.choice(
                np.fromiter(expected.keys(), dtype=np.int64), 40, replace=False
            )
            executor.delete_rows(
                np.array([oid_to_rid[int(o)] for o in victims])
            )
            for oid in victims:
                del expected[int(oid)]

            live_pts = np.array(list(expected.values()))
            live_oids = np.fromiter(expected.keys(), dtype=np.int64)
            for _ in range(3):
                center = rng.uniform(1.0, 9.0, size=3)
                width = rng.uniform(1.0, 8.0)
                box = Box(center - width / 2, center + width / 2)
                result = executor.execute(Polyhedron.from_box(box))
                want = frozenset(
                    int(o) for o in live_oids[box.contains_points(live_pts)]
                )
                assert _oids(result.rows) == want
                assert not result.partial

            if round_no == 1:
                executor.merge(threshold=0.0)
            elif round_no == 2:
                executor.maybe_repartition(threshold=0.01)
        return next_oid

    def test_thread_transport_interleaving_matches_oracle(self):
        data, expected = self._base_data()
        shard_set = KdPartitioner(4, buffer_pages=None).partition(
            "ing_threads", dict(data), DIMS
        )
        executor = ScatterGatherExecutor(shard_set)
        rng = np.random.default_rng(72)
        try:
            self._run_interleaving(executor, expected, rng)
            # The frontier-merged k-NN sees the same merged view.
            live = np.array(list(expected.values()))
            for _ in range(5):
                probe = rng.uniform(0.0, 10.0, size=3)
                result = executor.knn(probe, 10)
                dist = np.sort(np.sqrt(((live - probe) ** 2).sum(axis=1)))[:10]
                assert np.allclose(np.sort(result.distances), dist)
        finally:
            executor.close()

    def test_process_transport_interleaving_matches_oracle(self):
        data, expected = self._base_data(seed=73)
        specs = KdPartitioner(4).plan("ing_procs", dict(data), DIMS)
        rng = np.random.default_rng(74)
        with ShardWorkerPool(specs, sample_pages=8) as pool:
            self._run_interleaving(pool, expected, rng)
            # Writes and re-cuts leave the pool fully healthy.
            counters = pool.counters()
            assert counters["rows_inserted"] == 4 * 60
            assert counters["rows_deleted"] == 4 * 40
            assert counters["merges"] > 0

    def test_transports_agree_with_each_other(self):
        # Same interleaving on both engines: identical layout-independent
        # answers, including after each has merged and re-cut privately.
        data, expected_a = self._base_data(seed=75)
        expected_b = dict(expected_a)
        shard_set = KdPartitioner(4, buffer_pages=None).partition(
            "agree_threads", dict(data), DIMS
        )
        executor = ScatterGatherExecutor(shard_set)
        specs = KdPartitioner(4).plan("agree_procs", dict(data), DIMS)
        try:
            with ShardWorkerPool(specs, sample_pages=8) as pool:
                self._run_interleaving(
                    executor, expected_a, np.random.default_rng(76)
                )
                self._run_interleaving(
                    pool, expected_b, np.random.default_rng(76)
                )
                assert expected_a.keys() == expected_b.keys()
                box = Box(np.full(3, 1.5), np.full(3, 8.5))
                poly = Polyhedron.from_box(box)
                assert _oids(executor.execute(poly).rows) == _oids(
                    pool.execute(poly).rows
                )
        finally:
            executor.close()


class TestShardedFaultSweep:
    def test_random_queries_stay_correct_while_one_shard_flaps(self):
        # A shard with a flaky (but retryable) backend must never change
        # any answer -- retries absorb the faults below the merge.
        from repro import FaultInjector, FaultyStorage
        from repro.db.storage import MemoryStorage

        rng = np.random.default_rng(37)
        n = 2000
        pts = rng.normal(1.5, 1.2, size=(n, 3))
        data = {d: pts[:, i] for i, d in enumerate(DIMS)}
        data["oid"] = np.arange(n, dtype=np.int64)
        injector = FaultInjector(seed=3)
        shard_set = KdPartitioner(
            4,
            database_factory=lambda j: (
                Database(FaultyStorage(MemoryStorage(), injector), buffer_pages=None)
                if j == 2
                else Database.in_memory(buffer_pages=None)
            ),
        ).partition("flaky", data, DIMS)
        executor = ScatterGatherExecutor(shard_set)
        ref_db = Database.in_memory(buffer_pages=None)
        plain = ref_db.create_table("flaky_plain", dict(data))

        shard_set[2].database.cold_cache()
        injector.configure(read_fault_rate=0.3)
        try:
            for _ in range(15):
                center = rng.uniform(-0.5, 3.5, size=3)
                width = rng.uniform(0.3, 4.0)
                polyhedron = Polyhedron.from_box(Box(center - width, center + width))
                sharded = executor.execute(polyhedron)
                scan_rows, _ = polyhedron_full_scan(plain, DIMS, polyhedron)
                assert _oids(sharded.rows) == _oids(scan_rows)
                assert not sharded.partial
            assert injector.reads_failed > 0  # the sweep actually hurt
        finally:
            injector.quiesce()
            executor.close()
