"""Differential correctness: four executors, one answer.

Property-based (hypothesis) random boxes and polyhedra asserting that
the kd-tree index, the layered grid, the sharded scatter-gather engine,
and the index-free full scan return *identical row sets* over the same
data.  Each engine clusters rows differently, so identity is compared on
a stable ``oid`` column carried through every table.

This is the clean-room half of the robustness story; the fault sweeps
(test_faults.py) re-assert the same identities with storage failing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Box,
    Database,
    KdPartitioner,
    KdTreeIndex,
    Polyhedron,
    ScatterGatherExecutor,
)
from repro.core.layered_grid import LayeredGridIndex
from repro.core.queries import polyhedron_full_scan
from repro.geometry.halfspace import Halfspace
from repro.service import rows_equal

pytestmark = pytest.mark.faultsweep

DIMS = ["x", "y", "z"]
NUM_ROWS = 3000

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def differential_data():
    """The shared bimodal dataset every engine in this module indexes."""
    rng = np.random.default_rng(13)
    points = np.vstack(
        [
            rng.normal([0.0, 0.0, 0.0], [0.5, 0.3, 0.7], size=(NUM_ROWS // 2, 3)),
            rng.normal([3.0, 2.0, 1.0], [0.9, 0.6, 0.4], size=(NUM_ROWS // 2, 3)),
        ]
    )
    data = {d: points[:, i] for i, d in enumerate(DIMS)}
    data["oid"] = np.arange(NUM_ROWS, dtype=np.int64)
    return data


@pytest.fixture(scope="module")
def differential_setup(differential_data):
    """One dataset, three access paths: kd table, grid table, plain table."""
    data = differential_data
    db = Database.in_memory(buffer_pages=None)
    kd = KdTreeIndex.build(db, "diff_kd", dict(data), DIMS)
    grid = LayeredGridIndex.build(db, "diff_grid", dict(data), DIMS, base=128)
    plain = db.create_table("diff_plain", dict(data))
    return db, kd, grid, plain


@pytest.fixture(scope="module")
def sharded_executor(differential_data):
    """A 4-way scatter-gather engine over the same dataset."""
    shard_set = KdPartitioner(4, buffer_pages=None).partition(
        "diff_sharded", dict(differential_data), DIMS
    )
    executor = ScatterGatherExecutor(shard_set)
    yield executor
    executor.close()


def _oids(rows: dict) -> frozenset[int]:
    return frozenset(int(v) for v in rows["oid"])


def _box_from_draws(centers, widths) -> Box:
    lo = np.asarray(centers) - np.asarray(widths) / 2.0
    hi = np.asarray(centers) + np.asarray(widths) / 2.0
    return Box(lo, hi)


# The data lives roughly in [-2, 6]^3; boxes are drawn to cover empty,
# partial, and near-total selectivities.
_center = st.floats(min_value=-2.0, max_value=5.0, allow_nan=False)
_width = st.floats(min_value=0.05, max_value=6.0, allow_nan=False)
_box_strategy = st.tuples(
    st.tuples(_center, _center, _center), st.tuples(_width, _width, _width)
)


class TestBoxDifferential:
    @_SETTINGS
    @given(draw=_box_strategy)
    def test_sharded_matches_scan_on_random_boxes(
        self, differential_setup, sharded_executor, draw
    ):
        # The scatter-gather engine re-clusters rows across four private
        # databases; the answer must still be the full scan's, oid for oid.
        db, kd, grid, plain = differential_setup
        polyhedron = Polyhedron.from_box(_box_from_draws(*draw))
        sharded = sharded_executor.execute(polyhedron)
        scan_rows, _ = polyhedron_full_scan(plain, DIMS, polyhedron)
        assert _oids(sharded.rows) == _oids(scan_rows)
        assert not sharded.partial
        assert sharded.shards_dispatched + sharded.shards_pruned == 4

    @_SETTINGS
    @given(draw=_box_strategy)
    def test_kdtree_grid_and_scan_agree_on_random_boxes(self, differential_setup, draw):
        db, kd, grid, plain = differential_setup
        box = _box_from_draws(*draw)
        polyhedron = Polyhedron.from_box(box)

        kd_rows, _ = kd.query_polyhedron(polyhedron)
        scan_rows, _ = polyhedron_full_scan(plain, DIMS, polyhedron)
        grid_result = grid.query_box(box)
        grid_oids = frozenset(
            int(v) for v in grid.table.gather(grid_result.row_ids)["oid"]
        )

        assert _oids(kd_rows) == _oids(scan_rows)
        assert grid_oids == _oids(scan_rows)

    @_SETTINGS
    @given(draw=_box_strategy)
    def test_kdtree_matches_scan_row_for_row_on_its_own_table(
        self, differential_setup, draw
    ):
        # Same table on both sides: compare full row contents, not just ids.
        db, kd, grid, plain = differential_setup
        polyhedron = Polyhedron.from_box(_box_from_draws(*draw))
        kd_rows, _ = kd.query_polyhedron(polyhedron)
        scan_rows, _ = polyhedron_full_scan(kd.table, DIMS, polyhedron)
        assert rows_equal(kd_rows, scan_rows)


# Random convex polyhedra: a few halfspaces with arbitrary orientations,
# offsets placed so the cutting planes pass through the data cloud.
_direction = st.tuples(
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
).filter(lambda v: abs(v[0]) + abs(v[1]) + abs(v[2]) > 1e-3)
_anchor = st.tuples(
    st.floats(min_value=-1.0, max_value=4.0, allow_nan=False),
    st.floats(min_value=-1.0, max_value=3.0, allow_nan=False),
    st.floats(min_value=-1.0, max_value=2.0, allow_nan=False),
)
_polyhedron_strategy = st.lists(
    st.tuples(_direction, _anchor), min_size=2, max_size=6
)


class TestPolyhedronDifferential:
    @_SETTINGS
    @given(facets=_polyhedron_strategy)
    def test_kdtree_matches_scan_on_random_polyhedra(self, differential_setup, facets):
        db, kd, grid, plain = differential_setup
        halfspaces = []
        for direction, anchor in facets:
            normal = np.asarray(direction, dtype=np.float64)
            normal /= np.linalg.norm(normal)
            # The plane passes through the anchor point: offset = n . a.
            halfspaces.append(Halfspace(normal, float(normal @ np.asarray(anchor))))
        polyhedron = Polyhedron(halfspaces)

        kd_rows, _ = kd.query_polyhedron(polyhedron)
        scan_rows, _ = polyhedron_full_scan(plain, DIMS, polyhedron)
        assert _oids(kd_rows) == _oids(scan_rows)

    def test_sharded_matches_scan_on_random_polyhedra(
        self, differential_setup, sharded_executor
    ):
        db, kd, grid, plain = differential_setup
        rng = np.random.default_rng(19)
        for _ in range(15):
            normals = rng.normal(size=(int(rng.integers(2, 6)), 3))
            normals /= np.linalg.norm(normals, axis=1, keepdims=True)
            anchors = rng.uniform([-1, -1, -1], [4, 3, 2], size=(len(normals), 3))
            polyhedron = Polyhedron(
                [
                    Halfspace(n, float(n @ a))
                    for n, a in zip(normals, anchors)
                ]
            )
            sharded = sharded_executor.execute(polyhedron)
            scan_rows, _ = polyhedron_full_scan(plain, DIMS, polyhedron)
            assert _oids(sharded.rows) == _oids(scan_rows)
            assert not sharded.partial

    def test_partition_and_tight_boxes_agree(self, differential_setup):
        # The two box families prune differently but must answer identically.
        db, kd, grid, plain = differential_setup
        rng = np.random.default_rng(5)
        for _ in range(10):
            center = rng.uniform([-1, -1, -1], [4, 3, 2])
            widths = rng.uniform(0.2, 4.0, size=3)
            polyhedron = Polyhedron.from_box(
                Box(center - widths / 2, center + widths / 2)
            )
            tight_rows, _ = kd.query_polyhedron(polyhedron, use_tight_boxes=True)
            part_rows, _ = kd.query_polyhedron(polyhedron, use_tight_boxes=False)
            assert rows_equal(tight_rows, part_rows)


_point = st.tuples(
    st.floats(min_value=-2.0, max_value=5.0, allow_nan=False),
    st.floats(min_value=-2.0, max_value=4.0, allow_nan=False),
    st.floats(min_value=-2.0, max_value=3.0, allow_nan=False),
)


class TestShardedKnnDifferential:
    @_SETTINGS
    @given(point=_point, k=st.integers(min_value=1, max_value=40))
    def test_sharded_knn_matches_brute_force(
        self, differential_data, sharded_executor, point, k
    ):
        # Frontier-merged k-NN across shard borders must equal the global
        # brute-force top-k -- the §3.3 soundness argument, one level up.
        data = differential_data
        pts = np.column_stack([data[d] for d in DIMS])
        query = np.asarray(point, dtype=np.float64)
        result = sharded_executor.knn(query, k)
        dist = np.sqrt(((pts - query) ** 2).sum(axis=1))
        order = np.argsort(dist, kind="stable")[:k]
        got = frozenset(
            int(v)
            for v in sharded_executor.shard_set.gather(result.row_ids)["oid"]
        )
        assert got == frozenset(int(v) for v in data["oid"][order])
        assert np.allclose(result.distances, dist[order])


class TestShardedFaultSweep:
    def test_random_queries_stay_correct_while_one_shard_flaps(self):
        # A shard with a flaky (but retryable) backend must never change
        # any answer -- retries absorb the faults below the merge.
        from repro import FaultInjector, FaultyStorage
        from repro.db.storage import MemoryStorage

        rng = np.random.default_rng(37)
        n = 2000
        pts = rng.normal(1.5, 1.2, size=(n, 3))
        data = {d: pts[:, i] for i, d in enumerate(DIMS)}
        data["oid"] = np.arange(n, dtype=np.int64)
        injector = FaultInjector(seed=3)
        shard_set = KdPartitioner(
            4,
            database_factory=lambda j: (
                Database(FaultyStorage(MemoryStorage(), injector), buffer_pages=None)
                if j == 2
                else Database.in_memory(buffer_pages=None)
            ),
        ).partition("flaky", data, DIMS)
        executor = ScatterGatherExecutor(shard_set)
        ref_db = Database.in_memory(buffer_pages=None)
        plain = ref_db.create_table("flaky_plain", dict(data))

        shard_set[2].database.cold_cache()
        injector.configure(read_fault_rate=0.3)
        try:
            for _ in range(15):
                center = rng.uniform(-0.5, 3.5, size=3)
                width = rng.uniform(0.3, 4.0)
                polyhedron = Polyhedron.from_box(Box(center - width, center + width))
                sharded = executor.execute(polyhedron)
                scan_rows, _ = polyhedron_full_scan(plain, DIMS, polyhedron)
                assert _oids(sharded.rows) == _oids(scan_rows)
                assert not sharded.partial
            assert injector.reads_failed > 0  # the sweep actually hurt
        finally:
            injector.quiesce()
            executor.close()
