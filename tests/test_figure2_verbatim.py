"""Tests for function expressions and the verbatim Figure 2 query."""

import numpy as np
import pytest

from repro import Col, Database, full_scan, parse_where, sdss_color_sample
from repro.db.expressions import (
    Func,
    LinearExtractionError,
    expression_to_polyhedron,
    expression_to_sql,
    log10,
)
from repro.datasets.workload import FIGURE2_VERBATIM


class TestFuncExpressions:
    def test_log10_evaluates(self):
        expr = log10(Col("x"))
        out = expr.evaluate({"x": np.array([1.0, 10.0, 100.0])})
        assert np.allclose(out, [0.0, 1.0, 2.0])

    def test_all_functions(self):
        data = {"x": np.array([4.0])}
        assert np.isclose(Func("sqrt", Col("x")).evaluate(data)[0], 2.0)
        assert np.isclose(Func("abs", -Col("x")).evaluate(data)[0], 4.0)
        assert np.isclose(Func("exp", Col("x") * 0.0).evaluate(data)[0], 1.0)

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            Func("median", Col("x"))

    def test_case_insensitive_name(self):
        assert Func("LOG10", Col("x")).name == "log10"

    def test_composes_with_arithmetic(self):
        expr = 2.5 * log10(Col("flux")) + 1.0 < 6.0
        mask = expr.evaluate({"flux": np.array([10.0, 10_000.0])})
        assert mask.tolist() == [True, False]

    def test_referenced_columns(self):
        assert log10(Col("a") * Col("b")).referenced_columns() == {"a", "b"}

    def test_rejected_by_linear_extraction(self):
        expr = log10(Col("x")) < 1.0
        with pytest.raises(LinearExtractionError):
            expression_to_polyhedron(expr, ["x"])

    def test_sql_rendering_and_reparse(self):
        expr = 2.5 * log10(Col("r")) < 5.0
        text = expression_to_sql(expr)
        assert "LOG10(" in text
        reparsed = parse_where(text)
        data = {"r": np.array([10.0, 10**3])}
        assert np.array_equal(reparsed.evaluate(data), expr.evaluate(data))

    def test_parser_function_call(self):
        expr = parse_where("SQRT(x * x) < 2")
        assert expr.evaluate({"x": np.array([1.0, -3.0])}).tolist() == [True, False]

    def test_column_named_like_function_without_call(self):
        # 'log10' without parentheses is a column reference, not a call.
        expr = parse_where("log10 < 1")
        assert expr.evaluate({"log10": np.array([0.5, 2.0])}).tolist() == [True, False]


class TestVerbatimFigure2:
    @pytest.fixture(scope="class")
    def extended(self):
        sample = sdss_color_sample(30_000, seed=7)
        return sample, sample.extended_columns(seed=8)

    def test_parses(self, extended):
        expr = parse_where(FIGURE2_VERBATIM)
        assert {"petroMag_r", "extinction_r", "dered_g", "dered_r", "dered_i",
                "petroR50_r"} <= expr.referenced_columns()

    def test_selective_on_synthetic_catalog(self, extended):
        sample, cols = extended
        expr = parse_where(FIGURE2_VERBATIM)
        mask = expr.evaluate(cols)
        fraction = mask.mean()
        # The paper picked this as a typical *selective* complex query.
        assert 0.0 < fraction < 0.1

    def test_runs_through_engine_scan(self, extended):
        sample, cols = extended
        db = Database.in_memory(buffer_pages=None)
        table = db.create_table("fig2", cols)
        expr = parse_where(FIGURE2_VERBATIM)
        rows, stats = full_scan(table, predicate=expr)
        assert stats.rows_returned == int(expr.evaluate(cols).sum())

    def test_extended_columns_consistent(self, extended):
        sample, cols = extended
        # dered = observed - extinction * band ratio; r's ratio is 1.
        assert np.allclose(
            cols["dered_r"], cols["r"] - cols["extinction_r"]
        )
        assert np.allclose(cols["petroMag_r"], cols["r"])
        assert (cols["petroR50_r"] > 0).all()

    def test_galaxies_are_extended_sources(self, extended):
        sample, cols = extended
        galaxy_radius = cols["petroR50_r"][sample.labels == 1]
        star_radius = cols["petroR50_r"][sample.labels == 0]
        assert np.median(galaxy_radius) > 1.3 * np.median(star_radius)
