"""Unit tests of the hierarchical compressed bitmap layer.

The compressed bitmap is verified against plain numpy boolean masks
(the dense reference implementation) on randomized inputs; the bitmap
index's candidate sets are checked for the conservative-superset
property every executor depends on; persistence and merge rebuilds are
round-tripped.  Cross-engine row-identity tests live in
``test_planner_engines.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, KdTreeIndex
from repro.bitmap import BitmapIndex, CompressedBitmap
from repro.bitmap.executor import bitmap_query
from repro.bitmap.index import axis_bounds
from repro.core.queries import polyhedron_full_scan
from repro.db import FaultInjector, FaultyStorage, RetryPolicy, StorageFault
from repro.db.persistence import attach_database, save_catalog
from repro.db.storage import MemoryStorage
from repro.geometry.halfspace import Halfspace, Polyhedron
from repro.ingest.merge import merge_table

DIMS = ["u", "g", "r"]


def _random_masks(rng, num_bits: int, density: float) -> np.ndarray:
    return rng.random(num_bits) < density


def _box(lo, hi) -> Polyhedron:
    halfspaces = []
    for axis, (low, high) in enumerate(zip(lo, hi)):
        e = np.zeros(len(lo))
        e[axis] = 1.0
        halfspaces.append(Halfspace(e, float(high)))
        halfspaces.append(Halfspace(-e, -float(low)))
    return Polyhedron(halfspaces)


def _table_data(n: int, seed: int = 0) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    data = {c: rng.normal(size=n) for c in DIMS}
    data["oid"] = np.arange(n, dtype=np.float64)
    return data


class TestCompressedBitmap:
    def test_round_trip_matches_dense_reference(self):
        rng = np.random.default_rng(5)
        for num_bits in (1, 63, 64, 65, 1000, 4096):
            for density in (0.0, 0.01, 0.3, 1.0):
                mask = _random_masks(rng, num_bits, density)
                bitmap = CompressedBitmap.from_mask(mask)
                assert bitmap.count() == int(mask.sum())
                assert bitmap.any() == bool(mask.any())
                assert np.array_equal(bitmap.to_mask(), mask)
                assert np.array_equal(bitmap.to_indices(), np.flatnonzero(mask))

    def test_and_or_match_dense_reference(self):
        rng = np.random.default_rng(6)
        for _ in range(20):
            num_bits = int(rng.integers(1, 2000))
            a = _random_masks(rng, num_bits, rng.random() * 0.5)
            b = _random_masks(rng, num_bits, rng.random() * 0.5)
            ca, cb = CompressedBitmap.from_mask(a), CompressedBitmap.from_mask(b)
            assert np.array_equal((ca & cb).to_mask(), a & b)
            assert np.array_equal((ca | cb).to_mask(), a | b)
            assert ca.intersects(cb) == bool((a & b).any())

    def test_union_of_many(self):
        rng = np.random.default_rng(7)
        num_bits = 777
        masks = [_random_masks(rng, num_bits, 0.05) for _ in range(9)]
        union = CompressedBitmap.union(
            [CompressedBitmap.from_mask(m) for m in masks], num_bits
        )
        expected = np.logical_or.reduce(masks)
        assert np.array_equal(union.to_mask(), expected)

    def test_summary_hierarchy_shrinks_to_one_word(self):
        rng = np.random.default_rng(8)
        bitmap = CompressedBitmap.from_mask(_random_masks(rng, 1 << 14, 0.001))
        levels = bitmap.summaries
        assert levels, "a multi-word bitmap must carry summary levels"
        assert len(levels[-1]) == 1
        # Each summary word must flag exactly the nonzero children.
        dense_words = np.zeros(bitmap.total_words, dtype=np.uint64)
        dense_words[bitmap.word_index] = bitmap.words
        child = dense_words
        for level in levels:
            for parent_idx, parent_word in enumerate(level):
                for bit in range(64):
                    child_idx = parent_idx * 64 + bit
                    flagged = bool((int(parent_word) >> bit) & 1)
                    present = child_idx < len(child) and child[child_idx] != 0
                    assert flagged == present
            child = level

    def test_hierarchical_intersects_disjoint_sparse(self):
        # Two single-bit bitmaps a million bits apart: the coarsest
        # summary already proves disjointness.
        n = 1 << 20
        a = CompressedBitmap.from_indices(np.array([3]), n)
        b = CompressedBitmap.from_indices(np.array([n - 3]), n)
        assert not a.intersects(b)
        assert a.intersects(a)

    def test_serialization_round_trip(self):
        rng = np.random.default_rng(9)
        mask = _random_masks(rng, 513, 0.2)
        bitmap = CompressedBitmap.from_mask(mask)
        clone = CompressedBitmap.from_dict(bitmap.to_dict())
        assert np.array_equal(clone.to_mask(), mask)

    def test_incompatible_lengths_rejected(self):
        a = CompressedBitmap.empty(10)
        b = CompressedBitmap.empty(11)
        with pytest.raises(ValueError):
            _ = a & b


class TestBitmapIndex:
    def test_candidates_are_conservative_superset(self):
        data = _table_data(5000, seed=1)
        db = Database.in_memory(buffer_pages=None)
        KdTreeIndex.build(db, "t", data, DIMS)
        index = BitmapIndex.build(db, "t", DIMS)
        table = db.table("t")
        rng = np.random.default_rng(2)
        for _ in range(20):
            lo = rng.uniform(-2, 1, size=3)
            hi = lo + rng.uniform(0.05, 2.0, size=3)
            poly = _box(lo, hi)
            exact, _ = polyhedron_full_scan(table, DIMS, poly)
            candidates = set(index.candidate_rows(poly).tolist())
            assert set(exact["_row_id"].tolist()) <= candidates

    def test_membership_candidates_cover_matches(self):
        data = _table_data(3000, seed=3)
        db = Database.in_memory(buffer_pages=None)
        KdTreeIndex.build(db, "t", data, DIMS)
        index = BitmapIndex.build(db, "t", DIMS)
        table = db.table("t")
        values = np.sort(np.random.default_rng(4).choice(
            np.asarray(data["u"]), size=25, replace=False
        ))
        poly = _box([-10, -10, -10], [10, 10, 10])
        memberships = {"u": values}
        exact, _ = polyhedron_full_scan(table, DIMS, poly, memberships=memberships)
        candidates = set(
            index.candidate_rows(poly, memberships=memberships).tolist()
        )
        assert set(exact["_row_id"].tolist()) <= candidates
        # The IN list touches few bins, so pruning must actually bite.
        assert len(candidates) < table.num_rows

    def test_estimate_fraction_tracks_selectivity(self):
        data = _table_data(4000, seed=5)
        db = Database.in_memory(buffer_pages=None)
        KdTreeIndex.build(db, "t", data, DIMS)
        index = BitmapIndex.build(db, "t", DIMS)
        narrow = index.estimate_fraction(_box([0, 0, -9], [0.05, 0.05, 9]))
        wide = index.estimate_fraction(_box([-9, -9, -9], [9, 9, 9]))
        assert narrow is not None and wide is not None
        assert narrow < wide
        assert wide == pytest.approx(1.0, abs=1e-9)

    def test_axis_bounds_reads_axis_aligned_halfspaces_only(self):
        poly = Polyhedron(
            [
                Halfspace(np.array([1.0, 0.0, 0.0]), 2.0),
                Halfspace(np.array([-1.0, 0.0, 0.0]), 1.0),
                Halfspace(np.array([0.5, 0.5, 0.0]), 3.0),  # oblique: ignored
            ]
        )
        lows, highs = axis_bounds(poly, 3)
        assert highs[0] == pytest.approx(2.0)
        assert lows[0] == pytest.approx(-1.0)
        assert np.isinf(lows[1]) and np.isinf(highs[1])

    def test_build_requires_at_least_two_bins(self):
        data = _table_data(100, seed=6)
        db = Database.in_memory(buffer_pages=None)
        KdTreeIndex.build(db, "t", data, DIMS)
        with pytest.raises(ValueError):
            BitmapIndex.build(db, "t", DIMS, num_bins=1)


class TestBitmapPersistence:
    def test_catalog_round_trip(self, tmp_path):
        data = _table_data(2500, seed=7)
        db = Database.on_disk(tmp_path, buffer_pages=None)
        KdTreeIndex.build(db, "t", data, DIMS)
        built = BitmapIndex.build(db, "t", DIMS)
        save_catalog(db)
        reopened = attach_database(tmp_path, buffer_pages=None)
        index = reopened.index_if_exists("t.bitmap")
        assert index is not None
        assert index.dims == built.dims
        assert index.num_bins == built.num_bins
        for dim in DIMS:
            assert np.array_equal(index.bin_edges(dim), built.bin_edges(dim))
        poly = _box([-0.4, -0.4, -9], [0.4, 0.4, 9])
        rows, _ = bitmap_query(index, poly)
        exact, _ = polyhedron_full_scan(reopened.table("t"), DIMS, poly)
        assert sorted(rows["oid"].tolist()) == sorted(exact["oid"].tolist())

    def test_old_catalogs_without_bitmaps_attach(self, tmp_path):
        data = _table_data(500, seed=8)
        db = Database.on_disk(tmp_path, buffer_pages=None)
        KdTreeIndex.build(db, "t", data, DIMS)
        save_catalog(db)
        reopened = attach_database(tmp_path, buffer_pages=None)
        assert reopened.index_if_exists("t.bitmap") is None


class TestBitmapUnderMerge:
    def test_merge_rebuilds_bitmap_over_new_generation(self):
        data = _table_data(3000, seed=9)
        db = Database.in_memory(buffer_pages=None)
        KdTreeIndex.build(db, "t", data, DIMS)
        BitmapIndex.build(db, "t", DIMS)
        db.ingest.insert(
            "t",
            {
                "u": np.array([0.01]),
                "g": np.array([0.02]),
                "r": np.array([0.03]),
                "oid": np.array([99999.0]),
                "kd_leaf": np.array([0.0]),
            },
        )
        report = merge_table(db, "t")
        assert report.merged
        index = db.index_if_exists("t.bitmap")
        assert index is not None
        assert index.table is db.table("t")
        poly = _box([-0.2, -0.2, -9], [0.2, 0.2, 9])
        rows, _ = bitmap_query(index, poly)
        exact, _ = polyhedron_full_scan(db.table("t"), DIMS, poly)
        assert sorted(rows["oid"].tolist()) == sorted(exact["oid"].tolist())
        assert 99999.0 in rows["oid"]

    def test_failed_rebuild_drops_stale_entry(self):
        injector = FaultInjector(seed=10)
        db = Database(
            FaultyStorage(MemoryStorage(), injector),
            buffer_pages=None,
            retry=RetryPolicy(attempts=2, backoff_s=0.0),
        )
        data = _table_data(2000, seed=10)
        KdTreeIndex.build(db, "t", data, DIMS)
        BitmapIndex.build(db, "t", DIMS)
        db.ingest.insert(
            "t",
            {
                "u": np.array([0.0]),
                "g": np.array([0.0]),
                "r": np.array([0.0]),
                "oid": np.array([55555.0]),
                "kd_leaf": np.array([0.0]),
            },
        )
        # Fault storms during the merge can kill the bitmap rebuild (it
        # re-reads every page); whenever they do, the catalog must not
        # keep the old generation's entry around.
        injector.configure(read_fault_rate=0.6)
        try:
            merge_table(db, "t")
        except (StorageFault, ValueError):
            pytest.skip("merge itself died before reaching the bitmap rebuild")
        finally:
            injector.quiesce()
        index = db.index_if_exists("t.bitmap")
        if index is not None:
            # Rebuild survived the storm: it must serve the new layout.
            assert index.table is db.table("t")
        else:
            # Entry dropped: queries degrade but never see stale state.
            assert db.index_if_exists("t.kdtree") is not None
