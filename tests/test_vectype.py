"""Tests for the vector data type codecs (§3.5)."""

import time

import numpy as np
import pytest

from repro.db import Database
from repro.vectype import NativeBinaryCodec, UdtPickleCodec, VectorColumn


@pytest.fixture(params=["native", "udt"])
def codec(request):
    if request.param == "native":
        return NativeBinaryCodec(5)
    return UdtPickleCodec(5)


class TestCodecs:
    def test_roundtrip(self, codec):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(500, 5))
        raw = codec.encode_rows(vectors)
        assert raw.dtype == np.dtype(f"S{codec.row_bytes}")
        back = codec.decode_rows(raw)
        assert np.allclose(back, vectors)

    def test_roundtrip_special_values(self, codec):
        vectors = np.array(
            [
                [0.0, -0.0, 1e-300, 1e300, np.pi],
                [np.inf, -np.inf, 1.0, -1.0, 0.5],
            ]
        )
        back = codec.decode_rows(codec.encode_rows(vectors))
        assert np.array_equal(back, vectors)

    def test_nan_roundtrip(self, codec):
        vectors = np.full((3, 5), np.nan)
        back = codec.decode_rows(codec.encode_rows(vectors))
        assert np.isnan(back).all()

    def test_dimension_validation(self, codec):
        with pytest.raises(ValueError):
            codec.encode_rows(np.zeros((10, 4)))

    def test_dim_guard(self):
        with pytest.raises(ValueError):
            NativeBinaryCodec(0)

    def test_fixed_width(self, codec):
        raw = codec.encode_rows(np.random.default_rng(1).normal(size=(10, 5)))
        assert raw.itemsize == codec.row_bytes


class TestWidths:
    def test_native_is_compact(self):
        assert NativeBinaryCodec(5).row_bytes == 40

    def test_udt_has_pickle_overhead(self):
        assert UdtPickleCodec(5).row_bytes > NativeBinaryCodec(5).row_bytes


class TestVectorColumn:
    def test_paged_roundtrip(self):
        rng = np.random.default_rng(2)
        vectors = rng.normal(size=(1000, 5))
        db = Database.in_memory(buffer_pages=None)
        for name, codec in (("nb", NativeBinaryCodec(5)), ("udt", UdtPickleCodec(5))):
            table = db.create_table(
                f"vec_{name}", {"v": codec.encode_rows(vectors)}, rows_per_page=128
            )
            column = VectorColumn(table, "v", codec)
            assert np.allclose(column.read_all(), vectors)

    def test_scan_yields_page_batches(self):
        rng = np.random.default_rng(3)
        vectors = rng.normal(size=(300, 5))
        db = Database.in_memory(buffer_pages=None)
        codec = NativeBinaryCodec(5)
        table = db.create_table("v", {"v": codec.encode_rows(vectors)}, rows_per_page=100)
        batches = list(VectorColumn(table, "v", codec).scan())
        assert [start for start, _ in batches] == [0, 100, 200]
        assert all(len(batch) == 100 for _, batch in batches)

    def test_empty_table_read_all(self):
        db = Database.in_memory()
        codec = NativeBinaryCodec(3)
        table = db.create_table(
            "v", {"v": codec.encode_rows(np.zeros((1, 3)))}, rows_per_page=10
        )
        column = VectorColumn(table, "v", codec)
        assert column.read_all().shape == (1, 3)


class TestRelativeCost:
    def test_native_decodes_faster_than_udt(self):
        # The §3.5 claim's direction: unsafe binary copy beats the
        # BinaryFormatter UDT.  (Magnitudes are measured in E10.)
        rng = np.random.default_rng(4)
        vectors = rng.normal(size=(4000, 5))
        native, udt = NativeBinaryCodec(5), UdtPickleCodec(5)
        raw_native = native.encode_rows(vectors)
        raw_udt = udt.encode_rows(vectors)

        def time_decode(codec, raw):
            start = time.perf_counter()
            for _ in range(3):
                codec.decode_rows(raw)
            return time.perf_counter() - start

        assert time_decode(native, raw_native) < time_decode(udt, raw_udt)
