"""Tests for space-filling curves."""

import numpy as np
import pytest

from repro.geometry.sfc import (
    hilbert_decode,
    hilbert_index,
    hilbert_indices,
    morton_index,
    morton_indices,
    morton_sort_key,
    quantize_points,
)


class TestQuantize:
    def test_range(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(200, 3))
        q = quantize_points(pts, bits=5)
        assert q.min() >= 0
        assert q.max() <= 31

    def test_degenerate_axis(self):
        pts = np.array([[0.0, 1.0], [0.0, 2.0], [0.0, 3.0]])
        q = quantize_points(pts, bits=4)
        assert (q[:, 0] == 0).all()

    def test_explicit_bounds_clamp(self):
        pts = np.array([[-5.0], [0.5], [5.0]])
        q = quantize_points(pts, bits=3, lo=np.array([0.0]), hi=np.array([1.0]))
        assert q[0, 0] == 0
        assert q[2, 0] == 7

    def test_bits_guard(self):
        with pytest.raises(ValueError):
            quantize_points(np.zeros((2, 2)), bits=0)
        with pytest.raises(ValueError):
            quantize_points(np.zeros((2, 2)), bits=22)

    def test_monotone_along_axis(self):
        pts = np.linspace(0, 1, 17)[:, None]
        q = quantize_points(pts, bits=4)
        assert (np.diff(q[:, 0]) >= 0).all()


class TestMorton:
    def test_known_2d_values(self):
        # Interleaving of (x=1, y=0) with 1 bit each (x major): 0b10 = 2.
        assert morton_index(np.array([1, 0]), bits=1) == 2
        assert morton_index(np.array([0, 1]), bits=1) == 1
        assert morton_index(np.array([1, 1]), bits=1) == 3

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(1)
        coords = rng.integers(0, 16, size=(50, 3))
        batch = morton_indices(coords, bits=4)
        for row, code in zip(coords, batch):
            assert morton_index(row, bits=4) == code

    def test_bijective_on_lattice(self):
        coords = np.indices((8, 8)).reshape(2, -1).T
        codes = morton_indices(coords, bits=3)
        assert len(set(codes.tolist())) == 64
        assert codes.min() == 0
        assert codes.max() == 63

    def test_overflow_guard(self):
        with pytest.raises(ValueError):
            morton_indices(np.zeros((1, 7), dtype=np.int64), bits=10)

    def test_sort_key_locality(self):
        # Points sorted by Morton key: average consecutive distance must
        # beat random order (the reason cells are numbered on a curve).
        rng = np.random.default_rng(2)
        pts = rng.uniform(size=(500, 2))
        keys = morton_sort_key(pts, bits=10)
        ordered = pts[np.argsort(keys)]
        step_sfc = np.linalg.norm(np.diff(ordered, axis=0), axis=1).mean()
        step_random = np.linalg.norm(np.diff(pts, axis=0), axis=1).mean()
        assert step_sfc < step_random * 0.5


class TestHilbert:
    @pytest.mark.parametrize("dim,bits", [(2, 3), (3, 2), (2, 5)])
    def test_roundtrip(self, dim, bits):
        for code in range(2 ** (dim * bits)):
            pt = hilbert_decode(code, dim, bits)
            assert hilbert_index(pt, bits) == code

    def test_bijective(self):
        coords = np.indices((8, 8)).reshape(2, -1).T
        codes = hilbert_indices(coords, bits=3)
        assert len(set(codes.tolist())) == 64

    def test_unit_steps(self):
        # Consecutive Hilbert codes are lattice neighbors (distance 1) --
        # the locality property Morton lacks.
        for code in range(63):
            a = hilbert_decode(code, 2, 3)
            b = hilbert_decode(code + 1, 2, 3)
            assert np.abs(a - b).sum() == 1

    def test_locality_beats_morton(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(size=(800, 2))
        q = quantize_points(pts, bits=6)
        hilbert_order = np.argsort(hilbert_indices(q, bits=6), kind="stable")
        morton_order = np.argsort(morton_indices(q, bits=6), kind="stable")
        step_h = np.linalg.norm(np.diff(pts[hilbert_order], axis=0), axis=1).mean()
        step_m = np.linalg.norm(np.diff(pts[morton_order], axis=0), axis=1).mean()
        assert step_h <= step_m

    def test_overflow_guard(self):
        with pytest.raises(ValueError):
            hilbert_index(np.zeros(7, dtype=np.int64), bits=10)
