"""Tests for the extension features (the paper's future-work items)."""

import numpy as np
import pytest
from scipy.stats import spearmanr

from repro import (
    Box,
    Database,
    DelaunayEdgeStore,
    DelaunayGraph,
    KdTreeIndex,
    LayeredGridIndex,
    Polyhedron,
    VoronoiIndex,
    knn_brute_force,
    sky_survey_sample,
    voronoi_volume_estimates,
)
from repro.core.index_base import stack_coordinates
from repro.geometry.boxes import BoxRelation


class TestCoordinateValidation:
    def test_nan_rejected_with_count(self):
        data = {"x": np.array([1.0, np.nan, 3.0]), "y": np.ones(3)}
        with pytest.raises(ValueError, match="1 rows"):
            stack_coordinates(data, ["x", "y"])

    def test_inf_rejected(self):
        data = {"x": np.array([1.0, np.inf])}
        with pytest.raises(ValueError):
            stack_coordinates(data, ["x"])

    def test_missing_dim_rejected(self):
        with pytest.raises(KeyError):
            stack_coordinates({"x": np.ones(3)}, ["x", "ghost"])

    def test_clean_data_passes(self):
        pts = stack_coordinates({"x": np.ones(3), "y": np.zeros(3)}, ["y", "x"])
        assert pts.shape == (3, 2)
        assert np.allclose(pts[:, 0], 0.0)

    def test_all_builders_validate(self):
        db = Database.in_memory()
        data = {"x": np.array([np.nan] * 64), "y": np.ones(64)}
        for builder, name in (
            (KdTreeIndex.build, "k"),
            (LayeredGridIndex.build, "g"),
            (VoronoiIndex.build, "v"),
        ):
            with pytest.raises(ValueError):
                builder(db, name, data, ["x", "y"])


class TestGridExactQuery:
    def test_query_box_matches_scan(self, grid_index, clustered_points_3d):
        box = Box.cube(np.array([0.0, 0.0, 0.0]), 0.7)
        result = grid_index.query_box(box)
        expected = int(box.contains_points(clustered_points_3d).sum())
        assert len(result.row_ids) == expected
        assert box.contains_points(result.points).all()

    def test_query_box_empty(self, grid_index):
        result = grid_index.query_box(Box.cube(np.full(3, 50.0), 0.5))
        assert len(result.row_ids) == 0

    def test_selective_query_saves_pages(self, grid_index, clustered_points_3d):
        box = Box.cube(np.array([0.0, 0.0, 0.0]), 0.25)
        result = grid_index.query_box(box)
        assert result.stats.pages_touched < grid_index.table.num_pages

    def test_whole_space_returns_everything(self, grid_index, clustered_points_3d):
        box = Box.from_points(clustered_points_3d, pad=0.1)
        result = grid_index.query_box(box)
        assert len(result.row_ids) == len(clustered_points_3d)


class TestKdStreaming:
    def test_stream_union_matches_bulk(self, kd_index):
        poly = Polyhedron.simplex_around(np.array([0.5, 0.2, 0.4]), 1.0)
        bulk, _ = kd_index.query_polyhedron(poly)
        streamed = [
            chunk["_row_id"]
            for chunk, _ in kd_index.query_polyhedron_stream(poly)
        ]
        union = np.concatenate(streamed) if streamed else np.empty(0, np.int64)
        assert np.array_equal(np.sort(union), np.sort(bulk["_row_id"]))

    def test_stream_labels_relations(self, kd_index, clustered_points_3d):
        box = Box.from_points(clustered_points_3d, pad=1.0)
        chunks = list(kd_index.query_polyhedron_stream(Polyhedron.from_box(box)))
        # The whole space is one INSIDE subtree.
        assert len(chunks) == 1
        assert chunks[0][1] is BoxRelation.INSIDE

    def test_stream_is_lazy(self, kd_index):
        poly = Polyhedron.simplex_around(np.array([0.0, 0.0, 0.0]), 0.6)
        generator = kd_index.query_polyhedron_stream(poly)
        first = next(generator)
        assert len(first[0]["_row_id"]) > 0
        generator.close()

    def test_stream_dim_check(self, kd_index):
        with pytest.raises(ValueError):
            next(kd_index.query_polyhedron_stream(Polyhedron.from_box(Box.unit(2))))


class TestApproximateKnn:
    def test_high_recall_with_one_ring(self, voronoi_index):
        rng = np.random.default_rng(1)
        hits = total = 0
        for _ in range(15):
            query = rng.normal([1.5, 1.0, 0.5], 1.0)
            exact = knn_brute_force(voronoi_index.table, voronoi_index.dims, query, 8)
            approx = voronoi_index.knn_approximate(query, 8, rings=1)
            hits += len(set(approx.row_ids.tolist()) & set(exact.row_ids.tolist()))
            total += 8
        assert hits / total > 0.9

    def test_zero_rings_single_cell(self, voronoi_index):
        query = np.array([0.0, 0.0, 0.0])
        result = voronoi_index.knn_approximate(query, 5, rings=0)
        assert result.stats.extra["cells_examined"] == 1

    def test_more_rings_examine_more_cells(self, voronoi_index):
        query = np.array([0.0, 0.0, 0.0])
        one = voronoi_index.knn_approximate(query, 5, rings=1)
        two = voronoi_index.knn_approximate(query, 5, rings=2)
        assert two.stats.extra["cells_examined"] > one.stats.extra["cells_examined"]

    def test_validation(self, voronoi_index):
        with pytest.raises(ValueError):
            voronoi_index.knn_approximate(np.zeros(3), 0)
        with pytest.raises(ValueError):
            voronoi_index.knn_approximate(np.zeros(3), 5, rings=-1)

    def test_approximate_cheaper_than_exact(self, voronoi_index):
        query = np.array([3.0, 2.0, 1.0])
        exact = voronoi_index.knn(query, 10)
        approx = voronoi_index.knn_approximate(query, 10, rings=1)
        assert (
            approx.stats.extra["cells_examined"]
            <= exact.stats.extra["cells_examined"] + voronoi_index.graph.degree(0)
        )


class TestStratifiedSeeds:
    def test_balances_cell_counts(self, clustered_points_3d):
        db = Database.in_memory(buffer_pages=None)
        pts = clustered_points_3d
        data = {"x": pts[:, 0], "y": pts[:, 1], "z": pts[:, 2]}
        cv = {}
        for strategy in ("random", "stratified"):
            index = VoronoiIndex.build(
                db,
                f"strat_{strategy}",
                data,
                ["x", "y", "z"],
                num_seeds=150,
                seed_strategy=strategy,
            )
            counts = index.cell_point_counts()
            cv[strategy] = counts.std() / counts.mean()
        assert cv["stratified"] < cv["random"]

    def test_queries_still_exact(self, clustered_points_3d):
        db = Database.in_memory(buffer_pages=None)
        pts = clustered_points_3d
        data = {"x": pts[:, 0], "y": pts[:, 1], "z": pts[:, 2]}
        index = VoronoiIndex.build(
            db, "strat_q", data, ["x", "y", "z"], num_seeds=100,
            seed_strategy="stratified",
        )
        box = Box.cube(np.array([0.0, 0.0, 0.0]), 0.6)
        _, stats = index.query_box(box)
        assert stats.rows_returned == int(box.contains_points(pts).sum())

    def test_bad_strategy_rejected(self, clustered_points_3d):
        db = Database.in_memory()
        pts = clustered_points_3d[:500]
        data = {"x": pts[:, 0], "y": pts[:, 1], "z": pts[:, 2]}
        with pytest.raises(ValueError):
            VoronoiIndex.build(
                db, "strat_bad", data, ["x", "y", "z"], num_seeds=50,
                seed_strategy="fancy",
            )


class TestDelaunayEdgeStore:
    @pytest.fixture(scope="class")
    def stored(self):
        rng = np.random.default_rng(3)
        seeds = rng.normal(size=(200, 3))
        graph = DelaunayGraph(seeds)
        db = Database.in_memory(buffer_pages=32)
        store = DelaunayEdgeStore.save(db, "es", graph)
        return db, graph, store

    def test_neighbors_roundtrip(self, stored):
        _, graph, store = stored
        for seed in range(0, 200, 23):
            assert set(store.neighbors(seed).tolist()) == set(
                graph.neighbors(seed).tolist()
            )

    def test_degrees_match(self, stored):
        _, graph, store = stored
        assert np.array_equal(store.degrees(), graph.degrees())

    def test_edge_count_doubled(self, stored):
        _, graph, store = stored
        assert store.num_directed_edges == 2 * graph.num_edges()

    def test_walk_matches_in_memory(self, stored):
        _, graph, store = stored
        rng = np.random.default_rng(4)
        for _ in range(20):
            point = rng.normal(size=3)
            walk, stats = store.directed_walk(point)
            assert walk.seed == graph.nearest_seed_exact(point)
            assert stats.pages_touched > 0  # it actually read the tables

    def test_reopen(self, stored):
        db, graph, _ = stored
        reopened = DelaunayEdgeStore.open(db, "es")
        assert reopened.num_seeds == graph.num_seeds
        assert reopened.dim == 3
        assert set(reopened.neighbors(5).tolist()) == set(graph.neighbors(5).tolist())

    def test_seed_points_roundtrip(self, stored):
        _, graph, store = stored
        got = store.seed_points(np.array([0, 50, 199]))
        assert np.allclose(got, graph.seeds[[0, 50, 199]])

    def test_approximate_volumes_rank_correlate(self, stored):
        _, graph, store = stored
        proxy = store.approximate_volumes()
        exact = voronoi_volume_estimates(graph)
        mask = np.isfinite(proxy) & (exact > 0)
        corr = spearmanr(proxy[mask], exact[mask]).statistic
        assert corr > 0.8

    def test_storage_accounting(self, stored):
        _, graph, store = stored
        sizes = store.storage_bytes()
        assert sizes["edges"] == store.num_directed_edges * 16
        assert sizes["total"] == sizes["edges"] + sizes["seeds"]


class TestSkySample:
    @pytest.fixture(scope="class")
    def sky(self):
        return sky_survey_sample(30_000, seed=5)

    def test_shapes_and_ranges(self, sky):
        assert sky.num_objects == 30_000
        assert sky.ra.min() >= 0.0 and sky.ra.max() < 360.0
        assert sky.dec.min() >= -90.0 and sky.dec.max() <= 90.0
        assert sky.redshift.min() > 0.0

    def test_kinds_present(self, sky):
        assert set(np.unique(sky.kind)) == {0, 1, 2}

    def test_cartesian_hubble_law(self, sky):
        xyz = sky.cartesian()
        radial = np.linalg.norm(xyz, axis=1)
        # distance proportional to redshift (Hubble's law).
        corr = np.corrcoef(radial, sky.redshift)[0, 1]
        assert corr > 0.999

    def test_clusters_are_overdense(self, sky):
        # Cluster members are far more concentrated than field galaxies.
        xyz = sky.cartesian()
        cluster = xyz[sky.kind == 1]
        field = xyz[sky.kind == 0]
        # Mean nearest-neighbor distance within each population.
        from scipy.spatial import cKDTree

        def mean_nn(points):
            dists, _ = cKDTree(points).query(points, k=2)
            return dists[:, 1].mean()

        assert mean_nn(cluster[:3000]) < 0.5 * mean_nn(field[:3000])

    def test_finger_of_god_radial_elongation(self, sky):
        # Within one cluster, the radial spread (from peculiar velocity)
        # exceeds the transverse spread: the Figure 14 "fingers".
        xyz = sky.cartesian()
        cluster_points = xyz[sky.kind == 1]
        from scipy.spatial import cKDTree

        tree = cKDTree(cluster_points)
        center = cluster_points[0]
        members = cluster_points[tree.query_ball_point(center, 40.0)]
        if len(members) > 30:
            radial_dir = center / np.linalg.norm(center)
            radial = (members - members.mean(0)) @ radial_dir
            transverse = np.linalg.norm(
                (members - members.mean(0))
                - radial[:, None] * radial_dir,
                axis=1,
            )
            assert radial.std() > transverse.std() * 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            sky_survey_sample(0)
        with pytest.raises(ValueError):
            sky_survey_sample(100, cluster_fraction=0.8, filament_fraction=0.5)

    def test_deterministic(self):
        a = sky_survey_sample(1000, seed=7)
        b = sky_survey_sample(1000, seed=7)
        assert np.array_equal(a.redshift, b.redshift)

    def test_indexable(self, sky):
        # The Figure 14 use: index the 3-D positions and query a region.
        db = Database.in_memory(buffer_pages=None)
        xyz = sky.cartesian()
        data = {"x": xyz[:, 0], "y": xyz[:, 1], "z": xyz[:, 2]}
        index = KdTreeIndex.build(db, "sky", data, ["x", "y", "z"])
        box = Box.cube(xyz[0], 50.0)
        _, stats = index.query_box(box)
        assert stats.rows_returned == int(box.contains_points(xyz).sum())
