"""Fault sweeps: every injection site either recovers or fails structurally.

The invariant under test, from ISSUE acceptance: under injected storage
faults a query may (a) succeed with exactly the fault-free answer, after
retries and/or a planner fallback, or (b) fail with a structured error
(:class:`~repro.service.errors.QueryFault` through the service,
:class:`~repro.db.errors.StorageFault` at the engine) -- but it must
never return a wrong answer and never hang or kill a worker.
"""

import numpy as np
import pytest

from repro import Database, LoggedStorage, QueryPlanner, WriteFault
from repro.db import CorruptPageError, FaultInjector, FaultyStorage, MemoryStorage
from repro.db.histogram import HistogramStatistics
from repro.service import DeadlineExceeded, QueryFault, QueryService, rows_equal

from .faultutil import BANDS, build_kd_setup, fault_free_ground_truth, make_faulty_db

pytestmark = pytest.mark.faultsweep


class TestTransientReadFaults:
    def test_rate_faults_recovered_by_retries(self):
        setup = build_kd_setup(seed=7)
        queries = setup.workload.mixed(8, selectivities=[0.01, 0.05, 0.2])
        polyhedra = [q.polyhedron(BANDS) for q in queries]
        truth = fault_free_ground_truth(setup, polyhedra)

        setup.injector.configure(read_fault_rate=0.1)
        setup.db.cold_cache()
        for idx, polyhedron in enumerate(polyhedra):
            planned = setup.planner.execute(polyhedron)
            assert rows_equal(planned.rows, truth[idx]), f"query {idx} diverged"

        # Faults actually fired and retries actually absorbed them.
        assert setup.injector.counters()["reads_failed"] > 0
        io = setup.db.io_stats.as_dict()
        assert io["read_faults"] > 0
        assert io["read_retries"] > 0

    def test_burst_fails_probe_and_degrades_to_scan(self):
        setup = build_kd_setup(seed=7)
        polyhedron = setup.workload.mixed(1, selectivities=[0.05])[0].polyhedron(BANDS)
        truth = fault_free_ground_truth(setup, [polyhedron])[0]

        # The ground-truth run warmed ``setup.planner``'s probe-sample
        # cache; a fresh planner pays the probe I/O again, which is the
        # path this burst must land on.
        planner = QueryPlanner(setup.index, seed=7)

        # 8 failed attempts: the probe's coalesced prefetch dies
        # (attempts 1-4), its first page-at-a-time read dies (5-8), and
        # the scan fallback then runs against healthy storage.
        setup.db.cold_cache()
        setup.injector.fail_next_reads(8)
        planned = planner.execute(polyhedron)

        assert planned.fallback
        assert "probe" in planned.fallback_reason
        assert planned.chosen_path == "scan"
        assert rows_equal(planned.rows, truth)

    def test_burst_fails_kdtree_path_and_degrades_to_scan(self):
        # A histogram-statistics planner probes with zero I/O, so the
        # burst lands on the kd traversal itself, not the probe.
        setup = build_kd_setup(seed=7)
        statistics = HistogramStatistics(setup.index.table, BANDS)
        planner = QueryPlanner(setup.index, seed=7, statistics=statistics)
        polyhedron = setup.workload.mixed(1, selectivities=[0.05])[0].polyhedron(BANDS)
        truth = planner.execute(polyhedron)
        assert not truth.fallback and truth.chosen_path == "kdtree"

        setup.db.cold_cache()
        # 12 = the pool's 4 attempts spent abandoning the read-ahead
        # batch + its 4 attempts times the scan layer's 2 on the
        # page-at-a-time path: exactly enough to exhaust every budget on
        # the first leaf read.
        setup.injector.fail_next_reads(12)
        planned = planner.execute(polyhedron)

        assert planned.fallback
        assert "kdtree" in planned.fallback_reason
        assert planned.chosen_path == "scan"
        assert rows_equal(planned.rows, truth.rows)


class TestCorruption:
    def test_occasional_corruption_recovered_by_reread(self):
        setup = build_kd_setup(seed=5)
        queries = setup.workload.mixed(6, selectivities=[0.01, 0.2])
        polyhedra = [q.polyhedron(BANDS) for q in queries]
        truth = fault_free_ground_truth(setup, polyhedra)

        setup.injector.configure(corrupt_rate=0.2)
        setup.db.cold_cache()
        for idx, polyhedron in enumerate(polyhedra):
            planned = setup.planner.execute(polyhedron)
            assert rows_equal(planned.rows, truth[idx]), f"query {idx} diverged"
        assert setup.injector.counters()["pages_corrupted"] > 0

    def test_persistent_corruption_is_a_structured_error_not_a_wrong_answer(self):
        setup = build_kd_setup(seed=5)
        polyhedron = setup.workload.mixed(1, selectivities=[0.05])[0].polyhedron(BANDS)
        truth = fault_free_ground_truth(setup, [polyhedron])[0]

        service = QueryService(setup.db, setup.planner, workers=2, cache_entries=0)
        with service:
            setup.injector.configure(corrupt_rate=1.0)
            setup.db.cold_cache()
            with pytest.raises(QueryFault) as excinfo:
                service.execute(polyhedron, timeout=60)
            assert excinfo.value.cause_type == "CorruptPageError"
            assert isinstance(excinfo.value.__cause__, CorruptPageError)

            # The failure was recorded, the workers survived, and the
            # service answers correctly once the storage heals (injected
            # corruption is read-side only; nothing durable was harmed).
            assert service.alive_workers == 2
            assert service.metrics.summary()["storage_faults"] >= 1
            setup.injector.quiesce()
            outcome = service.execute(polyhedron, timeout=60)
            assert rows_equal(outcome.rows, truth)


class TestIndexPageFaults:
    """Faults scoped to the paged kd-tree's node pages.

    The injector's namespace filter confines every fault to
    ``__kdindex__/...``, so any wrong answer or unstructured failure
    here is the index read path's doing -- data pages never fail.
    """

    def test_transient_index_faults_recovered_by_retries(self):
        from repro.db.storage import INDEX_NAMESPACE_PREFIX

        setup = build_kd_setup(seed=11)
        assert setup.index.tree.layout is not None  # actually paged
        statistics = HistogramStatistics(setup.index.table, BANDS)
        planner = QueryPlanner(setup.index, seed=11, statistics=statistics)
        queries = setup.workload.mixed(6, selectivities=[0.01, 0.05, 0.2])
        polyhedra = [q.polyhedron(BANDS) for q in queries]
        truth = [planner.execute(p).rows for p in polyhedra]

        # The tree at this scale is a single node page, so each cold
        # query rolls the dice only once -- a high rate and two passes
        # make this seed's deterministic sequence actually fire.
        setup.injector.configure(
            read_fault_rate=0.5, namespace_filter=INDEX_NAMESPACE_PREFIX
        )
        for idx, polyhedron in enumerate(polyhedra * 2):
            setup.db.cold_cache()  # node pages must be re-read every time
            planned = planner.execute(polyhedron)
            assert rows_equal(
                planned.rows, truth[idx % len(polyhedra)]
            ), f"query {idx} diverged"
        assert setup.injector.counters()["reads_failed"] > 0
        assert setup.db.io_stats.as_dict()["read_retries"] > 0

    def test_torn_index_pages_recovered_by_reread(self):
        from repro.db.storage import INDEX_NAMESPACE_PREFIX

        setup = build_kd_setup(seed=13)
        statistics = HistogramStatistics(setup.index.table, BANDS)
        planner = QueryPlanner(setup.index, seed=13, statistics=statistics)
        queries = setup.workload.mixed(5, selectivities=[0.01, 0.2])
        polyhedra = [q.polyhedron(BANDS) for q in queries]
        truth = [planner.execute(p).rows for p in polyhedra]

        setup.injector.configure(
            corrupt_rate=0.5, namespace_filter=INDEX_NAMESPACE_PREFIX
        )
        for idx, polyhedron in enumerate(polyhedra * 2):
            setup.db.cold_cache()
            planned = planner.execute(polyhedron)
            assert rows_equal(
                planned.rows, truth[idx % len(polyhedra)]
            ), f"query {idx} diverged"
        assert setup.injector.counters()["pages_corrupted"] > 0

    def test_index_outage_degrades_to_scan_and_heals(self):
        from repro.db.storage import INDEX_NAMESPACE_PREFIX

        setup = build_kd_setup(seed=17)
        statistics = HistogramStatistics(setup.index.table, BANDS)
        planner = QueryPlanner(setup.index, seed=17, statistics=statistics)
        polyhedron = setup.workload.mixed(1, selectivities=[0.05])[0].polyhedron(
            BANDS
        )
        truth = planner.execute(polyhedron)
        assert not truth.fallback and truth.chosen_path == "kdtree"

        # A persistent index-only outage: every node-page read fails
        # until further notice, data pages stay online.
        setup.db.cold_cache()
        setup.injector.fail_next_reads(
            1_000_000, namespace=INDEX_NAMESPACE_PREFIX
        )
        planned = planner.execute(polyhedron)
        assert planned.fallback
        assert "kdtree" in planned.fallback_reason
        assert planned.chosen_path == "scan"
        # The scan ran to completion *during* the outage -- proof the
        # burst never touched a data page -- and answered correctly.
        assert rows_equal(planned.rows, truth.rows)
        assert setup.injector.counters()["reads_failed"] >= 4

        # Storage heals: the kd path comes straight back.
        setup.injector.quiesce()
        setup.db.cold_cache()
        healed = planner.execute(polyhedron)
        assert not healed.fallback and healed.chosen_path == "kdtree"
        assert rows_equal(healed.rows, truth.rows)


class TestWriteFaults:
    def test_write_fault_aborts_build_and_rebuild_succeeds(self):
        db, injector = make_faulty_db(seed=2)
        data = {"a": np.arange(200.0)}

        injector.configure(write_fault_rate=1.0)
        with pytest.raises(WriteFault):
            db.create_table("t", dict(data), rows_per_page=64)

        injector.quiesce()
        db.drop_table("t")  # clear any partial pages
        table = db.create_table("t", dict(data), rows_per_page=64)
        assert np.array_equal(table.read_column("a"), data["a"])


class TestInjectedLatency:
    def test_latency_plus_deadline_fails_cleanly_without_hanging(self):
        setup = build_kd_setup(num_rows=2000, seed=9)
        polyhedron = setup.workload.mixed(1, selectivities=[0.2])[0].polyhedron(BANDS)

        service = QueryService(setup.db, setup.planner, workers=2, cache_entries=0)
        with service:
            setup.injector.configure(read_latency_s=0.005)
            setup.db.cold_cache()
            ticket = service.submit(polyhedron, deadline=0.02)
            with pytest.raises(DeadlineExceeded):
                # A bounded wait: a hung worker would raise TimeoutError
                # here instead, failing the test.
                ticket.result(timeout=30)
            assert service.alive_workers == 2

            # Without the stall the same query completes fine.
            setup.injector.quiesce()
            outcome = service.execute(polyhedron, timeout=60)
            assert outcome.rows["_row_id"] is not None
        assert service.metrics.summary()["deadline_misses"] == 1


class TestWalUnderFaults:
    @pytest.fixture()
    def logged_faulty_db(self):
        injector = FaultInjector(seed=3)
        logged = LoggedStorage(FaultyStorage(MemoryStorage(), injector))
        db = Database(logged, buffer_pages=None)
        db.create_table("t", {"a": np.arange(100.0)}, rows_per_page=50)
        return db, logged, injector

    def test_log_first_write_recovers_page_lost_to_write_fault(
        self, logged_faulty_db
    ):
        db, logged, injector = logged_faulty_db
        injector.configure(write_fault_rate=1.0)
        with pytest.raises(WriteFault):
            db.create_table("lost", {"b": np.arange(64.0)}, rows_per_page=64)
        injector.quiesce()

        # The inner backend never saw the page -- but the log did.
        assert logged.inner.num_pages("lost") == 0
        fresh = MemoryStorage()
        applied = logged.replay(fresh)
        assert applied == 3  # two pages of "t" plus the lost one
        assert fresh.num_pages("lost") == 1
        recovered = fresh.read_page("lost", 0)
        assert np.array_equal(recovered.columns["b"], np.arange(64.0))

    def test_replay_skips_torn_record_and_still_recovers_the_rest(
        self, logged_faulty_db, caplog
    ):
        db, logged, injector = logged_faulty_db
        injector.configure(write_fault_rate=1.0)
        with pytest.raises(WriteFault):
            db.create_table("lost", {"b": np.arange(64.0)}, rows_per_page=64)
        injector.quiesce()

        # Tear a mid-log record (a page of "t"), then crash-recover.
        raw = bytearray(logged._log[1])
        raw[-1] ^= 0xFF
        logged._log[1] = bytes(raw)
        fresh = MemoryStorage()
        with caplog.at_level("WARNING", logger="repro.db.recovery"):
            applied = logged.replay(fresh)
        assert applied == 2
        assert fresh.num_pages("lost") == 1
        assert any("checksum" in message for message in caplog.messages)
