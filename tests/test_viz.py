"""Tests for the adaptive visualization pipeline (§5)."""

import threading

import numpy as np
import pytest

from repro.geometry import Box
from repro.tessellation import DelaunayGraph
from repro.viz import (
    AdaptivePointCloudProducer,
    Camera,
    DelaunayEdgeProducer,
    GeometryCache,
    GeometrySet,
    KdBoxProducer,
    PluginHost,
    RecordingConsumer,
    VoronoiCellProducer,
)
from repro.viz.events import Event, Registry
from repro.viz.plugin import Pipe


class TestCamera:
    def test_zoom_in_shrinks(self):
        cam = Camera(Box.unit(3))
        zoomed = cam.zoomed(0.5)
        assert np.allclose(zoomed.view_box.widths, 0.5)
        assert np.allclose(zoomed.center, cam.center)

    def test_zoom_validation(self):
        with pytest.raises(ValueError):
            Camera(Box.unit(2)).zoomed(0.0)

    def test_pan(self):
        cam = Camera(Box.unit(2)).panned(np.array([1.0, -1.0]))
        assert np.allclose(cam.view_box.lo, [1.0, -1.0])

    def test_moved_to(self):
        cam = Camera(Box.unit(2)).moved_to(np.array([10.0, 10.0]))
        assert np.allclose(cam.center, [10.0, 10.0])
        assert np.allclose(cam.view_box.widths, 1.0)

    def test_quantized_key_stable(self):
        a = Camera(Box.unit(3)).quantized_key()
        b = Camera(Box.unit(3)).quantized_key()
        assert a == b

    def test_quantized_key_distinguishes(self):
        a = Camera(Box.unit(3)).quantized_key()
        b = Camera(Box.unit(3)).zoomed(0.5).quantized_key()
        assert a != b


class TestEvents:
    def test_subscribe_fire(self):
        event = Event()
        seen = []
        event.subscribe(seen.append)
        event.fire(42)
        assert seen == [42]

    def test_subscribe_idempotent(self):
        event = Event()
        seen = []
        event.subscribe(seen.append)
        event.subscribe(seen.append)
        event.fire(1)
        assert seen == [1]

    def test_unsubscribe(self):
        event = Event()
        seen = []
        event.subscribe(seen.append)
        event.unsubscribe(seen.append)
        event.fire(1)
        assert seen == []
        assert len(event) == 0

    def test_registry_production_flag(self):
        registry = Registry()
        assert not registry.production_pending()
        registry.signal_production()
        assert registry.production_pending()
        registry.clear_production()
        assert not registry.production_pending()

    def test_registry_flag_thread_safe(self):
        registry = Registry()

        def signal_many():
            for _ in range(1000):
                registry.signal_production()

        threads = [threading.Thread(target=signal_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.production_pending()


class TestGeometrySet:
    def test_counts(self):
        geom = GeometrySet(points=np.zeros((5, 3)))
        assert geom.num_points == 5
        assert geom.num_lines == 0
        assert not geom.is_empty()

    def test_empty(self):
        assert GeometrySet().is_empty()

    def test_merge(self):
        a = GeometrySet(points=np.zeros((2, 3)), attributes={"x": 1})
        b = GeometrySet(points=np.ones((3, 3)), attributes={"x": 2, "y": 3})
        merged = a.merged_with(b)
        assert merged.num_points == 5
        assert merged.attributes["x"] == 1  # self wins
        assert merged.attributes["y"] == 3


class TestGeometryCache:
    def test_hit_miss_counters(self):
        cache = GeometryCache(2)
        assert cache.get(("a",)) is None
        cache.put(("a",), GeometrySet())
        assert cache.get(("a",)) is not None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = GeometryCache(2)
        for key in ("a", "b", "c"):
            cache.put((key,), GeometrySet())
        assert cache.get(("a",)) is None
        assert cache.get(("c",)) is not None

    def test_capacity_guard(self):
        with pytest.raises(ValueError):
            GeometryCache(0)

    def test_clear(self):
        cache = GeometryCache(2)
        cache.put(("a",), GeometrySet())
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0


class _DoublingPipe(Pipe):
    """Test pipe: scales points by two."""

    def process(self, geometry: GeometrySet) -> GeometrySet:
        return GeometrySet(points=geometry.points * 2.0, attributes=geometry.attributes)


class TestPluginHost:
    def _point_host(self, grid_index, threaded=False, with_pipe=False):
        producer = AdaptivePointCloudProducer(
            grid_index, target_points=200, threaded=threaded
        )
        consumer = RecordingConsumer()
        nodes = [{"name": "source", "plugin": producer}]
        if with_pipe:
            nodes.append({"name": "pipe", "plugin": _DoublingPipe(), "inputs": ["source"]})
            nodes.append({"name": "sink", "plugin": consumer, "inputs": ["pipe"]})
        else:
            nodes.append({"name": "sink", "plugin": consumer, "inputs": ["source"]})
        host = PluginHost(nodes)
        return host, producer, consumer

    def test_frame_delivers_geometry(self, grid_index):
        host, producer, consumer = self._point_host(grid_index)
        host.start()
        host.set_camera(producer.suggest_initial())
        delivered = host.frame()
        assert "source" in delivered
        assert consumer.frames[0].num_points >= 200
        host.shutdown()

    def test_pipe_transforms(self, grid_index):
        host, producer, consumer = self._point_host(grid_index, with_pipe=True)
        host.start()
        host.set_camera(producer.suggest_initial())
        host.frame()
        direct = producer.get_output()
        assert np.allclose(consumer.frames[0].points, direct.points * 2.0)
        host.shutdown()

    def test_threaded_handshake(self, grid_index):
        host, producer, consumer = self._point_host(grid_index, threaded=True)
        host.start()
        host.set_camera(producer.suggest_initial())
        host.run_until_idle(max_frames=400)
        assert len(consumer.frames) == 1
        host.shutdown()

    def test_camera_burst_coalesces(self, grid_index):
        host, producer, consumer = self._point_host(grid_index, threaded=True)
        host.start()
        cam = producer.suggest_initial()
        host.set_camera(cam)
        host.run_until_idle(max_frames=400)
        for factor in (0.9, 0.8, 0.7, 0.6):
            host.set_camera(cam.zoomed(factor))
        host.run_until_idle(max_frames=400)
        # Coalescing: fewer productions than camera events.
        assert producer.db_queries <= 3
        assert producer.is_idle()
        host.shutdown()

    def test_cache_hit_on_zoom_out(self, grid_index):
        host, producer, consumer = self._point_host(grid_index)
        host.start()
        cam = producer.suggest_initial()
        host.set_camera(cam)
        host.frame()
        host.set_camera(cam.zoomed(0.5))
        host.frame()
        queries_before = producer.db_queries
        host.set_camera(cam)  # zoom back out
        host.frame()
        assert producer.db_queries == queries_before  # served from cache
        assert producer.cache.hits >= 1
        host.shutdown()

    def test_graph_validation(self):
        consumer = RecordingConsumer()
        with pytest.raises(ValueError):
            PluginHost([{"name": "sink", "plugin": consumer, "inputs": ["ghost"]}])
        with pytest.raises(ValueError):
            PluginHost([{"name": "sink", "plugin": consumer}])  # consumer needs input

    def test_duplicate_names_rejected(self):
        consumer = RecordingConsumer()
        producer_stub = RecordingConsumer()
        with pytest.raises(ValueError):
            PluginHost(
                [
                    {"name": "x", "plugin": consumer, "inputs": []},
                    {"name": "x", "plugin": producer_stub, "inputs": []},
                ]
            )

    def test_frame_requires_start(self, grid_index):
        host, _, _ = self._point_host(grid_index)
        with pytest.raises(RuntimeError):
            host.frame()


class TestProducers:
    def test_point_cloud_points_in_view(self, grid_index):
        producer = AdaptivePointCloudProducer(grid_index, target_points=100)
        host = PluginHost([{"name": "p", "plugin": producer}])
        host.start()
        cam = Camera(Box.cube(np.array([0.0, 0.0, 0.0]), 1.0))
        host.set_camera(cam)
        host.frame()
        geom = producer.get_output()
        assert cam.view_box.contains_points(geom.points).all()
        host.shutdown()

    def test_kd_box_producer_depth_adapts(self, kd_index):
        producer = KdBoxProducer(kd_index, target_boxes=16)
        host = PluginHost([{"name": "p", "plugin": producer}])
        host.start()
        wide = producer.suggest_initial()
        host.set_camera(wide)
        host.frame()
        wide_geom = producer.get_output()
        assert wide_geom.num_boxes >= 16
        # Zooming into a tiny corner leaves fewer/equal boxes visible
        # but at greater depth.
        host.set_camera(wide.zoomed(0.1))
        host.frame()
        tight_geom = producer.get_output()
        assert tight_geom.attributes["depths"].max() >= wide_geom.attributes["depths"].min()
        host.shutdown()

    def test_kd_box_empty_view(self, kd_index):
        producer = KdBoxProducer(kd_index, target_boxes=16)
        host = PluginHost([{"name": "p", "plugin": producer}])
        host.start()
        host.set_camera(Camera(Box.cube(np.full(3, 500.0), 1.0)))
        host.frame()
        assert producer.get_output().num_boxes == 0
        host.shutdown()

    @pytest.fixture(scope="class")
    def levels(self, clustered_points_3d):
        rng = np.random.default_rng(17)
        return [
            DelaunayGraph(
                clustered_points_3d[rng.choice(len(clustered_points_3d), n, replace=False)]
            )
            for n in (32, 128, 512)
        ]

    def test_delaunay_lod_refines(self, levels):
        producer = DelaunayEdgeProducer(levels, target_edges=400)
        host = PluginHost([{"name": "p", "plugin": producer}])
        host.start()
        host.set_camera(producer.suggest_initial())
        host.frame()
        geom = producer.get_output()
        # The coarse level cannot satisfy 400 edges; a finer level is used.
        assert geom.attributes["level"] > 0
        assert geom.num_lines > 0
        host.shutdown()

    def test_delaunay_coarse_enough_when_few_needed(self, levels):
        producer = DelaunayEdgeProducer(levels, target_edges=5)
        host = PluginHost([{"name": "p", "plugin": producer}])
        host.start()
        host.set_camera(producer.suggest_initial())
        host.frame()
        assert producer.get_output().attributes["level"] == 0
        host.shutdown()

    def test_voronoi_producer_emits_cells(self, levels):
        producer = VoronoiCellProducer(levels, target_cells=10)
        host = PluginHost([{"name": "p", "plugin": producer}])
        host.start()
        host.set_camera(producer.suggest_initial())
        host.frame()
        geom = producer.get_output()
        assert geom.num_lines > 0
        assert len(geom.attributes["cell_volumes"]) == geom.num_lines
        host.shutdown()

    def test_levels_required(self):
        with pytest.raises(ValueError):
            DelaunayEdgeProducer([], target_edges=10)
        with pytest.raises(ValueError):
            VoronoiCellProducer([], target_cells=10)


class TestExportConsumer:
    def test_points_csv_roundtrip(self, tmp_path):
        from repro.viz import ExportConsumer

        rng = np.random.default_rng(0)
        geometry = GeometrySet(
            points=rng.normal(size=(20, 3)),
            attributes={"score": np.arange(20.0)},
        )
        exporter = ExportConsumer(tmp_path, prefix="test")
        exporter.consume(geometry)
        assert exporter.frames_written == 1
        csv_path = tmp_path / "test_000_points.csv"
        assert csv_path.exists()
        data = np.loadtxt(csv_path, delimiter=",", skiprows=1)
        assert data.shape == (20, 4)
        assert np.allclose(data[:, :3], geometry.points)
        assert np.allclose(data[:, 3], np.arange(20.0))

    def test_obj_for_lines_and_boxes(self, tmp_path):
        from repro.viz import ExportConsumer

        geometry = GeometrySet(
            lines=np.array([[[0.0, 0, 0], [1.0, 1, 1]]]),
            boxes=np.array([[[0.0, 0, 0], [1.0, 1, 1]]]),
        )
        exporter = ExportConsumer(tmp_path)
        exporter.consume(geometry)
        obj = (tmp_path / "frame_000_geometry.obj").read_text()
        assert obj.count("\nv ") == 2 + 8  # 2 line endpoints + 8 box corners
        assert obj.count("\nl ") == 1 + 12  # 1 segment + 12 box edges

    def test_sequential_frames(self, tmp_path):
        from repro.viz import ExportConsumer

        exporter = ExportConsumer(tmp_path)
        for _ in range(3):
            exporter.consume(GeometrySet(points=np.zeros((2, 3))))
        assert exporter.frames_written == 3
        assert len(list(tmp_path.glob("frame_*_points.csv"))) == 3

    def test_in_pipeline(self, tmp_path, grid_index):
        from repro.viz import ExportConsumer

        producer = AdaptivePointCloudProducer(grid_index, target_points=100)
        exporter = ExportConsumer(tmp_path, prefix="pipe")
        host = PluginHost(
            [
                {"name": "p", "plugin": producer},
                {"name": "e", "plugin": exporter, "inputs": ["p"]},
            ]
        )
        host.start()
        host.set_camera(producer.suggest_initial())
        host.frame()
        host.shutdown()
        assert exporter.frames_written == 1
        assert (tmp_path / "pipe_000_points.csv").exists()
