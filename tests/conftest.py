"""Shared fixtures: small datasets, databases, and prebuilt indexes."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, KdTreeIndex, LayeredGridIndex, VoronoiIndex
from repro.datasets import sdss_color_sample


@pytest.fixture(scope="session")
def clustered_points_3d() -> np.ndarray:
    """A bimodal 3-D point cloud (clustered, anisotropic)."""
    rng = np.random.default_rng(7)
    return np.vstack(
        [
            rng.normal([0.0, 0.0, 0.0], [0.4, 0.2, 0.6], size=(4000, 3)),
            rng.normal([3.0, 2.0, 1.0], [0.8, 0.5, 0.3], size=(4000, 3)),
        ]
    )


@pytest.fixture(scope="session")
def sdss_sample():
    """A small labeled SDSS color-space sample."""
    return sdss_color_sample(6000, seed=11)


@pytest.fixture()
def db() -> Database:
    """A fresh in-memory database with an unbounded buffer pool."""
    return Database.in_memory(buffer_pages=None)


@pytest.fixture(scope="session")
def shared_db() -> Database:
    """A session-wide database for expensive index builds."""
    return Database.in_memory(buffer_pages=None)


@pytest.fixture(scope="session")
def kd_index(shared_db, clustered_points_3d) -> KdTreeIndex:
    """Kd-tree index over the bimodal cloud."""
    pts = clustered_points_3d
    data = {"x": pts[:, 0], "y": pts[:, 1], "z": pts[:, 2]}
    return KdTreeIndex.build(shared_db, "fixture_kd", data, ["x", "y", "z"])


@pytest.fixture(scope="session")
def voronoi_index(shared_db, clustered_points_3d) -> VoronoiIndex:
    """Voronoi index over the bimodal cloud."""
    pts = clustered_points_3d
    data = {"x": pts[:, 0], "y": pts[:, 1], "z": pts[:, 2]}
    return VoronoiIndex.build(
        shared_db, "fixture_vor", data, ["x", "y", "z"], num_seeds=200
    )


@pytest.fixture(scope="session")
def grid_index(shared_db, clustered_points_3d) -> LayeredGridIndex:
    """Layered grid index over the bimodal cloud."""
    pts = clustered_points_3d
    data = {"x": pts[:, 0], "y": pts[:, 1], "z": pts[:, 2]}
    return LayeredGridIndex.build(
        shared_db, "fixture_grid", data, ["x", "y", "z"], base=256
    )
