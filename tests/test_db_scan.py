"""Tests for scan executors."""

import numpy as np
import pytest

from repro.db import Col, Database, full_scan, range_scan


@pytest.fixture()
def table_and_data():
    db = Database.in_memory(buffer_pages=None)
    rng = np.random.default_rng(5)
    data = {"a": rng.normal(size=500), "b": rng.normal(size=500)}
    table = db.create_table("t", data, rows_per_page=64)
    return db, table, data


class TestFullScan:
    def test_no_predicate_returns_everything(self, table_and_data):
        _, table, data = table_and_data
        rows, stats = full_scan(table)
        assert stats.rows_returned == 500
        assert stats.pages_touched == table.num_pages
        assert np.allclose(rows["a"], data["a"])
        assert np.array_equal(rows["_row_id"], np.arange(500))

    def test_expression_predicate(self, table_and_data):
        _, table, data = table_and_data
        rows, stats = full_scan(table, predicate=Col("a") > 0.0)
        assert stats.rows_returned == int((data["a"] > 0).sum())
        assert (rows["a"] > 0).all()

    def test_callable_predicate(self, table_and_data):
        _, table, data = table_and_data
        rows, _ = full_scan(table, predicate=lambda cols: cols["b"] < cols["a"])
        assert (rows["b"] < rows["a"]).all()

    def test_projection(self, table_and_data):
        _, table, _ = table_and_data
        rows, _ = full_scan(table, columns=["b"])
        assert set(rows) == {"b", "_row_id"}

    def test_empty_result_keeps_dtypes(self, table_and_data):
        _, table, _ = table_and_data
        rows, stats = full_scan(table, predicate=Col("a") > 1e9)
        assert stats.rows_returned == 0
        assert rows["a"].dtype == np.float64
        assert rows["_row_id"].dtype == np.int64

    def test_rows_examined_counts_all(self, table_and_data):
        _, table, _ = table_and_data
        _, stats = full_scan(table, predicate=Col("a") > 1e9)
        assert stats.rows_examined == 500
        assert stats.filter_efficiency == 0.0


class TestRangeScan:
    def test_range_rows(self, table_and_data):
        _, table, data = table_and_data
        rows, stats = range_scan(table, 100, 200)
        assert stats.rows_returned == 100
        assert np.allclose(rows["a"], data["a"][100:200])
        assert rows["_row_id"].tolist() == list(range(100, 200))

    def test_touches_minimal_pages(self, table_and_data):
        db, table, _ = table_and_data
        db.cold_cache()
        db.reset_io_stats()
        _, stats = range_scan(table, 64, 128)
        assert stats.pages_touched == 1
        assert db.io_stats.page_reads == 1

    def test_range_with_predicate(self, table_and_data):
        _, table, data = table_and_data
        rows, _ = range_scan(table, 0, 250, predicate=Col("a") > 0.0)
        expected = np.flatnonzero(data["a"][:250] > 0.0)
        assert np.array_equal(rows["_row_id"], expected)

    def test_empty_range(self, table_and_data):
        _, table, _ = table_and_data
        rows, stats = range_scan(table, 200, 100)
        assert stats.rows_returned == 0
        assert stats.pages_touched == 0
        assert len(rows["a"]) == 0

    def test_clamped_range(self, table_and_data):
        _, table, _ = table_and_data
        rows, _ = range_scan(table, 450, 10_000)
        assert len(rows["a"]) == 50


class TestQueryStats:
    def test_merge(self, table_and_data):
        _, table, _ = table_and_data
        _, s1 = range_scan(table, 0, 100)
        _, s2 = range_scan(table, 100, 200)
        s1.merge(s2)
        assert s1.rows_returned == 200
        assert s1.pages_touched >= 2

    def test_filter_efficiency_no_rows(self):
        from repro.db.stats import QueryStats

        assert QueryStats().filter_efficiency == 1.0
