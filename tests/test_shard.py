"""Sharded scatter-gather execution: partitioner, router, executor, k-NN.

Fast-tier coverage of the `repro.shard` subsystem: kd-subtree
partitioning invariants, shard-level Figure 4 pruning, scatter-gather
differential correctness against the single-index engine, frontier-
merged k-NN exactness, deadline propagation into shard workers, and
per-shard fault degradation to partial results.  The heavier randomized
sweeps live in test_differential.py under the ``faultsweep`` marker.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Box,
    Database,
    FaultInjector,
    FaultyStorage,
    KdPartitioner,
    KdTreeIndex,
    Polyhedron,
    QueryPlanner,
    QueryService,
    ScatterGatherExecutor,
    StorageFault,
)
from repro.db.faults import RetryPolicy
from repro.db.storage import MemoryStorage
from repro.service.errors import DeadlineExceeded
from repro.service.result_cache import query_fingerprint
from repro.shard import ShardRouter

DIMS = ["x", "y", "z"]
NUM_ROWS = 4000


def _make_data(n: int = NUM_ROWS, seed: int = 17) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    pts = np.vstack(
        [
            rng.normal([0.0, 0.0, 0.0], [0.5, 0.3, 0.6], size=(n // 2, 3)),
            rng.normal([3.0, 2.0, 1.0], [0.8, 0.5, 0.4], size=(n - n // 2, 3)),
        ]
    )
    data = {d: pts[:, i] for i, d in enumerate(DIMS)}
    data["oid"] = np.arange(n, dtype=np.int64)
    return data


def _oids(rows: dict) -> frozenset[int]:
    return frozenset(int(v) for v in rows["oid"])


@pytest.fixture(scope="module")
def shard_setup():
    """One dataset, a 4-way shard set, and an unsharded reference planner."""
    data = _make_data()
    shard_set = KdPartitioner(4, buffer_pages=None).partition("pts", data, DIMS)
    executor = ScatterGatherExecutor(shard_set)
    ref_db = Database.in_memory(buffer_pages=None)
    reference = QueryPlanner(KdTreeIndex.build(ref_db, "pts_ref", dict(data), DIMS))
    yield data, shard_set, executor, reference
    executor.close()


class TestKdPartitioner:
    def test_shards_are_disjoint_and_cover_the_table(self, shard_setup):
        data, shard_set, _, _ = shard_setup
        assert shard_set.num_shards == 4
        assert shard_set.total_rows == NUM_ROWS
        seen = np.concatenate([s.table.read_column("oid") for s in shard_set])
        assert sorted(seen.tolist()) == list(range(NUM_ROWS))

    def test_shards_are_balanced(self, shard_setup):
        # Median splits: any two shards differ by at most one row per level.
        _, shard_set, _, _ = shard_setup
        sizes = [s.num_rows for s in shard_set]
        assert max(sizes) - min(sizes) <= 2

    def test_row_offsets_are_cumulative(self, shard_setup):
        _, shard_set, _, _ = shard_setup
        offset = 0
        for shard in shard_set:
            assert shard.row_offset == offset
            offset += shard.num_rows

    def test_every_row_lies_in_both_shard_boxes(self, shard_setup):
        _, shard_set, _, _ = shard_setup
        for shard in shard_set:
            pts = np.column_stack([shard.table.read_column(d) for d in DIMS])
            for box in (shard.partition_box, shard.tight_box):
                assert np.all(pts >= box.lo - 1e-12)
                assert np.all(pts <= box.hi + 1e-12)

    def test_post_order_ranges_are_disjoint_and_ordered(self, shard_setup):
        _, shard_set, _, _ = shard_setup
        ranges = [s.post_order_range for s in shard_set]
        for (lo_a, hi_a), (lo_b, hi_b) in zip(ranges, ranges[1:]):
            assert lo_a <= hi_a < lo_b <= hi_b

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            KdPartitioner(3)
        with pytest.raises(ValueError, match="power of two"):
            KdPartitioner(0)

    def test_too_few_rows_rejected(self):
        data = _make_data(4)
        with pytest.raises(ValueError, match="rows"):
            KdPartitioner(8).partition("tiny", data, DIMS)

    def test_layout_version_tracks_the_partitioning(self, shard_setup):
        data, shard_set, _, _ = shard_setup
        again = KdPartitioner(4, buffer_pages=None).partition("pts", data, DIMS)
        assert again.layout_version == shard_set.layout_version
        other = KdPartitioner(2, buffer_pages=None).partition("pts", data, DIMS)
        assert other.layout_version != shard_set.layout_version

    def test_gather_routes_global_ids_back(self, shard_setup):
        data, shard_set, _, _ = shard_setup
        rng = np.random.default_rng(1)
        ids = rng.choice(NUM_ROWS, size=100, replace=False)
        rows = shard_set.gather(ids)
        assert np.array_equal(rows["_row_id"], ids)
        # Every gathered row's coordinates match the shard it came from.
        for i, gid in enumerate(ids):
            shard = shard_set.shard_of_row(int(gid))
            local = shard.table.gather(
                np.array([gid - shard.row_offset], dtype=np.int64)
            )
            assert local["oid"][0] == rows["oid"][i]


class TestShardRouter:
    def test_selective_box_prunes_shards(self, shard_setup):
        _, shard_set, _, _ = shard_setup
        router = ShardRouter(shard_set)
        # A small box near one cluster center cannot touch all four shards.
        poly = Polyhedron.from_box(Box.cube(np.array([0.0, 0.0, 0.0]), 0.4))
        decision = router.route_polyhedron(poly)
        assert decision.shards_pruned > 0
        assert decision.shards_dispatched + decision.shards_pruned == 4

    def test_routing_never_drops_answer_rows(self, shard_setup):
        data, shard_set, executor, reference = shard_setup
        router = ShardRouter(shard_set)
        poly = Polyhedron.from_box(Box.cube(np.array([3.0, 2.0, 1.0]), 1.0))
        decision = router.route_polyhedron(poly)
        dispatched = {s.shard_id for s, _ in decision.dispatched}
        expected = _oids(reference.execute(poly).rows)
        covered = set()
        for shard in shard_set:
            rows, _ = shard.index.query_polyhedron(poly)
            got = _oids(rows)
            if got:
                assert shard.shard_id in dispatched
            covered |= got
        assert covered == expected

    def test_partition_boxes_prune_no_worse_than_nothing(self, shard_setup):
        _, shard_set, _, _ = shard_setup
        loose = ShardRouter(shard_set, use_tight_boxes=False)
        tight = ShardRouter(shard_set, use_tight_boxes=True)
        poly = Polyhedron.from_box(Box.cube(np.array([0.0, 0.0, 0.0]), 0.6))
        assert (
            tight.route_polyhedron(poly).shards_pruned
            >= loose.route_polyhedron(poly).shards_pruned
        )

    def test_order_by_distance_starts_at_home_shard(self, shard_setup):
        _, shard_set, _, _ = shard_setup
        router = ShardRouter(shard_set, use_tight_boxes=False)
        point = np.array([0.1, -0.2, 0.3])
        ordered = router.order_by_distance(point)
        bounds = [b for b, _ in ordered]
        assert bounds == sorted(bounds)
        assert bounds[0] == 0.0  # the partition boxes tile space


class TestScatterGatherDifferential:
    @pytest.mark.parametrize(
        "center,width",
        [
            ([0.0, 0.0, 0.0], 0.8),
            ([3.0, 2.0, 1.0], 1.5),
            ([1.5, 1.0, 0.5], 6.0),
            ([9.0, 9.0, 9.0], 0.5),  # empty
        ],
    )
    def test_box_queries_match_unsharded(self, shard_setup, center, width):
        _, _, executor, reference = shard_setup
        poly = Polyhedron.from_box(Box.cube(np.array(center, dtype=float), width))
        sharded = executor.execute(poly)
        expected = reference.execute(poly)
        assert _oids(sharded.rows) == _oids(expected.rows)
        assert sharded.shards_dispatched + sharded.shards_pruned == 4
        assert not sharded.partial

    def test_halfspace_query_matches_unsharded(self, shard_setup):
        _, _, executor, reference = shard_setup
        from repro.geometry.halfspace import Halfspace

        normal = np.array([1.0, -0.5, 0.25])
        normal /= np.linalg.norm(normal)
        poly = Polyhedron(
            [Halfspace(normal, 1.0), Halfspace(-normal, 0.5)]
        )
        sharded = executor.execute(poly)
        expected = reference.execute(poly)
        assert _oids(sharded.rows) == _oids(expected.rows)

    def test_global_row_ids_resolve_through_gather(self, shard_setup):
        _, _, executor, _ = shard_setup
        poly = Polyhedron.from_box(Box.cube(np.array([0.0, 0.0, 0.0]), 1.0))
        planned = executor.execute(poly)
        fetched = executor.gather(planned.rows["_row_id"])
        assert np.array_equal(fetched["oid"], planned.rows["oid"])

    def test_selective_box_shows_pruning(self, shard_setup):
        _, _, executor, _ = shard_setup
        poly = Polyhedron.from_box(Box.cube(np.array([0.0, 0.0, 0.0]), 0.4))
        planned = executor.execute(poly)
        assert planned.shards_pruned > 0

    def test_stats_aggregate_across_shards(self, shard_setup):
        _, _, executor, _ = shard_setup
        poly = Polyhedron.from_box(Box.cube(np.array([1.5, 1.0, 0.5]), 8.0))
        planned = executor.execute(poly)
        assert planned.stats.rows_returned == len(planned.rows["_row_id"])
        assert planned.stats.pages_touched > 0
        assert sum(
            v for k, v in planned.stats.extra.items() if k.startswith("shard_path_")
        ) == planned.shards_dispatched


class TestScatterGatherKnn:
    def test_knn_matches_brute_force(self, shard_setup):
        data, shard_set, executor, _ = shard_setup
        pts = np.column_stack([data[d] for d in DIMS])
        rng = np.random.default_rng(23)
        for _ in range(5):
            point = rng.uniform([-1, -1, -1], [4, 3, 2])
            k = int(rng.integers(1, 25))
            result = executor.knn(point, k)
            dist = np.sqrt(((pts - point) ** 2).sum(axis=1))
            order = np.argsort(dist, kind="stable")[:k]
            expected_oids = set(data["oid"][order].tolist())
            got_oids = set(
                shard_set.gather(result.row_ids)["oid"].tolist()
            )
            assert got_oids == expected_oids
            assert np.allclose(result.distances, dist[order])
            assert not result.partial

    def test_knn_prunes_far_shards(self, shard_setup):
        data, _, executor, _ = shard_setup
        # Deep inside one cluster, tiny k: distant shards cannot compete.
        result = executor.knn(np.array([0.0, 0.0, 0.0]), 3)
        assert result.shards_pruned > 0
        assert result.shards_dispatched + result.shards_pruned == 4

    def test_k_larger_than_table_returns_everything(self, shard_setup):
        _, shard_set, executor, _ = shard_setup
        result = executor.knn(np.zeros(3), NUM_ROWS + 10)
        assert result.k == NUM_ROWS
        assert np.all(np.diff(result.distances) >= 0)

    def test_invalid_k_rejected(self, shard_setup):
        _, _, executor, _ = shard_setup
        with pytest.raises(ValueError):
            executor.knn(np.zeros(3), 0)


class TestCancellation:
    def test_deadline_raised_inside_shard_workers_propagates(self, shard_setup):
        _, _, executor, _ = shard_setup
        calls = {"n": 0}

        def check():
            # Let routing and dispatch happen, then expire mid-scan.
            calls["n"] += 1
            if calls["n"] > 3:
                raise DeadlineExceeded("budget spent")

        poly = Polyhedron.from_box(Box.cube(np.array([1.5, 1.0, 0.5]), 8.0))
        with pytest.raises(DeadlineExceeded):
            executor.execute(poly, cancel_check=check)
        # The executor stays usable after an aborted query.
        assert not executor.execute(poly).partial

    def test_expired_deadline_stops_knn(self, shard_setup):
        _, _, executor, _ = shard_setup

        def expired():
            raise DeadlineExceeded("budget spent")

        with pytest.raises(DeadlineExceeded):
            executor.knn(np.zeros(3), 5, cancel_check=expired)


def _faulty_shard_setup(fault_shard: int = 0):
    """A 4-way shard set where one shard's storage can be made to fail."""
    data = _make_data(seed=29)
    injector = FaultInjector(seed=5)
    fast_retry = RetryPolicy(attempts=2, backoff_s=0.0)

    def factory(shard_id: int) -> Database:
        if shard_id == fault_shard:
            return Database(
                FaultyStorage(MemoryStorage(), injector),
                buffer_pages=None,
                retry=fast_retry,
            )
        return Database.in_memory(buffer_pages=None)

    shard_set = KdPartitioner(4, database_factory=factory).partition(
        "faulty", data, DIMS
    )
    return data, shard_set, injector


class TestShardFaultDegradation:
    def test_one_dead_shard_degrades_to_partial(self):
        data, shard_set, injector = _faulty_shard_setup(fault_shard=0)
        executor = ScatterGatherExecutor(shard_set)
        poly = Polyhedron.from_box(Box.cube(np.array([1.5, 1.0, 0.5]), 10.0))
        intact = executor.execute(poly)
        assert not intact.partial

        # Kill shard 0: flush its cache so reads hit storage, then burst
        # past every retry and the planner's own scan fallback.
        shard_set[0].database.cold_cache()
        injector.fail_next_reads(100_000)
        degraded = executor.execute(poly)
        assert degraded.partial
        assert degraded.failed_shards == (0,)
        assert degraded.shard_faults == 1
        survivor_oids = frozenset(
            int(v)
            for shard in list(shard_set)[1:]
            for v in shard.table.read_column("oid")
        )
        assert _oids(degraded.rows) == _oids(intact.rows) & survivor_oids

        # Faults cleared: the next run is whole again.
        injector.quiesce()
        recovered = executor.execute(poly)
        assert not recovered.partial
        assert _oids(recovered.rows) == _oids(intact.rows)
        executor.close()

    def test_all_shards_dead_raises(self):
        data = _make_data(seed=31)
        injector = FaultInjector(seed=7)
        fast_retry = RetryPolicy(attempts=2, backoff_s=0.0)
        shard_set = KdPartitioner(
            2,
            database_factory=lambda j: Database(
                FaultyStorage(MemoryStorage(), injector),
                buffer_pages=None,
                retry=fast_retry,
            ),
        ).partition("doomed", data, DIMS)
        executor = ScatterGatherExecutor(shard_set)
        for shard in shard_set:
            shard.database.cold_cache()
        injector.fail_next_reads(1_000_000)
        poly = Polyhedron.from_box(Box.cube(np.array([1.5, 1.0, 0.5]), 10.0))
        with pytest.raises(StorageFault):
            executor.execute(poly)
        executor.close()

    def test_knn_survives_a_dead_shard(self):
        data, shard_set, injector = _faulty_shard_setup(fault_shard=1)
        executor = ScatterGatherExecutor(shard_set)
        point = np.array([1.5, 1.0, 0.5])
        intact = executor.knn(point, 10)

        shard_set[1].database.cold_cache()
        injector.fail_next_reads(100_000)
        degraded = executor.knn(point, 10)
        assert degraded.partial
        assert degraded.failed_shards == (1,)
        # The survivors' answer is the brute-force top-k over their rows.
        survivors = [s for s in shard_set if s.shard_id != 1]
        pts = np.vstack(
            [np.column_stack([s.table.read_column(d) for d in DIMS]) for s in survivors]
        )
        oids = np.concatenate([s.table.read_column("oid") for s in survivors])
        dist = np.sqrt(((pts - point) ** 2).sum(axis=1))
        order = np.argsort(dist, kind="stable")[:10]
        got = set(shard_set.gather(degraded.row_ids)["oid"].tolist())
        assert got == set(oids[order].tolist())
        assert intact.k == degraded.k == 10
        executor.close()


class TestServiceIntegration:
    def test_service_runs_sharded_engine_with_metrics(self, shard_setup):
        _, shard_set, _, reference = shard_setup
        engine = ScatterGatherExecutor(shard_set)
        poly = Polyhedron.from_box(Box.cube(np.array([0.0, 0.0, 0.0]), 0.8))
        with QueryService(None, engine, workers=2) as service:
            outcome = service.execute(poly)
            assert _oids(outcome.rows) == _oids(reference.execute(poly).rows)
            assert outcome.metrics.shards_pruned > 0
            assert outcome.chosen_path == "sharded"
            # Same query again: served from cache, no new shard work.
            again = service.execute(poly)
            assert again.cache_hit
            summary = service.metrics.summary()
            assert summary["shards_pruned"] > 0
            report = service.report()
            assert report["engine"]["queries"] >= 1
            assert "shards pruned" not in ""  # guard against typo'd keys
            assert "shards dispatched" in service.metrics.format_report()
        engine.close()

    def test_partial_results_are_not_cached(self):
        data, shard_set, injector = _faulty_shard_setup(fault_shard=0)
        engine = ScatterGatherExecutor(shard_set)
        poly = Polyhedron.from_box(Box.cube(np.array([1.5, 1.0, 0.5]), 10.0))
        with QueryService(None, engine, workers=2) as service:
            shard_set[0].database.cold_cache()
            injector.fail_next_reads(100_000)
            degraded = service.execute(poly)
            assert degraded.partial
            assert degraded.failed_shards == (0,)
            injector.quiesce()
            # A cached partial answer would repeat the hole; instead the
            # repeat recomputes and comes back whole.
            recovered = service.execute(poly)
            assert not recovered.cache_hit
            assert not recovered.partial
            assert _oids(recovered.rows) > _oids(degraded.rows)
            third = service.execute(poly)
            assert third.cache_hit
        engine.close()

    def test_deadline_propagates_through_service(self, shard_setup):
        _, shard_set, _, _ = shard_setup
        engine = ScatterGatherExecutor(shard_set)
        poly = Polyhedron.from_box(Box.cube(np.array([1.5, 1.0, 0.5]), 8.0))
        with QueryService(None, engine, workers=2, cache_entries=0) as service:
            with pytest.raises(DeadlineExceeded):
                service.execute(poly, deadline=0.0)
            summary = service.metrics.summary()
            assert summary["deadline_misses"] == 1.0
        engine.close()


class TestLayoutFingerprinting:
    def test_fingerprint_depends_on_layout_version(self):
        poly = Polyhedron.from_box(Box.cube(np.zeros(3), 1.0))
        base = query_fingerprint("t", DIMS, poly, layout_version="kd4:aaaa")
        other = query_fingerprint("t", DIMS, poly, layout_version="kd8:bbbb")
        unsharded = query_fingerprint("t", DIMS, poly, layout_version="unsharded")
        assert len({base, other, unsharded}) == 3

    def test_repartitioning_misses_the_old_cache_entries(self):
        data = _make_data(seed=41)
        poly = Polyhedron.from_box(Box.cube(np.array([1.5, 1.0, 0.5]), 4.0))
        four = ScatterGatherExecutor(
            KdPartitioner(4, buffer_pages=None).partition("pts", data, DIMS)
        )
        two = ScatterGatherExecutor(
            KdPartitioner(2, buffer_pages=None).partition("pts", data, DIMS)
        )
        with QueryService(None, four, workers=1) as service:
            service.execute(poly)
            assert service.cache is not None and service.cache.insertions == 1
            # Swap in a repartitioned engine behind the same service/cache.
            service.planner = two
            swapped = service.execute(poly)
            assert not swapped.cache_hit  # different layout_version, new key
        four.close()
        two.close()
