"""Tests for projections, histogram statistics, and the WHERE parser."""

import numpy as np
import pytest

from repro import Col, Database, QueryWorkload, parse_where, sdss_color_sample
from repro.db import (
    ColumnHistogram,
    HistogramStatistics,
    ProjectionSet,
    SqlParseError,
    create_projection,
)
from repro.db.expressions import expression_to_sql
from repro.geometry import Box, Polyhedron


@pytest.fixture(scope="module")
def wide_table():
    rng = np.random.default_rng(0)
    sample = sdss_color_sample(5000, seed=1)
    db = Database.in_memory(buffer_pages=None)
    data = dict(sample.columns())
    data["extra"] = rng.normal(size=5000)
    table = db.create_table("wide", data)
    return db, table, sample


class TestProjections:
    def test_projection_is_narrower(self, wide_table):
        db, table, _ = wide_table
        narrow = create_projection(db, table, "p_gr", ["g", "r"])
        assert narrow.num_pages < table.num_pages
        assert narrow.column_names == ["g", "r"]

    def test_projection_values_match(self, wide_table):
        db, table, sample = wide_table
        narrow = create_projection(db, table, "p_u", ["u"])
        assert np.allclose(narrow.read_column("u"), table.read_column("u"))

    def test_projection_row_ids_align(self, wide_table):
        db, table, _ = wide_table
        narrow = create_projection(db, table, "p_ri", ["r", "i"])
        wanted = np.array([0, 100, 4999])
        assert np.allclose(
            narrow.gather(wanted)["r"], table.gather(wanted)["r"]
        )

    def test_projection_unknown_column(self, wide_table):
        db, table, _ = wide_table
        with pytest.raises(KeyError):
            create_projection(db, table, "p_bad", ["ghost"])

    def test_projection_reclustered(self, wide_table):
        db, table, _ = wide_table
        narrow = create_projection(
            db, table, "p_sorted", ["z"], clustered_by=("z",)
        )
        assert (np.diff(narrow.read_column("z")) >= 0).all()

    def test_routing_prefers_narrowest(self, wide_table):
        db, table, _ = wide_table
        ps = ProjectionSet(table)
        ps.add(create_projection(db, table, "p_route_ugr", ["u", "g", "r"]))
        ps.add(create_projection(db, table, "p_route_g", ["g"]))
        assert ps.route({"g"}).name == "p_route_g"
        assert ps.route({"u", "g"}).name == "p_route_ugr"
        assert ps.route({"extra"}).name == "wide"

    def test_routing_rejects_unknown(self, wide_table):
        _, table, _ = wide_table
        ps = ProjectionSet(table)
        with pytest.raises(KeyError):
            ps.route({"ghost"})

    def test_scan_through_projection_saves_pages(self, wide_table):
        db, table, sample = wide_table
        ps = ProjectionSet(table)
        ps.add(create_projection(db, table, "p_scan_gr", ["g", "r"]))
        rows, stats, used = ps.scan((Col("g") - Col("r")) > 1.2)
        assert used == "p_scan_gr"
        truth = (sample.magnitudes[:, 1] - sample.magnitudes[:, 2]) > 1.2
        assert stats.rows_returned == int(truth.sum())
        assert stats.pages_touched < table.num_pages

    def test_row_count_mismatch_rejected(self, wide_table):
        db, table, _ = wide_table
        other = db.create_table("short", {"g": np.zeros(3)})
        ps = ProjectionSet(table)
        with pytest.raises(ValueError):
            ps.add(other)


class TestColumnHistogram:
    def test_equi_depth_buckets(self):
        rng = np.random.default_rng(2)
        values = rng.exponential(size=10_000)  # skewed
        hist = ColumnHistogram(values, num_buckets=16)
        # Every bucket holds ~1/16 of the mass by construction.
        for i in range(16):
            frac = hist.selectivity_range(hist.edges[i], hist.edges[i + 1])
            assert abs(frac - 1.0 / 16.0) < 0.01

    def test_below_extremes(self):
        hist = ColumnHistogram(np.arange(100.0))
        assert hist.selectivity_below(-1.0) == 0.0
        assert hist.selectivity_below(1000.0) == 1.0

    def test_range_estimates_uniform(self):
        values = np.linspace(0, 1, 10_001)
        hist = ColumnHistogram(values, num_buckets=20)
        assert abs(hist.selectivity_range(0.2, 0.5) - 0.3) < 0.02

    def test_inverted_range(self):
        hist = ColumnHistogram(np.arange(10.0))
        assert hist.selectivity_range(5.0, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ColumnHistogram(np.array([]))
        with pytest.raises(ValueError):
            ColumnHistogram(np.arange(5.0), num_buckets=0)


class TestHistogramStatistics:
    def test_axis_aligned_box_estimate(self, wide_table):
        _, table, sample = wide_table
        stats = HistogramStatistics(table, ["u", "g", "r", "i", "z"])
        # A box on one axis: independence is exact here.
        r = sample.magnitudes[:, 2]
        lo, hi = np.quantile(r, [0.3, 0.6])
        box = Box(
            np.array([-1e9, -1e9, lo, -1e9, -1e9]),
            np.array([1e9, 1e9, hi, 1e9, 1e9]),
        )
        estimate = stats.estimate_polyhedron(Polyhedron.from_box(box))
        truth = ((r >= lo) & (r <= hi)).mean()
        assert abs(estimate - truth) < 0.05

    def test_correlated_box_overestimates(self, wide_table):
        # The independence assumption's documented failure: on correlated
        # columns the joint estimate is biased (usually up for boxes that
        # follow the correlation, down for those across it).
        _, table, sample = wide_table
        stats = HistogramStatistics(table, ["u", "g", "r", "i", "z"])
        workload = QueryWorkload(sample.magnitudes, seed=3)
        errors = []
        for _ in range(6):
            poly = workload.box_query(0.01).polyhedron(["u", "g", "r", "i", "z"])
            estimate = stats.estimate_polyhedron(poly)
            truth = poly.contains_points(sample.magnitudes).mean()
            errors.append(abs(estimate - truth))
        # Estimates exist and are in range, but not exact (that is the point).
        assert all(0.0 <= e <= 1.0 for e in errors)

    def test_dim_check(self, wide_table):
        _, table, _ = wide_table
        stats = HistogramStatistics(table, ["u", "g"])
        with pytest.raises(ValueError):
            stats.estimate_polyhedron(Polyhedron.from_box(Box.unit(3)))


class TestParseWhere:
    def test_simple_comparison(self):
        expr = parse_where("g < 20.5")
        mask = expr.evaluate({"g": np.array([19.0, 21.0])})
        assert mask.tolist() == [True, False]

    def test_arithmetic_precedence(self):
        expr = parse_where("a + b * 2 < 10")
        result = expr.evaluate({"a": np.array([1.0]), "b": np.array([4.0])})
        assert result.tolist() == [True]  # 1 + 8 < 10

    def test_parentheses(self):
        expr = parse_where("(a + b) * 2 < 10")
        result = expr.evaluate({"a": np.array([1.0]), "b": np.array([4.0])})
        assert result.tolist() == [False]  # 10 < 10

    def test_unary_minus(self):
        expr = parse_where("u < -1.5")
        mask = expr.evaluate({"u": np.array([-2.0, 0.0])})
        assert mask.tolist() == [True, False]

    def test_keywords_case_insensitive(self):
        expr = parse_where("a < 1 AND b > 2 or NOT (c < 3)")
        cols = {
            "a": np.array([0.0]),
            "b": np.array([0.0]),
            "c": np.array([5.0]),
        }
        assert expr.evaluate(cols).tolist() == [True]

    def test_scientific_notation(self):
        expr = parse_where("x < 1.5e2")
        assert expr.evaluate({"x": np.array([100.0, 200.0])}).tolist() == [True, False]

    def test_roundtrip_rendered_sql(self):
        original = ((Col("g") - Col("r")) / 4.0 < 0.2) & ~(Col("u") >= 1.0)
        text = expression_to_sql(original)
        reparsed = parse_where(text)
        rng = np.random.default_rng(4)
        cols = {name: rng.normal(size=100) for name in ("g", "r", "u")}
        assert np.array_equal(reparsed.evaluate(cols), original.evaluate(cols))

    def test_figure2_clause_parses(self, wide_table):
        _, _, sample = wide_table
        workload = QueryWorkload(sample.magnitudes, seed=5)
        query = workload.figure2_query()
        reparsed = parse_where(query.sql())
        cols = {b: sample.magnitudes[:, i] for i, b in enumerate("ugriz")}
        assert np.array_equal(
            reparsed.evaluate(cols), query.expression.evaluate(cols)
        )

    def test_parse_errors(self):
        for bad in ("", "a <", "a < 1 )", "( a < 1", "a ? 1", "1 2"):
            with pytest.raises(SqlParseError):
                parse_where(bad)

    def test_trailing_garbage(self):
        with pytest.raises(SqlParseError):
            parse_where("a < 1 b")


class TestPlannerWithStatistics:
    def test_histogram_backed_planning_is_io_free(self, wide_table):
        from repro import KdTreeIndex, QueryPlanner

        db, table, sample = wide_table
        columns = table.read_columns(["u", "g", "r", "i", "z"])
        index = KdTreeIndex.build(db, "plan_hist_kd", columns, ["u", "g", "r", "i", "z"])
        stats = HistogramStatistics(index.table, ["u", "g", "r", "i", "z"])
        planner = QueryPlanner(index, statistics=stats)
        workload = QueryWorkload(sample.magnitudes, seed=8)
        poly = workload.box_query(0.01).polyhedron(["u", "g", "r", "i", "z"])
        db.cold_cache()
        db.reset_io_stats()
        estimate, probed = planner.estimate_selectivity(poly)
        assert probed == 0
        assert db.io_stats.page_reads == 0  # zero plan-time I/O
        result = planner.execute(poly)
        expected = int(poly.contains_points(sample.magnitudes).sum())
        assert result.stats.rows_returned == expected
