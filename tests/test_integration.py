"""End-to-end integration tests crossing subsystem boundaries."""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro import (
    Box,
    DelaunayGraph,
    Database,
    KdTreeIndex,
    LayeredGridIndex,
    PrincipalComponents,
    QueryWorkload,
    SpectrumTemplates,
    VoronoiIndex,
    basin_spanning_tree,
    cluster_class_agreement,
    clusters_from_parents,
    density_from_volumes,
    knn_boundary_points,
    knn_brute_force,
    merge_small_clusters,
    polyhedron_full_scan,
    retrieval_precision,
    sdss_color_sample,
    voronoi_volume_estimates,
)

BANDS = ["u", "g", "r", "i", "z"]


@pytest.fixture(scope="module")
def sdss_db():
    """A database holding the SDSS sample under all three indexes."""
    sample = sdss_color_sample(15_000, seed=23)
    db = Database.in_memory(buffer_pages=None)
    kd = KdTreeIndex.build(db, "mag_kd", sample.columns(), BANDS)
    vor = VoronoiIndex.build(db, "mag_vor", sample.columns(), BANDS, num_seeds=300)
    grid = LayeredGridIndex.build(db, "mag_grid", sample.columns(), BANDS, base=512)
    return sample, db, kd, vor, grid


class TestWorkloadOverIndexes:
    def test_all_indexes_agree_on_generated_queries(self, sdss_db):
        sample, _, kd, vor, _ = sdss_db
        workload = QueryWorkload(sample.magnitudes, seed=1)
        for query in workload.mixed(6, [0.02, 0.1]):
            poly = query.polyhedron(BANDS)
            expected = int(poly.contains_points(sample.magnitudes).sum())
            _, kd_stats = kd.query_polyhedron(poly)
            _, vor_stats = vor.query_polyhedron(poly)
            _, scan_stats = polyhedron_full_scan(kd.table, BANDS, poly)
            assert kd_stats.rows_returned == expected
            assert vor_stats.rows_returned == expected
            assert scan_stats.rows_returned == expected

    def test_figure2_query_runs_through_index(self, sdss_db):
        sample, _, kd, _, _ = sdss_db
        workload = QueryWorkload(sample.magnitudes, seed=2)
        poly = workload.figure2_query().polyhedron(BANDS)
        rows, stats = kd.query_polyhedron(poly)
        expected = int(poly.contains_points(sample.magnitudes).sum())
        assert stats.rows_returned == expected

    def test_selective_queries_save_pages(self, sdss_db):
        sample, _, kd, _, _ = sdss_db
        workload = QueryWorkload(sample.magnitudes, seed=3)
        ratios = []
        for _ in range(5):
            poly = workload.box_query(0.01).polyhedron(BANDS)
            _, kd_stats = kd.query_polyhedron(poly)
            # Zone maps off: the baseline here is the naive scan that
            # touches every page, as in Figure 5.
            _, scan_stats = polyhedron_full_scan(
                kd.table, BANDS, poly, use_zone_maps=False
            )
            ratios.append(kd_stats.pages_touched / scan_stats.pages_touched)
        # Selective window queries read a small fraction of the pages.
        assert np.median(ratios) < 0.5


class TestKnnIn5d:
    def test_boundary_knn_in_5d(self, sdss_db):
        sample, _, kd, vor, _ = sdss_db
        rng = np.random.default_rng(4)
        for _ in range(5):
            query = sample.magnitudes[rng.integers(len(sample.magnitudes))]
            query = query + rng.normal(0, 0.05, 5)
            truth = knn_brute_force(kd.table, BANDS, query, 8)
            bp = knn_boundary_points(kd, query, 8)
            vk = vor.knn(query, 8)
            assert np.allclose(bp.distances, truth.distances)
            assert np.allclose(vk.distances, truth.distances)


class TestGridSamplingOfSdss:
    def test_sample_respects_class_mixture(self, sdss_db):
        # The layered grid sample should follow the underlying
        # distribution: class fractions close to the full table's.
        sample, _, _, _, grid = sdss_db
        box = Box.from_points(sample.magnitudes, pad=0.1)
        result = grid.sample_box(box, 2000)
        rows = grid.table.gather(result.row_ids)
        sampled_fracs = np.bincount(rows["cls"], minlength=4) / len(result.row_ids)
        true_fracs = np.bincount(sample.labels, minlength=4) / sample.num_points
        assert np.abs(sampled_fracs - true_fracs).max() < 0.05


class TestBstOnSdss:
    def test_classification_agreement(self, sdss_db):
        # E7's shape at test scale: BST clusters from Voronoi densities
        # agree with spectral classes well above chance.  Clustering runs
        # in the whitened *color* space -- class structure lives in the
        # colors, while overall brightness is a class-independent nuisance
        # axis (Figure 1 plots colors for the same reason).
        from repro import Whitener

        sample, _, _, _, _ = sdss_db
        colors = Whitener(mode="std").fit_transform(sample.colors())
        rng = np.random.default_rng(0)
        seeds_idx = rng.choice(len(colors), 600, replace=False)
        graph = DelaunayGraph(colors[seeds_idx])
        volumes = voronoi_volume_estimates(graph)
        _, assign = cKDTree(colors[seeds_idx]).query(colors)
        counts = np.bincount(assign, minlength=600)
        densities = density_from_volumes(volumes, counts)
        parents = basin_spanning_tree(densities, graph.neighbors)
        labels = clusters_from_parents(parents)
        labels = merge_small_clusters(labels, densities, graph.neighbors, min_size=3)
        point_clusters = labels[assign]
        # Score against star/galaxy/quasar only (outliers are noise).
        keep = sample.labels != 3
        agreement = cluster_class_agreement(
            point_clusters[keep], sample.labels[keep]
        )
        assert agreement > 0.8


class TestSpectralSimilarity:
    def test_pca_knn_retrieval(self):
        # E9's shape at test scale: PCA features + kd-tree k-NN retrieve
        # same-class spectra.
        rng = np.random.default_rng(31)
        templates = SpectrumTemplates()
        spectra, classes = [], []
        for _ in range(90):
            z = rng.uniform(0.0, 0.3)
            spectra.append(templates.observe(templates.galaxy_blend(rng.uniform(0, 0.2), z), 40, rng))
            classes.append(0)
            spectra.append(templates.observe(templates.galaxy_blend(rng.uniform(0.8, 1.0), z), 40, rng))
            classes.append(1)
            spectra.append(templates.observe(templates.quasar(z), 40, rng))
            classes.append(2)
        spectra = np.array(spectra)
        classes = np.array(classes)

        pca = PrincipalComponents(5)
        features = pca.fit_transform(spectra)
        db = Database.in_memory(buffer_pages=None)
        data = {f"pc{i}": features[:, i] for i in range(5)}
        data["cls"] = classes
        index = KdTreeIndex.build(
            db, "spectra", data, [f"pc{i}" for i in range(5)], num_levels=4
        )
        retrieved = []
        for row in range(0, len(features), 9):
            result = knn_boundary_points(index, features[row], 3)
            got = index.table.gather(result.row_ids)["cls"]
            # Drop the query itself (distance zero).
            retrieved.append(got[1:3])
        precision = retrieval_precision(classes[::9], np.array(retrieved))
        assert precision > 0.85


class TestStoredProcedureSurface:
    def test_procedures_wrap_index_operations(self, sdss_db):
        sample, db, kd, vor, grid = sdss_db

        def sp_get_nearest(database, point, k):
            index = database.index("mag_kd.kdtree")
            return knn_boundary_points(index, np.asarray(point), k)

        db.procedures.register("spGetNearestNeighbors", sp_get_nearest)
        result = db.procedures.call(
            "spGetNearestNeighbors", sample.magnitudes[0], 5
        )
        assert result.k == 5
        assert np.isclose(result.distances[0], 0.0)

    def test_catalog_has_all_indexes(self, sdss_db):
        _, db, _, _, _ = sdss_db
        names = db.index_names()
        assert "mag_kd.kdtree" in names
        assert "mag_vor.voronoi" in names
        assert "mag_grid.layered_grid" in names


class TestOutOfCore:
    def test_file_backed_database_end_to_end(self, tmp_path):
        # The out-of-core story: a small buffer pool over real files.
        sample = sdss_color_sample(4000, seed=5)
        db = Database.on_disk(tmp_path / "sdss", buffer_pages=8)
        kd = KdTreeIndex.build(db, "mag", sample.columns(), BANDS, num_levels=5)
        db.cold_cache()
        db.reset_io_stats()
        workload = QueryWorkload(sample.magnitudes, seed=6)
        poly = workload.color_cut_query(0.02).polyhedron(BANDS)
        _, stats = kd.query_polyhedron(poly)
        expected = int(poly.contains_points(sample.magnitudes).sum())
        assert stats.rows_returned == expected
        assert db.io_stats.page_reads > 0  # actually hit the disk
        # Data pages at most once each, plus the paged kd-tree's node
        # pages (also at most once each on a cold run).
        index_pages = db.storage.num_pages(kd.tree.namespace)
        assert index_pages > 0
        assert db.io_stats.page_reads <= kd.table.num_pages + index_pages
