"""Queries against a moving layout: concurrency-8 replay under churn.

The serving-layer half of the write-path story: while a background
writer ingests, deletes, and merges, every concurrently executing query
must return the answer of *some committed layout* -- never a torn view
mixing two layouts, and never a stale cache entry from a layout that no
longer exists.  The committed-state oracle is a list of live-oid sets
appended after every atomic mutation; a query result that matches none
of them would be a linearizability violation.
"""

from __future__ import annotations

import threading

import numpy as np

import pytest

from repro import (
    Box,
    Database,
    KdTreeIndex,
    Polyhedron,
    QueryPlanner,
    full_scan,
)
from repro.db.errors import StaleLayoutError
from repro.service import QueryService, replay_workload

DIMS = ["x", "y", "z"]
NUM_ROWS = 2000


def _build():
    rng = np.random.default_rng(90)
    pts = rng.uniform(0.0, 10.0, size=(NUM_ROWS, 3))
    data = {d: pts[:, i] for i, d in enumerate(DIMS)}
    data["oid"] = np.arange(NUM_ROWS, dtype=np.int64)
    db = Database.in_memory(buffer_pages=None)
    index = KdTreeIndex.build(db, "t", data, DIMS)
    planner = QueryPlanner(index, seed=90)
    points = {int(o): pts[o] for o in range(NUM_ROWS)}
    return db, planner, points


class TestReplayUnderChurn:
    def test_concurrency8_replay_sees_only_committed_layouts(self):
        db, planner, points = _build()
        states: list[frozenset[int]] = [frozenset(points)]
        states_lock = threading.Lock()
        writer_errors: list[BaseException] = []

        def writer() -> None:
            # Each insert batch and each delete set is one atomic delta
            # mutation; the committed-state list mirrors that atomicity.
            try:
                rng = np.random.default_rng(91)
                next_oid = NUM_ROWS
                live = set(points)
                for round_no in range(10):
                    table = db.table("t")
                    pts_new = rng.uniform(0.0, 10.0, size=(25, 3))
                    batch = {d: pts_new[:, i] for i, d in enumerate(DIMS)}
                    oids = np.arange(next_oid, next_oid + 25, dtype=np.int64)
                    batch["oid"] = oids
                    table.insert_rows(batch)
                    for j, oid in enumerate(oids):
                        points[int(oid)] = pts_new[j]
                    live.update(int(o) for o in oids)
                    next_oid += 25
                    with states_lock:
                        states.append(frozenset(live))

                    rows, _ = full_scan(table, columns=["oid"])
                    victims = np.random.default_rng(round_no).choice(
                        len(rows["oid"]), size=15, replace=False
                    )
                    table.delete_rows(rows["_row_id"][victims])
                    live.difference_update(int(o) for o in rows["oid"][victims])
                    with states_lock:
                        states.append(frozenset(live))

                    if round_no % 3 == 2:
                        db.ingest.merge("t")  # live set unchanged
            except BaseException as exc:  # surfaced by the main thread
                writer_errors.append(exc)

        boxes = [
            Box(np.full(3, -1.0), np.full(3, 11.0)),  # everything
            Box(np.full(3, 2.0), np.full(3, 8.0)),
            Box(np.array([0.0, 3.0, 1.0]), np.array([6.0, 9.0, 7.0])),
            Box(np.full(3, 4.0), np.full(3, 6.0)),
        ]
        queries = [Polyhedron.from_box(boxes[i % 4]) for i in range(96)]

        service = QueryService(db, planner, workers=8, queue_depth=64)
        thread = threading.Thread(target=writer, name="churn-writer")
        with service:
            thread.start()
            report = replay_workload(service, queries, concurrency=8)
            thread.join(timeout=60.0)

        assert not thread.is_alive()
        assert writer_errors == []
        assert report.errors == []
        assert report.completed == len(queries)

        # Every result must be the exact answer of one committed state.
        for idx in range(len(queries)):
            box = boxes[idx % 4]
            got = frozenset(int(v) for v in report.rows(idx)["oid"])
            matched = any(
                got
                == frozenset(
                    oid for oid in state if box.contains_points(
                        points[oid][None, :]
                    )[0]
                )
                for state in states
            )
            assert matched, f"query {idx} returned a layout that never existed"

    def test_result_cache_never_serves_across_a_layout_change(self):
        # The fingerprint regression: the cache key folds in
        # ``layout_version``, so a write or merge makes a stale hit
        # impossible -- the service must re-execute, not replay bytes
        # computed against a dead layout.
        db, planner, points = _build()
        poly = Polyhedron.from_box(Box(np.full(3, 4.0), np.full(3, 6.0)))
        versions = [planner.layout_version]

        service = QueryService(db, planner, workers=2, queue_depth=8)
        with service:
            first = service.execute(poly)
            warm = service.execute(poly)
            assert not first.cache_hit
            assert warm.cache_hit  # unchanged layout: byte-identical replay

            inserted = db.table("t").insert_rows(
                {
                    "x": np.array([5.0]), "y": np.array([5.0]),
                    "z": np.array([5.0]),
                    "oid": np.array([NUM_ROWS], dtype=np.int64),
                }
            )
            versions.append(planner.layout_version)
            after_insert = service.execute(poly)
            assert not after_insert.cache_hit
            assert NUM_ROWS in set(int(v) for v in after_insert.rows["oid"])

            db.ingest.merge("t")
            versions.append(planner.layout_version)
            after_merge = service.execute(poly)
            assert not after_merge.cache_hit
            assert set(int(v) for v in after_merge.rows["oid"]) == set(
                int(v) for v in after_insert.rows["oid"]
            )

            db.table("t").delete_rows(np.atleast_1d(np.asarray(
                after_merge.rows["_row_id"][
                    after_merge.rows["oid"] == NUM_ROWS
                ]
            )))
            versions.append(planner.layout_version)
            after_delete = service.execute(poly)
            assert not after_delete.cache_hit
            assert NUM_ROWS not in set(int(v) for v in after_delete.rows["oid"])

            steady = service.execute(poly)
            assert steady.cache_hit  # caching itself still works

            # The report exposes the layout the cache fingerprints against.
            assert service.report()["layout_version"] == planner.layout_version

        # Four distinct layouts -> four distinct fingerprint components.
        assert len(set(versions)) == len(versions)


class TestStaleLayoutContract:
    """The error-translation contract behind the replay guarantee.

    A reader that captured a table object sees its pages vanish when two
    later merges retire the generation; the raw backend error must come
    back as :class:`StaleLayoutError` (telling the reader to re-resolve
    and re-run), while a genuinely missing page of a *live* table must
    keep raising the backend's own error -- translation never masks data
    loss.
    """

    def _churn(self, db, next_oid):
        db.table("t").insert_rows(
            {
                "x": np.array([1.0]), "y": np.array([1.0]),
                "z": np.array([1.0]),
                "oid": np.array([next_oid], dtype=np.int64),
            }
        )

    def test_read_after_double_merge_raises_stale_layout(self):
        db, planner, _ = _build()
        stale = db.table("t")  # captured before any merge
        self._churn(db, NUM_ROWS)
        db.ingest.merge("t")  # retirement grace keeps gen-0 pages
        assert stale.read_page(0) is not None
        self._churn(db, NUM_ROWS + 1)
        db.ingest.merge("t")  # second merge drops them
        with pytest.raises(StaleLayoutError, match="retired"):
            stale.read_page(0)
        # The planner never sees the stale object: it re-resolves.
        poly = Polyhedron.from_box(Box(np.full(3, -1.0), np.full(3, 11.0)))
        assert len(planner.execute(poly).rows["oid"]) == NUM_ROWS + 2

    def test_missing_page_of_a_live_table_is_not_translated(self):
        db, _, _ = _build()
        table = db.table("t")
        db.cold_cache()
        db.storage.drop_namespace(table.physical_name)
        with pytest.raises(KeyError):
            table.read_page(0)
