"""Unit tests for the concurrent query service's building blocks."""

import threading
import time

import numpy as np
import pytest

from repro import Database, KdTreeIndex, QueryPlanner, sdss_color_sample
from repro.datasets import QueryWorkload
from repro.geometry import Box, Polyhedron
from repro.geometry.halfspace import Halfspace
from repro.service import (
    AdmissionQueue,
    AdmissionRejected,
    Deadline,
    DeadlineExceeded,
    MetricsRegistry,
    QueryMetrics,
    QueryService,
    ResultCache,
    ServiceClosed,
    SessionManager,
    query_fingerprint,
)

BANDS = ["u", "g", "r", "i", "z"]


@pytest.fixture(scope="module")
def served():
    sample = sdss_color_sample(4000, seed=3)
    db = Database.in_memory(buffer_pages=512)
    index = KdTreeIndex.build(db, "mag", sample.columns(), BANDS)
    planner = QueryPlanner(index, seed=3)
    workload = QueryWorkload(sample.magnitudes, seed=3)
    return db, index, planner, workload


class TestSessions:
    def test_ids_are_unique_and_stats_accumulate(self):
        manager = SessionManager()
        a, b = manager.open("alice"), manager.open()
        assert a.session_id != b.session_id
        assert manager.get(a.session_id) is a
        a.note_submitted()
        a.note_completed(rows_returned=5, queue_wait_s=0.1, exec_time_s=0.2, cache_hit=True)
        a.note_failed(deadline_missed=True)
        snap = a.snapshot()
        assert snap.submitted == 1
        assert snap.completed == 1
        assert snap.rows_returned == 5
        assert snap.cache_hits == 1
        assert snap.deadline_misses == 1
        assert len(manager) == 2
        manager.close(b.session_id)
        assert len(manager) == 1

    def test_unknown_session_raises(self):
        with pytest.raises(KeyError):
            SessionManager().get("nope")


class TestAdmissionQueue:
    def test_bounded_offer_and_counters(self):
        queue = AdmissionQueue(depth=2)
        assert queue.offer("a") and queue.offer("b")
        assert not queue.offer("c")  # full: explicit backpressure
        counters = queue.counters()
        assert counters["admitted"] == 2
        assert counters["rejected"] == 1
        assert counters["high_water"] == 2
        assert queue.pop() == "a"  # FIFO
        assert queue.offer("c")  # room again after a pop
        assert queue.pop() == "b" and queue.pop() == "c"
        assert queue.pop(timeout=0.01) is None

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(depth=0)


class TestResultCache:
    def _poly(self, scale=1.0):
        # u <= 20 and -g <= -10, optionally with scaled (equivalent) normals.
        return Polyhedron(
            [
                Halfspace(np.array([scale, 0.0, 0.0, 0.0, 0.0]), 20.0 * scale),
                Halfspace(np.array([0.0, -scale, 0.0, 0.0, 0.0]), -10.0 * scale),
            ]
        )

    def test_fingerprint_normalizes_scale_and_order(self):
        base = query_fingerprint("t", BANDS, self._poly())
        scaled = query_fingerprint("t", BANDS, self._poly(scale=4.0))
        reordered = query_fingerprint(
            "t",
            BANDS,
            Polyhedron(list(reversed(list(self._poly().halfspaces)))),
        )
        assert base == scaled == reordered

    def test_fingerprint_distinguishes_table_and_geometry(self):
        base = query_fingerprint("t", BANDS, self._poly())
        assert base != query_fingerprint("other", BANDS, self._poly())
        other_geometry = Polyhedron(
            [Halfspace(np.array([1.0, 0.0, 0.0, 0.0, 0.0]), 19.0)]
        )
        assert base != query_fingerprint("t", BANDS, other_geometry)

    def test_lru_eviction_and_counters(self):
        cache = ResultCache(capacity=2)
        cache.put("k1", "t", 1)
        cache.put("k2", "t", 2)
        assert cache.get("k1") == 1  # refreshes k1
        cache.put("k3", "t", 3)  # evicts k2 (least recent)
        assert cache.get("k2") is None
        assert cache.get("k3") == 3
        counters = cache.counters()
        assert counters["hits"] == 2 and counters["misses"] == 1
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_invalidate_table(self):
        cache = ResultCache(capacity=8)
        cache.put("k1", "alpha", 1)
        cache.put("k2", "beta", 2)
        assert cache.invalidate_table("alpha") == 1
        assert cache.get("k1") is None
        assert cache.get("k2") == 2


class TestDeadline:
    def test_expiry_and_check(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded):
            deadline.check()
        relaxed = Deadline(60.0)
        assert not relaxed.expired()
        relaxed.check()  # no raise
        assert relaxed.remaining() > 0

    def test_cancel_check_aborts_planner(self, served):
        _, _, planner, workload = served
        poly = workload.figure2_query().polyhedron(BANDS)

        def cancel():
            raise DeadlineExceeded("now")

        with pytest.raises(DeadlineExceeded):
            planner.execute(poly, cancel_check=cancel)


class TestMetricsRegistry:
    def test_summary_aggregates(self):
        registry = MetricsRegistry()
        registry.note_submitted()
        registry.note_submitted()
        registry.note_rejected()
        registry.record(
            QueryMetrics(
                query_id=1, session_id="s1", queue_wait_s=0.1, exec_time_s=0.2,
                pages_read=7, rows_returned=10, cache_hit=True, chosen_path="cache",
            )
        )
        registry.record(
            QueryMetrics(query_id=2, session_id="s1", deadline_missed=True,
                         error="DeadlineExceeded")
        )
        summary = registry.summary()
        assert summary["submitted"] == 2
        assert summary["rejected"] == 1
        assert summary["completed"] == 1
        assert summary["deadline_misses"] == 1
        assert summary["cache_hits"] == 1
        assert summary["pages_read"] == 7
        assert summary["max_queue_wait_s"] == pytest.approx(0.1)
        report = registry.format_report()
        assert "deadline misses" in report

    def test_procedure_timings_surface(self):
        db = Database.in_memory()

        def slow(db_, pause):
            time.sleep(pause)
            return "done"

        db.procedures.register("spSlow", slow, "sleeps")
        assert db.procedures.call("spSlow", 0.01) == "done"
        assert db.procedures.call_count("spSlow") == 1
        assert db.procedures.total_time("spSlow") >= 0.01
        registry = MetricsRegistry()
        timings = registry.procedure_report(db.procedures)
        assert timings["spSlow"]["calls"] == 1
        assert timings["spSlow"]["total_time"] >= 0.01
        assert "spSlow" in registry.format_report(db.procedures)


class TestServiceBasics:
    def test_submit_requires_running(self, served):
        db, _, planner, workload = served
        service = QueryService(db, planner, workers=2)
        with pytest.raises(ServiceClosed):
            service.submit(workload.figure2_query().polyhedron(BANDS))

    def test_execute_and_cache_hit(self, served):
        db, _, planner, workload = served
        poly = workload.box_query(0.05).polyhedron(BANDS)
        with QueryService(db, planner, workers=2) as service:
            first = service.execute(poly, timeout=30)
            second = service.execute(poly, timeout=30)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.chosen_path == first.chosen_path  # cached plan preserved
        assert np.array_equal(
            np.sort(first.rows["_row_id"]), np.sort(second.rows["_row_id"])
        )
        assert second.metrics.pages_read == 0

    def test_admission_rejection_counts(self, served):
        db, _, planner, workload = served
        poly = workload.box_query(0.02).polyhedron(BANDS)
        service = QueryService(db, planner, workers=1, queue_depth=1)
        # Not started: the queue fills and then rejects, without racing workers.
        service._running = True
        session = service.open_session("greedy")
        service.submit(poly, session=session)
        with pytest.raises(AdmissionRejected):
            service.submit(poly, session=session)
        assert session.snapshot().rejected == 1
        assert service.metrics.summary()["rejected"] == 1
        service._running = False

    def test_drop_table_invalidates_cache(self, served):
        sample = sdss_color_sample(2000, seed=9)
        db = Database.in_memory()
        index = KdTreeIndex.build(db, "mag_drop", sample.columns(), BANDS)
        planner = QueryPlanner(index, seed=9)
        workload = QueryWorkload(sample.magnitudes, seed=9)
        poly = workload.box_query(0.05).polyhedron(BANDS)
        with QueryService(db, planner, workers=1) as service:
            service.execute(poly, timeout=30)
            assert len(service.cache) == 1
            db.drop_table("mag_drop")
            assert len(service.cache) == 0
            assert service.cache.invalidations == 1


class TestThreadSafety:
    def test_buffer_pool_counters_exact_under_concurrency(self, served):
        sample = sdss_color_sample(3000, seed=5)
        db = Database.in_memory(buffer_pages=8)  # small pool: constant eviction
        table = db.create_table("hammer", sample.columns(), rows_per_page=64)
        db.reset_io_stats()
        gets_per_thread = 400
        num_threads = 8
        rng = np.random.default_rng(5)
        page_lists = [
            rng.integers(0, table.num_pages, gets_per_thread) for _ in range(num_threads)
        ]
        errors = []

        def hammer(pages):
            try:
                for page_id in pages:
                    table.read_page(int(page_id))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(pages,)) for pages in page_lists
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = db.io_stats
        total = gets_per_thread * num_threads
        # No dropped increments: every get is exactly one hit or one miss,
        # and every miss is exactly one page read.
        assert stats.cache_hits + stats.cache_misses == total
        assert stats.page_reads == stats.cache_misses

    def test_box_split_clamps_epsilon_overshoot(self):
        # The seed failure: frac=1.0 over near-duplicate coordinates can
        # compute a cut epsilon beyond hi; split must clamp, not raise.
        box = Box(np.array([0.1]), np.array([0.1 + 1e-16]))
        value = box.lo[0] + 1.0 * (box.hi[0] - box.lo[0])
        low, high = box.split(0, value + 1e-12)
        assert low.hi[0] <= box.hi[0]
        assert high.lo[0] >= box.lo[0]
        with pytest.raises(ValueError):
            box.split(0, float("nan"))
