"""Tests for hybrid execution (linear relaxation pushed into the index)."""

import numpy as np
import pytest

from repro import (
    Col,
    Database,
    KdTreeIndex,
    full_scan,
    hybrid_query,
    linear_relaxations,
    parse_where,
    sdss_color_sample,
)
from repro.datasets.workload import FIGURE2_VERBATIM
from repro.db.expressions import log10

BANDS = ["u", "g", "r", "i", "z"]


@pytest.fixture(scope="module")
def indexed_sample():
    sample = sdss_color_sample(20_000, seed=13)
    db = Database.in_memory(buffer_pages=None)
    index = KdTreeIndex.build(db, "hyb", sample.columns(), BANDS)
    return sample, index


class TestLinearRelaxations:
    def test_pure_linear_single_polyhedron(self):
        expr = (Col("u") < 1.0) & (Col("g") > 0.0)
        covers = linear_relaxations(expr, ["u", "g"])
        assert len(covers) == 1
        assert len(covers[0]) == 2

    def test_or_splits_cover(self):
        expr = (Col("u") < 0.0) | (Col("u") > 1.0)
        covers = linear_relaxations(expr, ["u"])
        assert len(covers) == 2

    def test_nonlinear_conjunct_is_dropped_not_fatal(self):
        expr = (Col("u") < 1.0) & (log10(Col("g")) < 0.5)
        covers = linear_relaxations(expr, ["u", "g"])
        # Only the linear conjunct constrains the cover.
        assert len(covers) == 1
        assert len(covers[0]) == 1

    def test_fully_nonlinear_returns_none(self):
        assert linear_relaxations(log10(Col("u")) < 1.0, ["u"]) is None

    def test_not_returns_none(self):
        assert linear_relaxations(~(Col("u") < 1.0), ["u"]) is None

    def test_cover_is_a_superset(self, indexed_sample):
        sample, _ = indexed_sample
        expr = parse_where("(u - g < 1.0 AND LOG10(r) > 1.2) OR (g - r > 1.5)")
        covers = linear_relaxations(expr, BANDS)
        cols = {b: sample.magnitudes[:, i] for i, b in enumerate("ugriz")}
        truth = expr.evaluate(cols)
        in_cover = np.zeros(len(truth), dtype=bool)
        for poly in covers:
            in_cover |= poly.contains_points(sample.magnitudes)
        assert in_cover[truth].all()  # never drops a true row

    def test_or_blowup_collapses_to_scan(self):
        expr = Col("u") < 0.0
        for i in range(80):
            expr = expr | (Col("u") > float(i))
        assert linear_relaxations(expr, ["u"]) is None


class TestHybridQuery:
    def test_matches_full_scan_on_mixed_predicates(self, indexed_sample):
        sample, index = indexed_sample
        expressions = [
            (Col("g") - Col("r") > 1.2) & (log10(Col("r") - 10.0) < 1.05),
            (Col("u") < 17.0) | (Col("z") > 22.0),
            parse_where("(u - g < 0.3 AND r < 18) OR (i - z > 0.8 AND r > 21)"),
        ]
        for expr in expressions:
            rows, stats = hybrid_query(index, expr)
            _, scan_stats = full_scan(index.table, predicate=expr)
            assert stats.rows_returned == scan_stats.rows_returned

    def test_prunes_io_when_linear_part_is_selective(self, indexed_sample):
        sample, index = indexed_sample
        expr = (Col("g") - Col("r") > 1.4) & (Col("r") < 17.0) & (
            log10(Col("r")) > 0.0  # trivially true nonlinear residual
        )
        _, stats = hybrid_query(index, expr)
        _, scan_stats = full_scan(index.table, predicate=expr)
        assert stats.rows_returned == scan_stats.rows_returned
        assert stats.pages_touched < scan_stats.pages_touched

    def test_falls_back_to_scan_when_unconstrained(self, indexed_sample):
        sample, index = indexed_sample
        expr = log10(Col("r")) < 1.3
        rows, stats = hybrid_query(index, expr)
        expected = (np.log10(sample.magnitudes[:, 2]) < 1.3).sum()
        assert stats.rows_returned == int(expected)

    def test_missing_columns_rejected(self, indexed_sample):
        _, index = indexed_sample
        with pytest.raises(KeyError):
            hybrid_query(index, Col("ghost") < 1.0)

    def test_empty_result(self, indexed_sample):
        _, index = indexed_sample
        rows, stats = hybrid_query(index, Col("u") < -1e9)
        assert stats.rows_returned == 0
        assert len(rows["_row_id"]) == 0

    def test_verbatim_figure2_end_to_end(self):
        sample = sdss_color_sample(20_000, seed=21)
        cols = sample.extended_columns(seed=22)
        db = Database.in_memory(buffer_pages=None)
        dims = ["dered_g", "dered_r", "dered_i", "petroMag_r", "extinction_r"]
        index = KdTreeIndex.build(db, "fig2v", cols, dims)
        expr = parse_where(FIGURE2_VERBATIM)
        rows, stats = hybrid_query(index, expr)
        _, scan_stats = full_scan(index.table, predicate=expr)
        assert stats.rows_returned == scan_stats.rows_returned
        assert stats.extra["cover_polyhedra"] == 2  # the top-level OR
        assert stats.pages_touched <= scan_stats.pages_touched
