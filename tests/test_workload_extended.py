"""Extended tests for the workload generator and query representations."""

import numpy as np
import pytest

from repro import DelaunayPyramid, QueryWorkload, parse_where, sdss_color_sample
from repro.viz import DelaunayEdgeProducer, PluginHost, VoronoiCellProducer

BANDS = ["u", "g", "r", "i", "z"]


@pytest.fixture(scope="module")
def workload_setup():
    sample = sdss_color_sample(12_000, seed=17)
    return QueryWorkload(sample.magnitudes, seed=0), sample


class TestWorkloadKinds:
    def test_box_query_is_axis_aligned(self, workload_setup):
        generator, _ = workload_setup
        query = generator.box_query(0.05)
        poly = query.polyhedron(BANDS)
        for normal in poly.normals:
            assert np.count_nonzero(normal) == 1

    def test_color_cut_uses_adjacent_differences(self, workload_setup):
        generator, _ = workload_setup
        query = generator.color_cut_query(0.05)
        poly = query.polyhedron(BANDS)
        for normal in poly.normals:
            nonzero = np.flatnonzero(normal)
            assert len(nonzero) == 2
            assert abs(normal[nonzero[0]]) == abs(normal[nonzero[1]])

    def test_oblique_has_fractional_coefficients(self, workload_setup):
        generator, _ = workload_setup
        query = generator.oblique_query(0.05)
        poly = query.polyhedron(BANDS)
        # Coefficients are multiples of 1/4 by construction.
        assert np.allclose(poly.normals * 4, np.round(poly.normals * 4))

    def test_mixed_covers_all_kinds(self, workload_setup):
        generator, _ = workload_setup
        kinds = {q.kind for q in generator.mixed(9, [0.05])}
        assert kinds == {"box", "color_cut", "oblique"}

    def test_queries_never_empty_at_moderate_selectivity(self, workload_setup):
        generator, sample = workload_setup
        for query in generator.mixed(9, [0.1]):
            count = query.polyhedron(BANDS).contains_points(sample.magnitudes).sum()
            assert count > 0

    def test_sql_texts_parse_back(self, workload_setup):
        generator, sample = workload_setup
        cols = {b: sample.magnitudes[:, i] for i, b in enumerate("ugriz")}
        for query in generator.mixed(6, [0.02]):
            reparsed = parse_where(query.sql())
            assert np.array_equal(
                reparsed.evaluate(cols), query.expression.evaluate(cols)
            )

    def test_deterministic_given_seed(self):
        sample = sdss_color_sample(2000, seed=3)
        a = QueryWorkload(sample.magnitudes, seed=5).box_query(0.05).sql()
        b = QueryWorkload(sample.magnitudes, seed=5).box_query(0.05).sql()
        assert a == b

    def test_target_selectivity_recorded(self, workload_setup):
        generator, _ = workload_setup
        query = generator.box_query(0.07)
        assert query.target_selectivity == 0.07


class TestPyramidProducers:
    def test_edge_producer_accepts_pyramid(self, clustered_points_3d):
        pyramid = DelaunayPyramid.build(
            clustered_points_3d, level_sizes=[30, 120, 500], seed=2
        )
        producer = DelaunayEdgeProducer(pyramid, target_edges=100)
        host = PluginHost([{"name": "p", "plugin": producer}])
        host.start()
        host.set_camera(producer.suggest_initial())
        host.frame()
        geometry = producer.get_output()
        assert geometry.num_lines > 0
        host.shutdown()

    def test_voronoi_producer_accepts_pyramid(self, clustered_points_3d):
        pyramid = DelaunayPyramid.build(
            clustered_points_3d, level_sizes=[30, 120], seed=2
        )
        producer = VoronoiCellProducer(pyramid, target_cells=10)
        host = PluginHost([{"name": "p", "plugin": producer}])
        host.start()
        host.set_camera(producer.suggest_initial())
        host.frame()
        assert producer.get_output().num_lines > 0
        host.shutdown()
