"""Tests for tables: creation, clustering, scans, gathers."""

import numpy as np
import pytest

from repro.db import Database


@pytest.fixture()
def db():
    return Database.in_memory(buffer_pages=None)


def simple_data(n=100):
    rng = np.random.default_rng(0)
    return {
        "key": rng.integers(0, 10, n),
        "value": rng.normal(size=n),
        "tag": np.arange(n),
    }


class TestCreate:
    def test_basic_shape(self, db):
        table = db.create_table("t", simple_data(100), rows_per_page=16)
        assert table.num_rows == 100
        assert table.num_pages == 7
        assert table.column_names == ["key", "value", "tag"]

    def test_rejects_unequal_columns(self, db):
        with pytest.raises(ValueError):
            db.create_table("t", {"a": np.arange(3), "b": np.arange(4)})

    def test_rejects_empty_schema(self, db):
        with pytest.raises(ValueError):
            db.create_table("t", {})

    def test_rejects_bad_rows_per_page(self, db):
        with pytest.raises(ValueError):
            db.create_table("t", simple_data(), rows_per_page=0)

    def test_clustered_order_sorted(self, db):
        table = db.create_table(
            "t", simple_data(200), rows_per_page=32, clustered_by=("key",)
        )
        keys = table.read_column("key")
        assert (np.diff(keys) >= 0).all()

    def test_clustering_is_stable(self, db):
        # Equal keys keep their original relative order (lexsort stability),
        # so the secondary 'tag' is ascending within each key group.
        table = db.create_table(
            "t", simple_data(200), rows_per_page=32, clustered_by=("key",)
        )
        keys = table.read_column("key")
        tags = table.read_column("tag")
        for key in np.unique(keys):
            group = tags[keys == key]
            assert (np.diff(group) > 0).all()

    def test_multi_key_clustering(self, db):
        table = db.create_table(
            "t", simple_data(300), rows_per_page=32, clustered_by=("key", "tag")
        )
        keys = table.read_column("key")
        tags = table.read_column("tag")
        composite = keys.astype(np.int64) * 10**6 + tags
        assert (np.diff(composite) > 0).all()

    def test_unknown_cluster_column(self, db):
        with pytest.raises(KeyError):
            db.create_table("t", simple_data(), clustered_by=("ghost",))

    def test_duplicate_name_rejected(self, db):
        db.create_table("t", simple_data())
        with pytest.raises(ValueError):
            db.create_table("t", simple_data())


class TestAccess:
    def test_read_column_roundtrip(self, db):
        data = simple_data(100)
        table = db.create_table("t", data, rows_per_page=16)
        assert np.allclose(table.read_column("value"), data["value"])

    def test_read_columns_single_pass(self, db):
        data = simple_data(100)
        table = db.create_table("t", data, rows_per_page=16)
        db.cold_cache()
        db.reset_io_stats()
        out = table.read_columns(["key", "value"])
        assert db.io_stats.page_reads == table.num_pages
        assert np.allclose(out["value"], data["value"])

    def test_scan_covers_all_rows(self, db):
        table = db.create_table("t", simple_data(100), rows_per_page=16)
        total = sum(page.num_rows for page in table.scan())
        assert total == 100

    def test_read_rows_range(self, db):
        data = simple_data(100)
        table = db.create_table("t", data, rows_per_page=16)
        out = table.read_rows(10, 20)
        assert np.array_equal(out["tag"], data["tag"][10:20])

    def test_read_rows_clamps(self, db):
        table = db.create_table("t", simple_data(100), rows_per_page=16)
        out = table.read_rows(-5, 1000)
        assert len(out["tag"]) == 100

    def test_read_rows_empty_range(self, db):
        table = db.create_table("t", simple_data(100), rows_per_page=16)
        out = table.read_rows(50, 50)
        assert len(out["tag"]) == 0

    def test_scan_rows_touches_only_needed_pages(self, db):
        table = db.create_table("t", simple_data(100), rows_per_page=16)
        db.cold_cache()
        db.reset_io_stats()
        list(table.scan_rows(16, 48))  # pages 1 and 2 only
        assert db.io_stats.page_reads == 2

    def test_gather_preserves_order(self, db):
        data = simple_data(100)
        table = db.create_table("t", data, rows_per_page=16)
        wanted = np.array([99, 0, 50, 1, 98])
        out = table.gather(wanted)
        assert np.array_equal(out["tag"], data["tag"][wanted])

    def test_gather_groups_by_page(self, db):
        table = db.create_table("t", simple_data(100), rows_per_page=16)
        db.cold_cache()
        db.reset_io_stats()
        table.gather(np.array([0, 1, 2, 3, 17, 18]))  # 2 pages
        assert db.io_stats.page_reads == 2

    def test_gather_empty(self, db):
        table = db.create_table("t", simple_data(100), rows_per_page=16)
        out = table.gather(np.array([], dtype=np.int64))
        assert len(out["tag"]) == 0

    def test_gather_out_of_range(self, db):
        table = db.create_table("t", simple_data(100))
        with pytest.raises(IndexError):
            table.gather(np.array([100]))

    def test_page_of_row(self, db):
        table = db.create_table("t", simple_data(100), rows_per_page=16)
        assert table.page_of_row(0) == 0
        assert table.page_of_row(16) == 1
        with pytest.raises(IndexError):
            table.page_of_row(100)

    def test_read_page_bounds(self, db):
        table = db.create_table("t", simple_data(100), rows_per_page=16)
        with pytest.raises(IndexError):
            table.read_page(7)

    def test_dtype_of(self, db):
        table = db.create_table("t", simple_data(10))
        assert table.dtype_of("value") == np.float64
        with pytest.raises(KeyError):
            table.dtype_of("ghost")

    def test_repr(self, db):
        table = db.create_table("t", simple_data(10), clustered_by=("key",))
        assert "clustered_by=['key']" in repr(table)
