"""Reusable fault-injection harness for robustness tests.

Every robustness test follows the same shape: build the tables and
indexes on *quiet* storage (the injector exists but all rates are zero,
so builds are never disturbed), compute fault-free ground truth, then
turn faults on and assert the query path either recovers or fails with a
structured error -- never a wrong answer.  This module packages that
shape so future fault-sweep PRs reuse it instead of re-deriving it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import Database, KdTreeIndex, QueryPlanner, sdss_color_sample
from repro.core.planner import PlannedQuery
from repro.db import FaultInjector, FaultyStorage, MemoryStorage, RetryPolicy
from repro.datasets import QueryWorkload

BANDS = ["u", "g", "r", "i", "z"]


def make_faulty_db(
    seed: int = 0,
    buffer_pages: int | None = None,
    retry: RetryPolicy | None = None,
) -> tuple[Database, FaultInjector]:
    """An in-memory database whose storage runs through a quiet injector.

    All fault rates start at zero: build freely, then
    ``injector.configure(...)`` to switch faults on for the query phase.
    """
    injector = FaultInjector(seed=seed)
    storage = FaultyStorage(MemoryStorage(), injector)
    return Database(storage, buffer_pages=buffer_pages, retry=retry), injector


@dataclass
class FaultyKdSetup:
    """A kd-indexed magnitude table behind fault-injectable storage."""

    db: Database
    injector: FaultInjector
    index: KdTreeIndex
    planner: QueryPlanner
    workload: QueryWorkload


def build_kd_setup(
    num_rows: int = 4000,
    seed: int = 7,
    buffer_pages: int | None = 64,
    retry: RetryPolicy | None = None,
    with_oid: bool = True,
) -> FaultyKdSetup:
    """Build the standard fault-sweep fixture: data, kd index, planner.

    ``buffer_pages`` defaults to a *small* pool so queries keep missing
    into storage -- faults only fire on real reads, and an unbounded pool
    would absorb them all after warmup.  ``with_oid`` adds a stable
    ``oid`` column (original row number before clustering) so result
    sets can be compared across tables with different clustered orders.
    """
    db, injector = make_faulty_db(seed=seed, buffer_pages=buffer_pages, retry=retry)
    sample = sdss_color_sample(num_rows, seed=seed)
    data = sample.columns()
    if with_oid:
        data["oid"] = np.arange(num_rows, dtype=np.int64)
    index = KdTreeIndex.build(db, "mag", data, BANDS)
    planner = QueryPlanner(index, seed=seed)
    workload = QueryWorkload(sample.magnitudes, seed=seed)
    return FaultyKdSetup(
        db=db, injector=injector, index=index, planner=planner, workload=workload
    )


def oid_set(rows: dict) -> set[int]:
    """The result's identity as a set of stable object ids."""
    return set(int(v) for v in rows["oid"])


def fault_free_ground_truth(
    setup: FaultyKdSetup, polyhedra: list
) -> list[dict]:
    """Serial, fault-free answers for a list of polyhedra.

    Quiesces the injector for the duration, restoring nothing (the
    caller configures the fault phase explicitly afterwards).
    """
    setup.injector.quiesce()
    results: list[PlannedQuery] = [setup.planner.execute(p) for p in polyhedra]
    assert not any(r.fallback for r in results), "ground truth must be fault-free"
    return [r.rows for r in results]
