"""Acceptance: Figure 2 traffic at concurrency 8 under a 5% read-fault rate.

The PR's acceptance bar: replaying the workload through the service with
transient read faults injected at 5% per attempt must complete with zero
wrong results and zero unhandled worker exceptions, with retries and any
planner fallbacks visible in the metrics report.
"""

import pytest

from repro import QueryPlanner
from repro.service import QueryService, replay_workload, rows_equal

from .faultutil import BANDS, build_kd_setup, fault_free_ground_truth

pytestmark = pytest.mark.faultsweep

NUM_QUERIES = 80
FAULT_RATE = 0.05


class TestConcurrentReplayUnderFaults:
    def test_concurrency8_with_5pct_read_faults_matches_serial_ground_truth(self):
        setup = build_kd_setup(num_rows=4000, seed=7, buffer_pages=64)
        unique = setup.workload.mixed(
            NUM_QUERIES, selectivities=[0.001, 0.01, 0.05, 0.2, 0.5]
        )
        polyhedra = [q.polyhedron(BANDS) for q in unique]

        # Serial, fault-free ground truth first.
        truth = fault_free_ground_truth(setup, polyhedra)

        # Then the same queries, 8-way concurrent, with storage misbehaving.
        # The result cache is disabled so every query actually executes
        # under faults, and the small buffer pool keeps reads missing
        # into the faulty storage.
        setup.injector.configure(read_fault_rate=FAULT_RATE)
        setup.db.cold_cache()
        service = QueryService(
            setup.db, setup.planner, workers=8, queue_depth=32, cache_entries=0
        )
        with service:
            report = replay_workload(service, polyhedra, concurrency=8)
            assert service.alive_workers == 8  # no worker died on a fault

        # Zero unhandled errors, zero wrong answers.
        assert report.errors == []
        assert report.completed == NUM_QUERIES
        for idx, rows in enumerate(truth):
            assert rows_equal(report.rows(idx), rows), f"query {idx} diverged"

        # Faults demonstrably fired and the stack demonstrably absorbed
        # them: injector counters, engine retry counters, service report.
        assert setup.injector.counters()["reads_failed"] > 0
        io = report.report["io"]
        assert io["read_faults"] > 0
        assert io["read_retries"] > 0
        summary = report.report["service"]
        assert summary["completed"] == NUM_QUERIES
        assert "planner_fallbacks" in summary
        assert "storage_faults" in summary

    def test_fallback_under_concurrency_is_counted_in_service_metrics(self):
        setup = build_kd_setup(num_rows=3000, seed=11, buffer_pages=64)
        polyhedron = setup.workload.mixed(1, selectivities=[0.05])[0].polyhedron(BANDS)
        truth = fault_free_ground_truth(setup, [polyhedron])[0]

        # The ground-truth run warmed the setup planner's probe-sample
        # cache; serve through a fresh planner so the burst lands on a
        # real probe read, which is the fallback path under test.
        planner = QueryPlanner(setup.index, seed=11)
        service = QueryService(
            setup.db, planner, workers=8, queue_depth=32, cache_entries=0
        )
        with service:
            setup.db.cold_cache()
            # A scripted outage long enough to kill the probe's retry
            # budget (read-ahead batch + first page read) but short
            # enough for the scan fallback to succeed.
            setup.injector.fail_next_reads(8)
            outcome = service.execute(polyhedron, timeout=60)
            assert outcome.fallback
            assert rows_equal(outcome.rows, truth)
            assert service.alive_workers == 8

        summary = service.metrics.summary()
        assert summary["planner_fallbacks"] == 1
        records = [m for m in service.metrics.per_query() if m.fallback]
        assert len(records) == 1
        assert "probe" in records[0].fallback_reason
