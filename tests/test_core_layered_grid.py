"""Tests for the layered uniform grid index (§3.1)."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.core.layered_grid import (
    TableSampleBaseline,
    layer_sizes,
)
from repro.db import Database
from repro.geometry import Box


class TestLayerSizes:
    def test_geometric_growth_3d(self):
        sizes = layer_sizes(10_000, dim=3, base=1024)
        assert sizes[0] == 1024
        assert sizes[1] == 8 * 1024
        assert sizes[2] == 10_000 - 1024 - 8 * 1024

    def test_sizes_sum_to_n(self):
        for n in (1, 100, 12345, 10**6):
            assert sum(layer_sizes(n, 3, 1024)) == n

    def test_small_table_single_layer(self):
        assert layer_sizes(500, 3, 1024) == [500]

    def test_dimension_changes_growth(self):
        sizes = layer_sizes(10_000, dim=2, base=100)
        assert sizes[1] == 400  # base * 2^d

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            layer_sizes(0, 3, 1024)


class TestBuild:
    def test_columns_added(self, grid_index):
        names = grid_index.table.column_names
        assert {"RandomID", "Layer", "ContainedBy"} <= set(names)

    def test_clustered_on_layer_cell(self, grid_index):
        assert grid_index.table.clustered_by == ("Layer", "ContainedBy")

    def test_random_id_is_permutation(self, grid_index):
        rid = grid_index.table.read_column("RandomID")
        assert np.array_equal(np.sort(rid), np.arange(len(rid)))

    def test_layer_sizes_match(self, grid_index):
        layer = grid_index.table.read_column("Layer")
        for l_index in range(1, grid_index.num_layers + 1):
            assert int((layer == l_index).sum()) == grid_index.layer_size(l_index)

    def test_constant_expected_points_per_cell(self, grid_index):
        # base / 2^d expected points per cell on every full layer.
        layer = grid_index.table.read_column("Layer")
        cell = grid_index.table.read_column("ContainedBy")
        for l_index in range(1, grid_index.num_layers):  # skip truncated last
            cells = cell[layer == l_index]
            resolution = 2**l_index
            assert cells.min() >= 0
            assert cells.max() < resolution**3

    def test_each_layer_is_random_sample(self, grid_index, clustered_points_3d):
        # Layer 1 points should have roughly the same mean as the table.
        layer = grid_index.table.read_column("Layer")
        x = grid_index.table.read_column("x")
        layer1_mean = x[layer == 1].mean()
        overall_mean = clustered_points_3d[:, 0].mean()
        spread = clustered_points_3d[:, 0].std() / np.sqrt((layer == 1).sum())
        assert abs(layer1_mean - overall_mean) < 5 * spread


class TestSampleBox:
    def test_returns_at_least_n_when_available(self, grid_index, clustered_points_3d):
        box = Box.from_points(clustered_points_3d)
        result = grid_index.sample_box(box, 300)
        assert len(result.row_ids) >= 300

    def test_all_points_inside_box(self, grid_index):
        box = Box(np.array([-0.5, -0.5, -0.5]), np.array([1.0, 0.5, 1.5]))
        result = grid_index.sample_box(box, 200)
        assert box.contains_points(result.points).all()

    def test_small_region_returns_all_matches(self, grid_index, clustered_points_3d):
        box = Box.cube(np.array([0.0, 0.0, 0.0]), 0.1)
        available = int(box.contains_points(clustered_points_3d).sum())
        result = grid_index.sample_box(box, 10_000)
        assert len(result.row_ids) == available

    def test_pages_scale_with_result_not_table(self, grid_index):
        # The paper: "practically only points which are actually returned
        # are read from disk".
        box = Box.cube(np.array([0.0, 0.0, 0.0]), 0.8)
        result = grid_index.sample_box(box, 100)
        rows_per_page = grid_index.table.rows_per_page
        pages_needed = max(1, len(result.row_ids) // rows_per_page)
        assert result.stats.pages_touched < 12 * pages_needed
        assert result.stats.pages_touched < grid_index.table.num_pages

    def test_sample_follows_distribution(self, grid_index, clustered_points_3d):
        # Chi-square: the x-coordinate histogram of the sample should be
        # consistent with the true conditional distribution in the box.
        box = Box.from_points(clustered_points_3d)
        result = grid_index.sample_box(box, 600)
        edges = np.quantile(clustered_points_3d[:, 0], np.linspace(0, 1, 9))
        edges[0] -= 1e-9
        edges[-1] += 1e-9
        expected_fraction = np.histogram(clustered_points_3d[:, 0], bins=edges)[0] / len(
            clustered_points_3d
        )
        observed = np.histogram(result.points[:, 0], bins=edges)[0]
        chi2 = scipy_stats.chisquare(
            observed, f_exp=expected_fraction * observed.sum()
        )
        assert chi2.pvalue > 1e-4

    def test_disjoint_box_returns_empty(self, grid_index):
        box = Box(np.full(3, 99.0), np.full(3, 100.0))
        result = grid_index.sample_box(box, 100)
        assert len(result.row_ids) == 0

    def test_layers_used_grows_with_n(self, grid_index, clustered_points_3d):
        box = Box.from_points(clustered_points_3d)
        few = grid_index.sample_box(box, 50)
        many = grid_index.sample_box(box, 2000)
        assert few.layers_used <= many.layers_used

    def test_stream_batches_match_bulk(self, grid_index, clustered_points_3d):
        box = Box.cube(np.array([0.0, 0.0, 0.0]), 1.0)
        bulk = grid_index.sample_box(box, 400)
        streamed_rows = []
        for _, rows in grid_index.sample_box_stream(box, 400):
            streamed_rows.append(rows)
        streamed = np.concatenate(streamed_rows)
        assert np.array_equal(np.sort(streamed), np.sort(bulk.row_ids))


class TestTableSampleBaseline:
    @pytest.fixture(scope="class")
    def baseline(self, clustered_points_3d):
        db = Database.in_memory(buffer_pages=None)
        pts = clustered_points_3d
        data = {"x": pts[:, 0], "y": pts[:, 1], "z": pts[:, 2]}
        return TableSampleBaseline.build(db, "ts_base", data, ["x", "y", "z"])

    def test_undersampling_returns_too_few(self, baseline, clustered_points_3d):
        # Low percent on a selective box -> fewer than n points: the
        # pathology that motivated the layered grid.
        box = Box.cube(np.array([0.0, 0.0, 0.0]), 0.3)
        result = baseline.sample_box(box, 500, percent=2.0)
        assert len(result.row_ids) < 500

    def test_oversampling_reads_many_pages(self, baseline, clustered_points_3d):
        box = Box.from_points(clustered_points_3d)
        result = baseline.sample_box(box, 10, percent=100.0)
        # TOP(n) stops early but an unselective percent has no guarantee:
        # with percent=100 this is just a scan until n rows accumulate.
        assert len(result.row_ids) == 10

    def test_percent_validation(self, baseline):
        box = Box.unit(3)
        with pytest.raises(ValueError):
            baseline.sample_box(box, 10, percent=0.0)
        with pytest.raises(ValueError):
            baseline.sample_box(box, 10, percent=101.0)

    def test_top_n_truncates(self, baseline, clustered_points_3d):
        box = Box.from_points(clustered_points_3d)
        result = baseline.sample_box(box, 50, percent=50.0)
        assert len(result.row_ids) <= 50 + baseline.table.rows_per_page
