"""Tests for the page format and codec."""

import numpy as np
import pytest

from repro.db import Page, PageCodec


def make_page(**columns):
    return Page(page_id=3, start_row=384, columns=columns)


class TestPage:
    def test_row_counts(self):
        page = make_page(a=np.arange(10.0), b=np.arange(10))
        assert page.num_rows == 10
        assert page.end_row == 394

    def test_empty_page(self):
        page = Page(page_id=0, start_row=0, columns={})
        assert page.num_rows == 0

    def test_row_ids_global(self):
        page = make_page(a=np.arange(4.0))
        assert page.row_ids().tolist() == [384, 385, 386, 387]

    def test_slice(self):
        page = make_page(a=np.arange(10.0))
        view = page.slice(2, 5)
        assert view["a"].tolist() == [2.0, 3.0, 4.0]

    def test_nbytes_positive(self):
        page = make_page(a=np.arange(10.0))
        assert page.nbytes() == 80


class TestPageCodec:
    def test_roundtrip_mixed_dtypes(self):
        rng = np.random.default_rng(0)
        page = make_page(
            floats=rng.normal(size=100),
            ints=rng.integers(0, 1000, 100),
            small=rng.integers(0, 100, 100).astype(np.int32),
            blobs=np.array([b"x" * 8] * 100, dtype="S8"),
        )
        decoded = PageCodec.decode(PageCodec.encode(page))
        assert decoded.page_id == page.page_id
        assert decoded.start_row == page.start_row
        for name, arr in page.columns.items():
            assert decoded.columns[name].dtype == arr.dtype
            assert np.array_equal(decoded.columns[name], arr)

    def test_rejects_object_dtype(self):
        page = make_page(bad=np.array([object()]))
        with pytest.raises(TypeError):
            PageCodec.encode(page)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            PageCodec.decode(b"NOPE" + b"\x00" * 40)

    def test_decoded_arrays_are_writable_copies(self):
        page = make_page(a=np.arange(5.0))
        decoded = PageCodec.decode(PageCodec.encode(page))
        decoded.columns["a"][0] = 99.0  # must not raise
        assert decoded.columns["a"][0] == 99.0

    def test_empty_columns_roundtrip(self):
        page = make_page(a=np.empty(0, dtype=np.float64))
        decoded = PageCodec.decode(PageCodec.encode(page))
        assert decoded.num_rows == 0
        assert decoded.columns["a"].dtype == np.float64
