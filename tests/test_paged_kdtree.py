"""Differential and hygiene tests for the paged on-disk kd-tree.

The contract under test: a :class:`~repro.core.kdpaged.PagedKdTree`
serving node pages through the buffer pool -- under a node-cache budget
deliberately too small to hold the tree -- answers every read path
(solo, batched, sharded, k-NN, under ingest churn) row-identically to
the in-memory :class:`~repro.core.kdtree.KdTree` it was serialized
from.  Plus the cache-hygiene half: generation swaps and index drops
must never leave a stale node page reachable.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Box,
    Database,
    KdPartitioner,
    KdTreeIndex,
    Polyhedron,
    ScatterGatherExecutor,
    attach_database,
    knn_best_first,
    knn_boundary_points,
    knn_brute_force,
    merge_table,
    save_catalog,
)
from repro.core.batch import batch_kd_query
from repro.core.kdpaged import PagedKdTree
from repro.core.queries import polyhedron_full_scan
from repro.service import rows_equal

DIMS = ["x", "y", "z"]
NUM_ROWS = 4096
#: 11 levels = 2047 nodes = 4 node pages at 512 nodes/page: enough pages
#: that a tiny budget forces real evictions.
NUM_LEVELS = 11
#: Far below one decoded node page (~70 KB), so every page admission
#: evicts the previous one -- the cache is always under pressure.
TINY_CACHE = 1 << 14

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

pytestmark = pytest.mark.faultsweep


def _make_data(seed: int = 13) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    points = np.vstack(
        [
            rng.normal([0.0, 0.0, 0.0], [0.5, 0.3, 0.7], size=(NUM_ROWS // 2, 3)),
            rng.normal([3.0, 2.0, 1.0], [0.9, 0.6, 0.4], size=(NUM_ROWS // 2, 3)),
        ]
    )
    data = {d: points[:, i] for i, d in enumerate(DIMS)}
    data["oid"] = np.arange(NUM_ROWS, dtype=np.int64)
    return data


def _oids(rows: dict) -> frozenset[int]:
    return frozenset(int(v) for v in rows["oid"])


@pytest.fixture(scope="module")
def paged_pair():
    """The same dataset behind a paged and an in-memory kd index.

    The paged side runs with a node-cache budget far below one page, so
    every cross-page traversal evicts -- correctness must not depend on
    residency.
    """
    data = _make_data()
    db = Database.in_memory(buffer_pages=None, index_cache_bytes=TINY_CACHE)
    paged = KdTreeIndex.build(db, "pg", dict(data), DIMS, num_levels=NUM_LEVELS)
    mem = KdTreeIndex.build(
        db, "mem", dict(data), DIMS, num_levels=NUM_LEVELS, paged=False
    )
    assert isinstance(paged.tree, PagedKdTree)
    assert paged.tree.layout.num_pages >= 4
    assert not isinstance(mem.tree, PagedKdTree)
    return db, paged, mem


_center = st.floats(min_value=-2.0, max_value=5.0, allow_nan=False)
_width = st.floats(min_value=0.05, max_value=6.0, allow_nan=False)
_box_strategy = st.tuples(
    st.tuples(_center, _center, _center), st.tuples(_width, _width, _width)
)


def _box_from_draws(centers, widths) -> Box:
    lo = np.asarray(centers) - np.asarray(widths) / 2.0
    hi = np.asarray(centers) + np.asarray(widths) / 2.0
    return Box(lo, hi)


def _box_eq(a: Box, b: Box) -> bool:
    return np.array_equal(a.lo, b.lo) and np.array_equal(a.hi, b.hi)


class TestStructuralEquivalence:
    def test_paged_tree_mirrors_in_memory_nodes(self, paged_pair):
        _, paged, mem = paged_pair
        ptree, mtree = paged.tree, mem.tree
        assert ptree.first_leaf == mtree.first_leaf
        for node in range(1, 2 * mtree.first_leaf):
            assert ptree.post_order_id(node) == mtree.post_order_id(node)
            assert ptree.post_order_range(node) == mtree.post_order_range(node)
            assert ptree.node_rows(node) == mtree.node_rows(node)
            assert _box_eq(ptree.partition_box(node), mtree.partition_box(node))
            assert _box_eq(ptree.tight_box(node), mtree.tight_box(node))
            if not mtree.is_leaf(node):
                assert ptree.split_plane(node) == mtree.split_plane(node)

    def test_leaf_statistics_identical(self, paged_pair):
        _, paged, mem = paged_pair
        assert paged.tree.leaf_statistics() == mem.tree.leaf_statistics()


class TestQueryDifferential:
    @_SETTINGS
    @given(draw=_box_strategy)
    def test_solo_queries_row_identical(self, paged_pair, draw):
        _, paged, mem = paged_pair
        polyhedron = Polyhedron.from_box(_box_from_draws(*draw))
        for tight in (True, False):
            p_rows, _ = paged.query_polyhedron(polyhedron, use_tight_boxes=tight)
            m_rows, _ = mem.query_polyhedron(polyhedron, use_tight_boxes=tight)
            assert _oids(p_rows) == _oids(m_rows)
        scan_rows, _ = polyhedron_full_scan(paged.table, DIMS, polyhedron)
        assert rows_equal(p_rows, scan_rows)

    def test_batched_queries_row_identical(self, paged_pair):
        _, paged, mem = paged_pair
        rng = np.random.default_rng(21)
        polys = []
        for _ in range(6):
            center = rng.uniform([-1, -1, -1], [4, 3, 2])
            widths = rng.uniform(0.2, 4.0, size=3)
            polys.append(
                Polyhedron.from_box(Box(center - widths / 2, center + widths / 2))
            )
        p_results, _ = batch_kd_query(paged, polys)
        m_results, _ = batch_kd_query(mem, polys)
        for (p_rows, _, p_err), (m_rows, _, m_err) in zip(p_results, m_results):
            assert p_err is None and m_err is None
            assert _oids(p_rows) == _oids(m_rows)

    @_SETTINGS
    @given(
        point=st.tuples(
            st.floats(min_value=-2.0, max_value=5.0, allow_nan=False),
            st.floats(min_value=-2.0, max_value=4.0, allow_nan=False),
            st.floats(min_value=-2.0, max_value=3.0, allow_nan=False),
        ),
        k=st.integers(min_value=1, max_value=40),
    )
    def test_knn_identical(self, paged_pair, point, k):
        _, paged, mem = paged_pair
        query = np.asarray(point, dtype=np.float64)
        truth = knn_brute_force(paged.table, DIMS, query, k)
        for searcher in (knn_boundary_points, knn_best_first):
            got = searcher(paged, query, k)
            assert np.allclose(got.distances, truth.distances)

    def test_eviction_pressure_actually_happened(self, paged_pair):
        # The whole differential ran under a 16 KB budget over a >=4-page
        # tree; if nothing was ever evicted, the budget did not bite and
        # this module is not testing what it claims to.
        db, paged, _ = paged_pair
        io = db.io_stats.as_dict()
        assert io["node_cache_evictions"] > 0
        assert io["node_cache_misses"] > 0
        assert io["index_pages_decoded"] > 0
        assert paged.tree.resident_bytes > 0


class TestShardedDifferential:
    def test_thread_sharded_matches_scan(self):
        data = _make_data(seed=29)
        db = Database.in_memory(buffer_pages=None)
        plain = db.create_table("plain", dict(data))
        shard_set = KdPartitioner(
            4, buffer_pages=None, index_cache_bytes=TINY_CACHE
        ).partition("pgshard", dict(data), DIMS)
        executor = ScatterGatherExecutor(shard_set)
        try:
            # Every shard must actually serve a paged tree.
            for shard in shard_set:
                assert isinstance(shard.index.tree, PagedKdTree)
            rng = np.random.default_rng(3)
            for _ in range(8):
                center = rng.uniform([-1, -1, -1], [4, 3, 2])
                widths = rng.uniform(0.2, 4.0, size=3)
                poly = Polyhedron.from_box(
                    Box(center - widths / 2, center + widths / 2)
                )
                sharded = executor.execute(poly)
                scan_rows, _ = polyhedron_full_scan(plain, DIMS, poly)
                assert _oids(sharded.rows) == _oids(scan_rows)
                assert not sharded.partial
        finally:
            executor.close()

    def test_process_sharded_matches_scan(self):
        data = _make_data(seed=31)
        db = Database.in_memory(buffer_pages=None)
        plain = db.create_table("plain", dict(data))
        specs = KdPartitioner(
            2, buffer_pages=None, index_cache_bytes=TINY_CACHE
        ).plan("pgproc", dict(data), DIMS)
        assert all(spec.index_pages for spec in specs)
        executor = ScatterGatherExecutor(specs=specs, transport="process")
        try:
            rng = np.random.default_rng(5)
            for _ in range(3):
                center = rng.uniform([-1, -1, -1], [4, 3, 2])
                widths = rng.uniform(0.5, 4.0, size=3)
                poly = Polyhedron.from_box(
                    Box(center - widths / 2, center + widths / 2)
                )
                sharded = executor.execute(poly)
                scan_rows, _ = polyhedron_full_scan(plain, DIMS, poly)
                assert _oids(sharded.rows) == _oids(scan_rows)
        finally:
            executor.close()


class TestIngestChurn:
    def test_paged_tracks_in_memory_through_inserts_and_merge(self):
        data = _make_data(seed=37)
        db_p = Database.in_memory(buffer_pages=None, index_cache_bytes=TINY_CACHE)
        db_m = Database.in_memory(buffer_pages=None)
        paged = KdTreeIndex.build(db_p, "t", dict(data), DIMS, num_levels=NUM_LEVELS)
        mem = KdTreeIndex.build(
            db_m, "t", dict(data), DIMS, num_levels=NUM_LEVELS, paged=False
        )

        rng = np.random.default_rng(41)
        polys = []
        for _ in range(4):
            center = rng.uniform([-1, -1, -1], [4, 3, 2])
            widths = rng.uniform(0.5, 4.0, size=3)
            polys.append(
                Polyhedron.from_box(Box(center - widths / 2, center + widths / 2))
            )

        def check():
            for poly in polys:
                p_rows, _ = db_p.index("t.kdtree").query_polyhedron(poly)
                m_rows, _ = db_m.index("t.kdtree").query_polyhedron(poly)
                assert _oids(p_rows) == _oids(m_rows)

        fresh = {
            "x": rng.normal(1.5, 1.0, 600),
            "y": rng.normal(1.0, 1.0, 600),
            "z": rng.normal(0.5, 1.0, 600),
            "oid": np.arange(NUM_ROWS, NUM_ROWS + 600, dtype=np.int64),
        }
        for db in (db_p, db_m):
            db.ingest.insert("t", {k: v.copy() for k, v in fresh.items()})
        check()  # merge-on-read over the delta tier

        for db in (db_p, db_m):
            report = merge_table(db, "t")
            assert report.merged
        # The rebuilt generation preserves each side's serving mode.
        assert isinstance(db_p.index("t.kdtree").tree, PagedKdTree)
        assert not isinstance(db_m.index("t.kdtree").tree, PagedKdTree)
        check()


class TestCacheHygiene:
    def test_generation_swap_never_serves_stale_node_pages(self):
        data = _make_data(seed=43)
        db = Database.in_memory(buffer_pages=None, index_cache_bytes=TINY_CACHE)
        index = KdTreeIndex.build(db, "t", dict(data), DIMS, num_levels=NUM_LEVELS)
        old_tree = index.tree
        old_namespace = old_tree.namespace
        poly = Polyhedron.from_box(Box([-1, -1, -1], [4, 3, 2]))
        index.query_polyhedron(poly)  # warm node pages into the pool
        assert old_namespace in db.buffer_pool.cached_namespaces()

        rng = np.random.default_rng(47)
        db.ingest.insert(
            "t",
            {
                "x": rng.normal(size=300),
                "y": rng.normal(size=300),
                "z": rng.normal(size=300),
                "oid": np.arange(NUM_ROWS, NUM_ROWS + 300, dtype=np.int64),
            },
        )
        assert merge_table(db, "t").merged

        # The swapped-in tree serves its own generation's namespace; the
        # old pages may linger (in-flight readers get one merge cycle of
        # grace) but the new read path never touches them.
        new_tree = db.index("t.kdtree").tree
        assert new_tree.namespace != old_namespace
        rows, _ = db.index("t.kdtree").query_polyhedron(poly)
        scan_rows, _ = polyhedron_full_scan(
            db.index("t.kdtree").table, DIMS, poly
        )
        assert rows_equal(rows, scan_rows)

        # One more merge retires generation 0 for good: its node pages
        # must leave both buffer-pool levels and storage together with
        # its data pages -- nothing left to serve stale.
        db.ingest.insert(
            "t",
            {
                "x": rng.normal(size=300),
                "y": rng.normal(size=300),
                "z": rng.normal(size=300),
                "oid": np.arange(
                    NUM_ROWS + 300, NUM_ROWS + 600, dtype=np.int64
                ),
            },
        )
        assert merge_table(db, "t").merged
        assert old_namespace not in db.buffer_pool.cached_namespaces()
        assert db.storage.num_pages(old_namespace) == 0
        rows, _ = db.index("t.kdtree").query_polyhedron(poly)
        scan_rows, _ = polyhedron_full_scan(
            db.index("t.kdtree").table, DIMS, poly
        )
        assert rows_equal(rows, scan_rows)

    def test_cold_cache_covers_the_node_cache(self):
        data = _make_data(seed=53)
        db = Database.in_memory(buffer_pages=None, index_cache_bytes=TINY_CACHE)
        index = KdTreeIndex.build(db, "t", dict(data), DIMS, num_levels=NUM_LEVELS)
        poly = Polyhedron.from_box(Box([-1, -1, -1], [4, 3, 2]))
        truth, _ = index.query_polyhedron(poly)
        assert index.tree.resident_bytes > 0

        db.cold_cache()
        assert index.tree.resident_bytes == 0
        assert not db.buffer_pool.cached_namespaces()
        db.reset_io_stats()
        rows, _ = index.query_polyhedron(poly)
        assert rows_equal(rows, truth)
        # Truly cold: the node pages were decoded again from storage.
        assert db.io_stats.index_pages_decoded > 0

    def test_drop_index_tears_down_the_namespace(self):
        data = _make_data(seed=59)
        db = Database.in_memory(buffer_pages=None, index_cache_bytes=TINY_CACHE)
        index = KdTreeIndex.build(db, "t", dict(data), DIMS, num_levels=NUM_LEVELS)
        namespace = index.tree.namespace
        poly = Polyhedron.from_box(Box([-1, -1, -1], [4, 3, 2]))
        index.query_polyhedron(poly)
        assert db.storage.num_pages(namespace) > 0

        db.drop_index("t.kdtree")
        assert db.storage.num_pages(namespace) == 0
        assert namespace not in db.buffer_pool.cached_namespaces()
        assert index.tree.resident_bytes == 0


class TestPersistenceRoundTrip:
    def test_paged_index_reattaches_without_rebuild(self, tmp_path):
        data = _make_data(seed=61)
        db = Database.on_disk(tmp_path, buffer_pages=None)
        index = KdTreeIndex.build(db, "t", dict(data), DIMS, num_levels=NUM_LEVELS)
        assert isinstance(index.tree, PagedKdTree)
        poly = Polyhedron.from_box(Box([-1, -1, -1], [4, 3, 2]))
        truth, _ = index.query_polyhedron(poly)
        save_catalog(db)

        reopened = attach_database(tmp_path)
        reattached = reopened.index("t.kdtree")
        assert isinstance(reattached.tree, PagedKdTree)
        assert reattached.tree.layout == index.tree.layout
        rows, _ = reattached.query_polyhedron(poly)
        assert _oids(rows) == _oids(truth)
