"""The networked execution layer: wire protocol, worker pool, front door.

Fast-tier coverage of `repro.net`: framing round-trips under arbitrary
chunking (hypothesis), torn/truncated-frame rejection with structured
errors, spawn-safety (pickling) of everything a worker process receives,
process-pool differential correctness against the thread executor,
dead-worker degradation to uncached partials with automatic respawn,
cross-process cooperative cancellation, and the asyncio TCP server's
session/admission/streaming/drain behavior.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import signal
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Box,
    FaultInjector,
    Polyhedron,
    QueryService,
    ScatterGatherExecutor,
    StorageFault,
)
from repro.db.catalog import DatabaseOptions
from repro.db.errors import TransientIOError
from repro.db.faults import RetryPolicy
from repro.db.stats import QueryStats
from repro.net.client import QueryClient, replay_over_network
from repro.net.pool import ShardWorkerPool, WorkerDied
from repro.net.server import QueryServer
from repro.net.wire import (
    FrameDecoder,
    FrameError,
    MessageType,
    box_from_wire,
    box_to_wire,
    columns_from_blob,
    columns_to_blob,
    encode_frame,
    error_from_wire,
    error_to_wire,
    polyhedron_from_wire,
    polyhedron_to_wire,
    stats_from_wire,
    stats_to_wire,
)
from repro.service.errors import DeadlineExceeded, ServiceClosed
from repro.shard import KdPartitioner
from repro.shard.partitioner import ShardSpec

DIMS = ["x", "y", "z"]
NUM_ROWS = 4000


def _make_data(n: int = NUM_ROWS, seed: int = 17) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    pts = np.vstack(
        [
            rng.normal([0.0, 0.0, 0.0], [0.5, 0.3, 0.6], size=(n // 2, 3)),
            rng.normal([3.0, 2.0, 1.0], [0.8, 0.5, 0.4], size=(n - n // 2, 3)),
        ]
    )
    data = {d: pts[:, i] for i, d in enumerate(DIMS)}
    data["oid"] = np.arange(n, dtype=np.int64)
    return data


def _queries() -> list[Polyhedron]:
    return [
        Polyhedron.from_box(Box.cube(np.array([0.0, 0.0, 0.0]), 1.0)),
        Polyhedron.from_box(Box.cube(np.array([3.0, 2.0, 1.0]), 1.6)),
        Polyhedron.from_box(Box.cube(np.array([1.5, 1.0, 0.5]), 8.0)),
        Polyhedron.from_box(Box.cube(np.array([40.0, 40.0, 40.0]), 0.5)),
    ]


def _rows_identical(a: dict, b: dict) -> bool:
    if set(a) != set(b):
        return False
    ia, ib = np.argsort(a["_row_id"]), np.argsort(b["_row_id"])
    return all(np.array_equal(a[n][ia], b[n][ib]) for n in a)


# -- wire protocol ----------------------------------------------------------


_HEADERS = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(
        st.integers(min_value=-(2**53), max_value=2**53),
        st.floats(allow_nan=False),
        st.text(max_size=16),
        st.booleans(),
        st.none(),
        st.lists(st.integers(min_value=-100, max_value=100), max_size=4),
    ),
    max_size=6,
)


class TestFraming:
    @settings(max_examples=50, deadline=None)
    @given(
        msg_type=st.sampled_from(list(MessageType)),
        header=_HEADERS,
        blob=st.binary(max_size=256),
        chunk=st.integers(min_value=1, max_value=64),
    )
    def test_roundtrip_under_arbitrary_chunking(self, msg_type, header, blob, chunk):
        encoded = encode_frame(msg_type, header, blob)
        decoder = FrameDecoder()
        for start in range(0, len(encoded), chunk):
            decoder.feed(encoded[start : start + chunk])
        frame = decoder.pop()
        assert frame is not None
        assert frame.type is msg_type
        assert frame.header == header
        assert frame.blob == blob
        assert decoder.pop() is None
        decoder.finish()  # clean boundary: no leftover bytes

    @settings(max_examples=30, deadline=None)
    @given(
        headers=st.lists(_HEADERS, min_size=1, max_size=4),
        chunk=st.integers(min_value=1, max_value=32),
    )
    def test_back_to_back_frames_split_correctly(self, headers, chunk):
        stream = b"".join(encode_frame(MessageType.PING, h) for h in headers)
        decoder = FrameDecoder()
        decoded = []
        for start in range(0, len(stream), chunk):
            decoder.feed(stream[start : start + chunk])
            while (frame := decoder.pop()) is not None:
                decoded.append(frame.header)
        assert decoded == headers

    def test_truncated_stream_is_reported(self):
        encoded = encode_frame(MessageType.QUERY, {"request_id": 1}, b"xyz")
        decoder = FrameDecoder()
        decoder.feed(encoded[: len(encoded) - 2])
        assert decoder.pop() is None
        with pytest.raises(FrameError) as info:
            decoder.finish()
        assert info.value.kind == "truncated"

    def test_torn_frame_fails_checksum(self):
        encoded = bytearray(encode_frame(MessageType.PAGE, {"a": 1}, b"payload"))
        encoded[len(encoded) // 2] ^= 0xFF
        decoder = FrameDecoder()
        decoder.feed(bytes(encoded))
        with pytest.raises(FrameError) as info:
            decoder.pop()
        assert info.value.kind in ("checksum", "header", "oversized")

    def test_wrong_magic_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(b"XX" + encode_frame(MessageType.PING, {})[2:])
        with pytest.raises(FrameError) as info:
            decoder.pop()
        assert info.value.kind == "magic"

    def test_wrong_version_rejected(self):
        encoded = bytearray(encode_frame(MessageType.PING, {}))
        encoded[2] = 99
        decoder = FrameDecoder()
        decoder.feed(bytes(encoded))
        with pytest.raises(FrameError) as info:
            decoder.pop()
        assert info.value.kind == "version"

    def test_insane_length_prefix_rejected_before_buffering(self):
        # A torn stream can present garbage lengths; the decoder must
        # refuse them instead of waiting for gigabytes that never come.
        encoded = bytearray(encode_frame(MessageType.PING, {}))
        encoded[4:8] = (1 << 31).to_bytes(4, "big")
        decoder = FrameDecoder()
        decoder.feed(bytes(encoded))
        with pytest.raises(FrameError) as info:
            decoder.pop()
        assert info.value.kind == "oversized"


class TestConverters:
    def test_polyhedron_roundtrip_is_float64_exact(self):
        rng = np.random.default_rng(3)
        poly = Polyhedron.from_inequalities(rng.normal(size=(6, 4)), rng.normal(size=6))
        back = polyhedron_from_wire(polyhedron_to_wire(poly))
        assert np.array_equal(back.normals, poly.normals)
        assert np.array_equal(back.offsets, poly.offsets)

    def test_box_roundtrip(self):
        box = Box(np.array([-1.5, 0.25]), np.array([2.0, 7.125]))
        back = box_from_wire(box_to_wire(box))
        assert np.array_equal(back.lo, box.lo)
        assert np.array_equal(back.hi, box.hi)

    def test_columns_roundtrip_mixed_dtypes(self):
        rows = {
            "x": np.linspace(0, 1, 17),
            "n": np.arange(17, dtype=np.int32),
            "_row_id": np.arange(17, dtype=np.int64) * 3,
        }
        meta, blob = columns_to_blob(rows)
        back = columns_from_blob(meta, blob)
        assert set(back) == set(rows)
        for name in rows:
            assert back[name].dtype == rows[name].dtype
            assert np.array_equal(back[name], rows[name])

    def test_empty_columns_keep_schema(self):
        rows = {"x": np.empty(0, dtype=np.float64), "_row_id": np.empty(0, np.int64)}
        meta, blob = columns_to_blob(rows)
        back = columns_from_blob(meta, blob)
        assert back["x"].dtype == np.float64 and len(back["x"]) == 0

    def test_stats_roundtrip_preserves_page_accounting(self):
        stats = QueryStats(rows_examined=100, rows_returned=7)
        for page in range(5):
            stats.record_page("shard3", page)
        stats.extra["custom"] = 4
        back = stats_from_wire(stats_to_wire(stats))
        assert back.rows_examined == 100 and back.rows_returned == 7
        assert back.pages_touched == stats.pages_touched
        assert back.extra["custom"] == 4
        # Merge additivity across disjoint namespaces survives the wire.
        other = QueryStats()
        other.record_page("shard1", 0)
        back.merge(other)
        assert back.pages_touched == stats.pages_touched + 1

    def test_error_roundtrip(self):
        deadline = error_from_wire(error_to_wire(DeadlineExceeded("late")))
        assert isinstance(deadline, DeadlineExceeded)
        fault = error_from_wire(error_to_wire(TransientIOError("flaky page")))
        assert isinstance(fault, TransientIOError)
        assert isinstance(fault, StorageFault)
        unknown = error_from_wire({"kind": "storage_fault", "type": "Database"})
        assert isinstance(unknown, StorageFault)  # never resolves non-faults


class TestSpawnSafety:
    def test_fault_injector_pickles_with_rng_state(self):
        injector = FaultInjector(seed=11, corrupt_rate=0.5)
        # Burn some RNG state so we verify state (not just config) survives.
        for _ in range(7):
            injector.corrupt_this_read()
        clone = pickle.loads(pickle.dumps(injector))
        draws = [injector.corrupt_this_read() for _ in range(20)]
        assert [clone.corrupt_this_read() for _ in range(20)] == draws
        assert clone.counters() == injector.counters()

    def test_retry_policy_and_options_pickle(self):
        options = DatabaseOptions(
            buffer_pages=64,
            retry=RetryPolicy(attempts=3, backoff_s=0.0),
            fault=FaultInjector(read_fault_rate=0.1, seed=2),
        )
        clone = pickle.loads(pickle.dumps(options))
        assert clone.retry.attempts == 3
        db = clone.open()
        assert db.io_stats is not None

    def test_shard_specs_pickle(self):
        specs = KdPartitioner(2).plan("pk", _make_data(256), DIMS)
        clones = pickle.loads(pickle.dumps(specs))
        for spec, clone in zip(specs, clones):
            assert isinstance(clone, ShardSpec)
            assert clone.shard_id == spec.shard_id
            assert clone.num_rows == spec.num_rows
            for name in spec.columns:
                assert np.array_equal(clone.columns[name], spec.columns[name])


# -- process worker pool ----------------------------------------------------


@pytest.fixture(scope="module")
def pool_setup():
    """One dataset, thread- and process-transport executors over it."""
    data = _make_data()
    partitioner = KdPartitioner(4, buffer_pages=None)
    specs = partitioner.plan("pts", data, DIMS)
    shard_set = partitioner.partition("pts", data, DIMS)
    thread_ex = ScatterGatherExecutor(shard_set, sample_pages=8, seed=0)
    pool = ShardWorkerPool(
        specs, sample_pages=8, seed=0, heartbeat_s=0.2, heartbeat_misses=5
    )
    yield data, specs, thread_ex, pool
    pool.close()
    thread_ex.close()


class TestShardWorkerPool:
    def test_engine_protocol_matches_thread_executor(self, pool_setup):
        _, _, thread_ex, pool = pool_setup
        assert pool.table_name == thread_ex.table_name
        assert pool.dims == thread_ex.dims
        assert pool.layout_version == thread_ex.layout_version
        assert pool.transport == "process"
        assert thread_ex.transport == "thread"

    def test_solo_results_identical_to_thread_transport(self, pool_setup):
        _, _, thread_ex, pool = pool_setup
        for poly in _queries():
            a = thread_ex.execute(poly)
            b = pool.execute(poly)
            assert _rows_identical(a.rows, b.rows)
            assert a.stats.pages_touched == b.stats.pages_touched
            assert b.chosen_path == "sharded"
            assert not b.partial

    def test_batch_results_identical_to_thread_transport(self, pool_setup):
        _, _, thread_ex, pool = pool_setup
        polys = _queries()
        batch_a = thread_ex.execute_batch(polys)
        batch_b = pool.execute_batch(polys)
        assert batch_b.occupancy == len(polys)
        for ma, mb in zip(batch_a.members, batch_b.members):
            assert ma.error is None and mb.error is None
            assert _rows_identical(ma.planned.rows, mb.planned.rows)

    def test_worker_stats_track_utilization(self, pool_setup):
        _, _, _, pool = pool_setup
        pool.execute(_queries()[2])
        stats = pool.worker_stats()
        assert len(stats) == 4
        assert all(entry["pid"] for entry in stats)
        assert sum(entry["busy_s"] for entry in stats) > 0

    def test_knn_is_explicitly_unsupported(self, pool_setup):
        _, _, _, pool = pool_setup
        with pytest.raises(NotImplementedError):
            pool.knn(np.zeros(3), 5)

    def test_deadline_cancels_inflight_siblings(self, pool_setup):
        # Mirror of test_shard.py::TestCancellation across the IPC
        # boundary: the coordinator's deadline aborts sibling shard
        # requests and the pool stays usable afterward.
        _, _, _, pool = pool_setup
        calls = {"n": 0}

        def check():
            calls["n"] += 1
            if calls["n"] > 3:
                raise DeadlineExceeded("budget spent")

        poly = _queries()[2]
        with pytest.raises(DeadlineExceeded):
            pool.execute(poly, cancel_check=check)
        assert not pool.execute(poly).partial

    def test_batch_member_deadline_is_isolated(self, pool_setup):
        _, _, thread_ex, pool = pool_setup
        polys = _queries()[:3]

        def expired():
            raise DeadlineExceeded("budget spent")

        result = pool.execute_batch(polys, [None, expired, None])
        assert isinstance(result.members[1].error, DeadlineExceeded)
        for idx in (0, 2):
            assert result.members[idx].error is None
            reference = thread_ex.execute(polys[idx])
            assert _rows_identical(result.members[idx].planned.rows, reference.rows)


class TestWorkerDeath:
    def test_dead_worker_degrades_to_partial_then_respawns(self):
        data = _make_data(1500, seed=23)
        specs = KdPartitioner(2, buffer_pages=None).plan("mortal", data, DIMS)
        poly = _queries()[2]
        with ShardWorkerPool(
            specs, sample_pages=4, seed=0, heartbeat_s=0.1, heartbeat_misses=4
        ) as pool:
            whole = pool.execute(poly)
            victim = pool.worker_stats()[0]["pid"]
            os.kill(victim, signal.SIGKILL)
            time.sleep(0.05)
            degraded = pool.execute(poly)
            assert degraded.partial
            assert degraded.failed_shards == (0,)
            assert len(degraded.rows["_row_id"]) < len(whole.rows["_row_id"])
            assert issubclass(WorkerDied, StorageFault)
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if pool.worker_stats()[0]["alive"]:
                    break
                time.sleep(0.05)
            recovered = pool.execute(poly)
            assert not recovered.partial
            assert _rows_identical(recovered.rows, whole.rows)
            counters = pool.counters()
            assert counters["worker_deaths"] >= 1
            assert counters["worker_respawns"] >= 1

    def test_partial_from_dead_worker_is_never_cached(self):
        data = _make_data(1500, seed=31)
        specs = KdPartitioner(2, buffer_pages=None).plan("uncached", data, DIMS)
        poly = _queries()[2]
        with ShardWorkerPool(
            specs, sample_pages=4, seed=0, heartbeat_s=0.1, heartbeat_misses=4
        ) as pool:
            with QueryService(None, pool, workers=2, queue_depth=8) as service:
                os.kill(pool.worker_stats()[1]["pid"], signal.SIGKILL)
                time.sleep(0.05)
                degraded = service.execute(poly)
                assert degraded.partial
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline:
                    if pool.worker_stats()[1]["alive"]:
                        break
                    time.sleep(0.05)
                healed = service.execute(poly)
                # A cached partial would replay here; the partial-never-
                # cached rule must hold across the process boundary.
                assert not healed.partial
                assert not healed.cache_hit

    def test_worker_side_fault_injection_degrades_per_shard(self):
        # The spec carries the shard's fault injector and retry policy
        # into the worker process; a shard whose storage always faults
        # degrades that shard only, exactly like thread transport.
        data = _make_data(1500, seed=37)
        specs = KdPartitioner(2, buffer_pages=None).plan("faulty", data, DIMS)
        # A one-page buffer pool keeps the build warm but forces query
        # reads to storage, where every attempt faults.
        specs[0].options = DatabaseOptions(
            buffer_pages=1,
            retry=RetryPolicy(attempts=2, backoff_s=0.0),
            fault=FaultInjector(read_fault_rate=1.0, seed=3),
        )
        poly = _queries()[2]
        with ShardWorkerPool(specs, sample_pages=4, seed=0) as pool:
            planned = pool.execute(poly)
            assert planned.partial
            assert planned.failed_shards == (0,)
            assert len(planned.rows["_row_id"]) > 0


# -- the network front door -------------------------------------------------


class _ServerHarness:
    """A QueryServer on a background event loop, for sync test code."""

    def __init__(self, service, **kwargs):
        self.service = service
        self.kwargs = kwargs
        self.server = None
        self.loop = None
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._ready.wait(15), "server failed to start"

    def _run(self):
        async def main():
            self.server = QueryServer(self.service, port=0, **self.kwargs)
            await self.server.start()
            self.loop = asyncio.get_running_loop()
            self._ready.set()
            await self.server.serve_until_drained()

        asyncio.run(main())

    @property
    def address(self):
        return self.server.address

    def drain(self, timeout=30.0):
        asyncio.run_coroutine_threadsafe(self.server.drain(), self.loop).result(
            timeout
        )
        self.thread.join(timeout)


@pytest.fixture(scope="module")
def served():
    """A thread-transport sharded service behind the TCP front door."""
    data = _make_data()
    shard_set = KdPartitioner(2, buffer_pages=None).partition("srv", data, DIMS)
    engine = ScatterGatherExecutor(shard_set, sample_pages=8, seed=0)
    service = QueryService(None, engine, workers=2, queue_depth=8).start()
    harness = _ServerHarness(service, max_inflight=2, page_rows=256)
    yield engine, service, harness
    if service.running:
        harness.drain()
    engine.close()


class TestFrontDoor:
    def test_handshake_carries_engine_identity(self, served):
        engine, _, harness = served
        host, port = harness.address
        with QueryClient(host, port, tenant="ident") as client:
            assert client.table_name == engine.table_name
            assert client.dims == engine.dims
            assert client.transport == "thread"
            assert client.server_info["layout_version"] == engine.layout_version

    def test_roundtrip_streams_rows_identically(self, served):
        engine, _, harness = served
        host, port = harness.address
        with QueryClient(host, port, tenant="rt") as client:
            for poly in _queries():
                remote = client.query(poly)
                local = engine.execute(poly)
                assert _rows_identical(remote.rows, local.rows)
                assert remote.stats.rows_returned == local.stats.rows_returned

    def test_large_result_spans_multiple_pages(self, served):
        engine, _, harness = served
        host, port = harness.address
        with QueryClient(host, port, tenant="pages") as client:
            remote = client.query(_queries()[2])  # the whole-table box
        # page_rows=256 and thousands of rows: streaming must reassemble.
        assert len(remote.rows["_row_id"]) > 256
        local = engine.execute(_queries()[2])
        assert _rows_identical(remote.rows, local.rows)

    def test_deadline_maps_to_typed_error(self, served):
        _, _, harness = served
        host, port = harness.address
        with QueryClient(host, port, tenant="dl") as client:
            with pytest.raises(DeadlineExceeded):
                client.query(_queries()[2], deadline=1e-9)
            # The connection survives a failed query.
            outcome = client.query(_queries()[0])
            assert outcome.stats is not None

    def test_per_tenant_inflight_cap_rejects_structured(self, served):
        _, _, harness = served
        host, port = harness.address
        # Submit 4 queries on one connection without reading responses:
        # the per-tenant cap (2) must reject the overflow with a
        # structured "rejected" error scoped to the tenant.
        from repro.net.wire import SocketChannel
        import socket as socket_mod

        sock = socket_mod.create_connection((host, port), timeout=10)
        channel = SocketChannel(sock)
        channel.send(MessageType.HELLO, {"tenant": "greedy"})
        assert channel.recv().type is MessageType.HELLO
        wire_poly = polyhedron_to_wire(_queries()[2])
        for request_id in range(1, 5):
            channel.send(
                MessageType.QUERY,
                {"request_id": request_id, "polyhedron": wire_poly},
            )
        rejected = 0
        done = set()
        while len(done) + rejected < 4:
            frame = channel.recv()
            assert frame is not None
            if frame.type is MessageType.ERROR:
                assert frame.header["kind"] == "rejected"
                assert frame.header["scope"] == "tenant"
                rejected += 1
            elif frame.type is MessageType.DONE:
                done.add(frame.header["request_id"])
        channel.close()
        assert rejected >= 1
        assert len(done) >= 2

    def test_report_and_ping(self, served):
        _, service, harness = served
        host, port = harness.address
        with QueryClient(host, port, tenant="obs") as client:
            pong = client.ping()
            assert pong["draining"] is False
            report = client.report()
            assert "service" in report and "engine" in report
            assert report["engine"]["queries"] >= 0

    def test_network_replay_matches_local_execution(self, served):
        engine, _, harness = served
        host, port = harness.address
        polys = _queries() * 3
        report = replay_over_network(host, port, polys, concurrency=3)
        assert report.completed == len(polys)
        assert not report.errors
        for idx, poly in enumerate(polys):
            assert _rows_identical(report.outcomes[idx].rows, engine.execute(poly).rows)
        assert report.report["service"]["completed"] >= len(polys)


class TestGracefulDrain:
    def test_drain_finishes_inflight_then_refuses(self):
        data = _make_data(1500, seed=41)
        shard_set = KdPartitioner(2, buffer_pages=None).partition("drn", data, DIMS)
        engine = ScatterGatherExecutor(shard_set, sample_pages=4, seed=0)
        service = QueryService(None, engine, workers=2, queue_depth=8).start()
        harness = _ServerHarness(service)
        host, port = harness.address
        with QueryClient(host, port, tenant="drain") as client:
            before = client.query(_queries()[2])
            assert len(before.rows["_row_id"]) > 0
            harness.drain()
            # The service stopped with drain=True: nothing was dropped.
            assert not service.running
            with pytest.raises((ServiceClosed, ConnectionError, OSError)):
                client.query(_queries()[0])
        with pytest.raises((ConnectionError, OSError)):
            QueryClient(host, port, tenant="late")
        engine.close()


class TestTransportSelection:
    def test_executor_constructor_dispatches_transports(self):
        data = _make_data(512, seed=43)
        partitioner = KdPartitioner(2, buffer_pages=None)
        specs = partitioner.plan("sel", data, DIMS)
        engine = ScatterGatherExecutor(specs=specs, transport="process")
        try:
            assert isinstance(engine, ShardWorkerPool)
            assert engine.transport == "process"
        finally:
            engine.close()
        with pytest.raises(ValueError):
            ScatterGatherExecutor(specs=specs, transport="carrier-pigeon")
        with pytest.raises(ValueError):
            ScatterGatherExecutor(transport="process")  # no specs

    def test_thread_executor_exposes_worker_stats(self):
        data = _make_data(512, seed=47)
        shard_set = KdPartitioner(2, buffer_pages=None).partition("ws", data, DIMS)
        with ScatterGatherExecutor(shard_set) as engine:
            engine.execute(_queries()[2])
            stats = engine.worker_stats()
            assert len(stats) == 2
            assert sum(entry["requests"] for entry in stats) == 2
            assert all(entry["pid"] is None for entry in stats)
