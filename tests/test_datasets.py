"""Tests for the synthetic science datasets."""

import numpy as np
import pytest

from repro.datasets import (
    CLASS_NAMES,
    FilterBank,
    GaussianMixtureField,
    QueryWorkload,
    SpectrumTemplates,
    make_photoz_dataset,
    sdss_color_sample,
)
from repro.datasets.sdss import CLASS_GALAXY, CLASS_OUTLIER, CLASS_QUASAR, CLASS_STAR


class TestSdssSample:
    @pytest.fixture(scope="class")
    def sample(self):
        return sdss_color_sample(20_000, seed=5)

    def test_shapes(self, sample):
        assert sample.magnitudes.shape == (20_000, 5)
        assert sample.labels.shape == (20_000,)
        assert sample.num_points == 20_000

    def test_all_classes_present(self, sample):
        assert set(np.unique(sample.labels)) == set(CLASS_NAMES)

    def test_fractions_roughly_respected(self, sample):
        fractions = np.bincount(sample.labels) / sample.num_points
        assert abs(fractions[CLASS_STAR] - 0.55) < 0.05
        assert abs(fractions[CLASS_GALAXY] - 0.38) < 0.05

    def test_deterministic_by_seed(self):
        a = sdss_color_sample(1000, seed=9)
        b = sdss_color_sample(1000, seed=9)
        assert np.array_equal(a.magnitudes, b.magnitudes)
        assert np.array_equal(a.labels, b.labels)

    def test_columns_dict(self, sample):
        cols = sample.columns()
        assert set(cols) == {"u", "g", "r", "i", "z", "cls"}
        assert np.allclose(cols["r"], sample.magnitudes[:, 2])

    def test_colors_shape(self, sample):
        colors = sample.colors()
        assert colors.shape == (20_000, 4)
        assert np.allclose(
            colors[:, 0], sample.magnitudes[:, 0] - sample.magnitudes[:, 1]
        )

    def test_quasars_have_uv_excess(self, sample):
        # Quasars separate from stars in u-g (the classic selection).
        colors = sample.colors()
        qso_ug = colors[sample.labels == CLASS_QUASAR, 0]
        star_ug = colors[sample.labels == CLASS_STAR, 0]
        assert np.median(qso_ug) < np.median(star_ug) - 0.5

    def test_highly_nonuniform_density(self, sample):
        # §2.1: orders-of-magnitude density contrast.  Compare occupancy
        # of a coarse grid: top cells vastly denser than median occupied.
        colors = sample.colors()[:, :2]
        hist, _, _ = np.histogram2d(colors[:, 0], colors[:, 1], bins=30)
        occupied = hist[hist > 0]
        assert occupied.max() > 50 * np.median(occupied)

    def test_colors_correlated(self, sample):
        # Points lie near lower-dimensional structure: strong g-r / r-i
        # correlation along the stellar locus.
        colors = sample.colors()
        stars = colors[sample.labels == CLASS_STAR]
        corr = np.corrcoef(stars[:, 1], stars[:, 2])[0, 1]
        assert corr > 0.6

    def test_outliers_far_from_core(self, sample):
        colors = sample.colors()
        core = colors[sample.labels != CLASS_OUTLIER]
        outliers = colors[sample.labels == CLASS_OUTLIER]
        center = np.median(core, axis=0)
        spread = core.std(axis=0)
        z = np.abs((outliers - center) / spread).max(axis=1)
        assert np.median(z) > 3.0

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            sdss_color_sample(100, fractions=(0.5, 0.5, 0.5, -0.5))
        with pytest.raises(ValueError):
            sdss_color_sample(0)


class TestGaussianMixture:
    def test_pdf_integrates_to_one_1d_check(self):
        field = GaussianMixtureField(
            means=np.array([[0.0]]), scales=np.array([[1.0]]), weights=np.array([1.0])
        )
        xs = np.linspace(-8, 8, 4001)[:, None]
        integral = np.trapezoid(field.pdf(xs), xs[:, 0])
        assert np.isclose(integral, 1.0, atol=1e-6)

    def test_sample_matches_pdf_ranking(self):
        field = GaussianMixtureField.default(dim=2, num_components=3, seed=4)
        pts, _ = field.sample(5000, seed=1)
        dens = field.pdf(pts)
        # Sampled points should sit in high-density regions: their median
        # density beats the density of uniform points over the bounding box.
        rng = np.random.default_rng(2)
        lo, hi = pts.min(axis=0), pts.max(axis=0)
        uniform = rng.uniform(lo, hi, size=(5000, 2))
        assert np.median(dens) > np.median(field.pdf(uniform))

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianMixtureField(np.zeros((2, 2)), np.ones((2, 2)), np.array([0.7, 0.7]))
        with pytest.raises(ValueError):
            GaussianMixtureField(np.zeros((2, 2)), np.ones((3, 2)), np.array([0.5, 0.5]))

    def test_component_labels(self):
        field = GaussianMixtureField.default(dim=3, seed=0)
        pts, labels = field.sample(100, seed=0)
        assert pts.shape == (100, 3)
        assert labels.min() >= 0


class TestSpectra:
    @pytest.fixture(scope="class")
    def templates(self):
        return SpectrumTemplates()

    @pytest.fixture(scope="class")
    def filters(self, templates):
        return FilterBank(templates.wavelengths)

    def test_dimension_is_3000(self, templates):
        assert len(templates.wavelengths) == 3000
        assert len(templates.elliptical()) == 3000

    def test_elliptical_redder_than_starburst(self, templates, filters):
        ell = filters.magnitudes(templates.elliptical())
        sb = filters.magnitudes(templates.starburst())
        assert (ell[1] - ell[2]) > (sb[1] - sb[2])  # g - r redder

    def test_redshift_moves_break_through_bands(self, templates, filters):
        # g-r of an elliptical reddens as the 4000 A break crosses g.
        gr = []
        for z in (0.0, 0.2, 0.4):
            mags = filters.magnitudes(templates.elliptical(z))
            gr.append(mags[1] - mags[2])
        assert gr[0] < gr[1] < gr[2]

    def test_blend_endpoints(self, templates):
        assert np.allclose(templates.galaxy_blend(0.0), templates.elliptical())
        assert np.allclose(templates.galaxy_blend(1.0), templates.starburst())
        assert np.allclose(templates.galaxy_blend(0.5), templates.spiral())

    def test_blend_validation(self, templates):
        with pytest.raises(ValueError):
            templates.galaxy_blend(1.5)

    def test_quasar_blue_powerlaw(self, templates, filters):
        qso = filters.magnitudes(templates.quasar())
        ell = filters.magnitudes(templates.elliptical())
        assert (qso[0] - qso[1]) < (ell[0] - ell[1])  # bluer u - g

    def test_star_temperature_sequence(self, templates, filters):
        hot = filters.magnitudes(templates.star(9000.0))
        cool = filters.magnitudes(templates.star(4000.0))
        assert (hot[1] - hot[2]) < (cool[1] - cool[2])

    def test_synthesized_age_reddens(self, templates, filters):
        young = filters.magnitudes(templates.synthesized(age=0.1, dust=0.0))
        old = filters.magnitudes(templates.synthesized(age=0.9, dust=0.0))
        assert (old[1] - old[2]) > (young[1] - young[2])

    def test_synthesized_dust_reddens(self, templates, filters):
        clean = filters.magnitudes(templates.synthesized(age=0.5, dust=0.0))
        dusty = filters.magnitudes(templates.synthesized(age=0.5, dust=0.9))
        assert (dusty[1] - dusty[2]) > (clean[1] - clean[2])

    def test_synthesized_validation(self, templates):
        with pytest.raises(ValueError):
            templates.synthesized(age=2.0, dust=0.0)

    def test_observe_adds_noise_at_snr(self, templates):
        rng = np.random.default_rng(0)
        clean = templates.spiral()
        noisy = templates.observe(clean, snr=20.0, rng=rng)
        residual = noisy - clean
        assert 0.5 < residual.std() / (np.median(np.abs(clean)) / 20.0) < 1.5

    def test_observe_validation(self, templates):
        with pytest.raises(ValueError):
            templates.observe(templates.spiral(), snr=0.0, rng=np.random.default_rng())

    def test_zeropoints_shift_magnitudes(self, templates, filters):
        base = filters.magnitudes(templates.spiral())
        shifted = filters.magnitudes(templates.spiral(), zeropoints={"u": 0.5})
        assert np.isclose(shifted[0] - base[0], 0.5)
        assert np.allclose(shifted[1:], base[1:])


class TestPhotozDataset:
    def test_shapes_and_split(self):
        ds = make_photoz_dataset(num_reference=200, num_unknown=80, seed=2)
        assert ds.reference_magnitudes.shape == (200, 5)
        assert ds.unknown_magnitudes.shape == (80, 5)
        assert ds.num_reference == 200
        assert ds.num_unknown == 80

    def test_redshift_range(self):
        ds = make_photoz_dataset(num_reference=300, num_unknown=50, seed=3)
        assert ds.reference_redshifts.min() >= 0.0
        assert ds.reference_redshifts.max() <= 0.55

    def test_colors_encode_redshift(self):
        # Nearby colors imply nearby redshifts (the relation k-NN
        # exploits).  A single color is partially degenerate with galaxy
        # type, but a linear fit over all four colors predicts z well.
        ds = make_photoz_dataset(num_reference=500, num_unknown=10, seed=4)
        mags = ds.reference_magnitudes
        colors = np.column_stack(
            [mags[:, i] - mags[:, i + 1] for i in range(4)]
        )
        design = np.column_stack([np.ones(len(colors)), colors])
        coeffs, *_ = np.linalg.lstsq(design, ds.reference_redshifts, rcond=None)
        predicted = design @ coeffs
        residual_var = np.var(ds.reference_redshifts - predicted)
        r_squared = 1.0 - residual_var / np.var(ds.reference_redshifts)
        assert r_squared > 0.5


class TestWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        sample = sdss_color_sample(8000, seed=6)
        return QueryWorkload(sample.magnitudes, seed=0), sample

    def test_selectivity_calibration(self, workload):
        generator, sample = workload
        for target in (0.01, 0.05, 0.2):
            achieved = []
            for _ in range(10):
                query = generator.color_cut_query(target)
                frac = query.polyhedron().contains_points(sample.magnitudes).mean()
                achieved.append(frac)
            # Within a factor of ~3 on average (quantile windows are
            # per-axis independent, so correlation skews the joint mass).
            assert 0.2 < np.mean(achieved) / target < 5.0

    def test_all_kinds_runnable(self, workload):
        generator, sample = workload
        for query in generator.mixed(9, [0.02, 0.1]):
            mask_expr = query.expression.evaluate(
                {band: sample.magnitudes[:, i] for i, band in enumerate("ugriz")}
            )
            mask_poly = query.polyhedron().contains_points(sample.magnitudes)
            assert np.array_equal(mask_expr, mask_poly)

    def test_sql_rendering(self, workload):
        generator, _ = workload
        text = generator.figure2_query().sql()
        assert "AND" in text
        assert "r" in text

    def test_figure2_is_selective(self, workload):
        generator, sample = workload
        frac = (
            generator.figure2_query()
            .polyhedron()
            .contains_points(sample.magnitudes)
            .mean()
        )
        assert frac < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryWorkload(np.zeros((5, 5)))
        with pytest.raises(ValueError):
            QueryWorkload(np.zeros((100, 3)))
