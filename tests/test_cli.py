"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "CIDR 2007" in out
        assert "repro.db" in out

    def test_bench_hint(self, capsys):
        assert main(["bench-hint"]) == 0
        out = capsys.readouterr().out
        assert "benchmark-only" in out

    def test_demo_small(self, capsys):
        assert main(["demo", "--rows", "3000", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2 selection" in out
        assert "full scan" in out
        assert "10-NN" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
