"""Unit tests for the write path: delta tier, ingest WAL, merge policy.

The differential interleavings live in test_differential.py and the
crash-point matrix in test_persistence_recovery.py; this module pins the
component contracts those harnesses build on -- delta-band row ids,
snapshot immutability, WAL-first ordering, out-of-place merge mechanics,
generation retirement, and the mutation-listener seam every cache above
the catalog depends on.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import (
    Box,
    Database,
    DELTA_BASE,
    DeltaTier,
    IngestWal,
    KdTreeIndex,
    MergeDaemon,
    Polyhedron,
    RetryPolicy,
    full_scan,
    knn_boundary_points,
    knn_brute_force,
    merge_table,
)
from repro.ingest.delta import _GRID_MIN_POINTS, DeltaGrid, SHARD_STRIDE, is_delta_id
from repro.ingest.wal import RecordKind

DIMS = ["x", "y", "z"]


def _oids(rows: dict) -> frozenset[int]:
    return frozenset(int(v) for v in rows["oid"])


def _build_kd_db(n: int = 600, seed: int = 0):
    """A kd-indexed 3-d table with a stable ``oid`` identity column."""
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.0, 10.0, size=(n, 3))
    data = {d: pts[:, i] for i, d in enumerate(DIMS)}
    data["oid"] = np.arange(n, dtype=np.int64)
    db = Database.in_memory(buffer_pages=None)
    index = KdTreeIndex.build(db, "t", data, DIMS)
    return db, index, pts


def _batch(rng, count: int, oid_start: int) -> dict[str, np.ndarray]:
    pts = rng.uniform(0.0, 10.0, size=(count, 3))
    batch = {d: pts[:, i] for i, d in enumerate(DIMS)}
    batch["oid"] = np.arange(oid_start, oid_start + count, dtype=np.int64)
    return batch


class TestDeltaTier:
    @pytest.fixture()
    def tier(self):
        return DeltaTier(
            {"x": np.dtype(np.float64), "oid": np.dtype(np.int64)}, dims=("x",)
        )

    def test_insert_assigns_delta_band_ids(self, tier):
        ids = tier.insert({"x": np.arange(3.0), "oid": np.arange(3)})
        assert ids.dtype == np.int64
        assert list(ids) == [DELTA_BASE, DELTA_BASE + 1, DELTA_BASE + 2]
        more = tier.insert({"x": np.arange(2.0), "oid": np.arange(2)})
        assert list(more) == [DELTA_BASE + 3, DELTA_BASE + 4]
        assert is_delta_id(ids).all()
        assert not is_delta_id(np.arange(10)).any()
        assert SHARD_STRIDE < DELTA_BASE

    def test_insert_validates_columns(self, tier):
        with pytest.raises(KeyError, match="missing"):
            tier.insert({"x": np.arange(2.0)})
        with pytest.raises(KeyError, match="unknown"):
            tier.insert({"x": np.arange(2.0), "oid": np.arange(2), "bogus": [1, 2]})
        with pytest.raises(ValueError, match="length"):
            tier.insert({"x": np.arange(2.0), "oid": np.arange(3)})

    def test_delete_counts_and_idempotency(self, tier):
        ids = tier.insert({"x": np.arange(4.0), "oid": np.arange(4)})
        main, delta = tier.delete(np.array([7, ids[1]]))
        assert (main, delta) == (1, 1)
        # Deleting the same rows again is a no-op, not an error.
        main, delta = tier.delete(np.array([7, ids[1]]))
        assert (main, delta) == (0, 0)
        assert tier.num_live == 3
        assert tier.num_tombstones == 1

    def test_delete_unknown_delta_id_raises(self, tier):
        with pytest.raises(IndexError, match="delta row id"):
            tier.delete(np.array([DELTA_BASE + 99]))

    def test_frozen_tier_refuses_writes(self, tier):
        tier.insert({"x": np.arange(2.0), "oid": np.arange(2)})
        tier.freeze()
        with pytest.raises(RuntimeError, match="frozen"):
            tier.insert({"x": np.arange(1.0), "oid": np.arange(1)})
        with pytest.raises(RuntimeError, match="frozen"):
            tier.delete(np.array([0]))
        # Frozen tiers still serve reads: in-flight queries keep their view.
        assert tier.snapshot().num_rows == 2

    def test_snapshot_cached_until_next_write(self, tier):
        tier.insert({"x": np.arange(2.0), "oid": np.arange(2)})
        first = tier.snapshot()
        assert tier.snapshot() is first
        tier.delete(np.array([3]))
        second = tier.snapshot()
        assert second is not first
        assert second.epoch > first.epoch
        # The old snapshot is immutable: the delete is invisible to it.
        assert first.num_tombstones == 0

    def test_snapshot_excludes_deleted_delta_rows(self, tier):
        ids = tier.insert({"x": np.arange(5.0), "oid": np.arange(5)})
        tier.delete(np.array([ids[0], ids[3], 42, 17]))
        snapshot = tier.snapshot()
        assert list(snapshot.row_ids) == [ids[1], ids[2], ids[4]]
        assert list(snapshot.columns["x"]) == [1.0, 2.0, 4.0]
        # Main tombstones come back sorted for searchsorted suppression.
        assert list(snapshot.tombstones) == [17, 42]
        alive = snapshot.alive(np.array([16, 17, 18, 42]))
        assert list(alive) == [True, False, True, False]

    def test_churn_counts_inserts_and_main_tombstones(self, tier):
        assert tier.churn == 0
        ids = tier.insert({"x": np.arange(3.0), "oid": np.arange(3)})
        tier.delete(np.array([5, ids[0]]))
        # Churn is merge *work*: every insert (even a dead one) plus every
        # main tombstone must be drained; delta tombstones ride along free.
        assert tier.churn == 4


class TestDeltaGrid:
    def test_grid_match_equals_brute_force(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(-5.0, 5.0, size=(1000, 3))
        grid = DeltaGrid(points)
        for _ in range(10):
            center = rng.uniform(-4.0, 4.0, size=3)
            width = rng.uniform(0.5, 6.0)
            poly = Polyhedron.from_box(Box(center - width / 2, center + width / 2))
            assert np.array_equal(grid.match(poly), poly.contains_points(points))

    def test_snapshot_uses_grid_past_threshold(self):
        tier = DeltaTier(
            {d: np.dtype(np.float64) for d in DIMS}, dims=tuple(DIMS)
        )
        rng = np.random.default_rng(4)
        pts = rng.uniform(0.0, 1.0, size=(_GRID_MIN_POINTS + 50, 3))
        tier.insert({d: pts[:, i] for i, d in enumerate(DIMS)})
        snapshot = tier.snapshot()
        poly = Polyhedron.from_box(Box(np.full(3, 0.2), np.full(3, 0.7)))
        mask = snapshot.match_mask(poly)
        assert snapshot._grid is not None  # the grid path actually ran
        assert np.array_equal(mask, poly.contains_points(pts))

    def test_small_snapshot_brute_forces(self):
        tier = DeltaTier(
            {d: np.dtype(np.float64) for d in DIMS}, dims=tuple(DIMS)
        )
        pts = np.random.default_rng(5).uniform(0.0, 1.0, size=(10, 3))
        tier.insert({d: pts[:, i] for i, d in enumerate(DIMS)})
        snapshot = tier.snapshot()
        poly = Polyhedron.from_box(Box(np.zeros(3), np.full(3, 0.5)))
        assert np.array_equal(
            snapshot.match_mask(poly), poly.contains_points(pts)
        )
        assert snapshot._grid is None


class TestIngestWal:
    def test_insert_and_delete_records_roundtrip(self):
        wal = IngestWal()
        columns = {"x": np.arange(3.0), "oid": np.arange(3, dtype=np.int64)}
        seq1 = wal.append_insert("t", columns)
        seq2 = wal.append_delete("t", np.array([4, 9], dtype=np.int64))
        assert seq2 == seq1 + 1
        records = wal.records()
        assert [r.kind for r in records] == [RecordKind.INSERT, RecordKind.DELETE]
        assert all(r.verify() for r in records)
        decoded = records[0].decode_insert()
        assert np.array_equal(decoded["x"], columns["x"])
        assert np.array_equal(decoded["oid"], columns["oid"])
        assert list(records[1].decode_delete()) == [4, 9]

    def test_frames_carry_sequence_across_reopen(self):
        wal = IngestWal()
        wal.append_insert("t", {"x": np.arange(2.0)})
        wal.append_merge_begin("t", 1)
        reopened = IngestWal(wal.frames())
        seq = reopened.append_merge_commit("t", 1)
        assert seq == 3  # continues, never reuses, the crashed log's numbering

    def test_truncate_keeps_fences(self):
        wal = IngestWal()
        wal.append_insert("t", {"x": np.arange(2.0)})
        wal.append_delete("t", np.array([1], dtype=np.int64))
        wal.append_insert("other", {"x": np.arange(1.0)})
        wal.append_merge_begin("t", 1)
        commit = wal.append_merge_commit("t", 1)
        dropped = wal.truncate_table("t", commit)
        assert dropped == 2
        kinds = [(r.table, r.kind) for r in wal.records()]
        assert ("other", RecordKind.INSERT) in kinds
        assert ("t", RecordKind.MERGE_BEGIN) in kinds
        assert ("t", RecordKind.MERGE_COMMIT) in kinds
        assert ("t", RecordKind.INSERT) not in kinds

    def test_replay_applies_unmerged_records(self):
        db, index, _ = _build_kd_db(n=200, seed=1)
        rng = np.random.default_rng(2)
        batch = _batch(rng, 5, oid_start=200)
        ids = db.table("t").insert_rows(batch)
        db.table("t").delete_rows(np.array([3, ids[0]]))

        # "Crash": only the WAL frames survive; the replica rebuilt the
        # base table from its (pre-crash) pages.
        replica, _, _ = _build_kd_db(n=200, seed=1)
        applied = IngestWal(db.ingest_wal.frames()).replay(replica)
        assert applied == 2
        rows, _ = full_scan(replica.table("t"), columns=["oid"])
        expected, _ = full_scan(db.table("t"), columns=["oid"])
        assert _oids(rows) == _oids(expected)

    def test_replay_skips_records_merged_before_the_crash(self):
        db, index, _ = _build_kd_db(n=200, seed=3)
        rng = np.random.default_rng(4)
        db.table("t").insert_rows(_batch(rng, 4, oid_start=200))
        merge_table(db, "t")
        db.table("t").insert_rows(_batch(rng, 2, oid_start=204))

        replica, _, _ = _build_kd_db(n=200, seed=3)
        # The replica stands in for the merged generation's pages, so only
        # the post-commit insert record may be redone.
        applied = IngestWal(db.ingest_wal.frames()).replay(replica)
        assert applied == 1
        assert replica.table("t").num_live_rows == 202

    def test_replay_ignores_unpaired_merge_begin(self):
        db, index, _ = _build_kd_db(n=100, seed=5)
        rng = np.random.default_rng(6)
        db.table("t").insert_rows(_batch(rng, 3, oid_start=100))
        # The merge crashed after its begin fence, before any swap.
        db.ingest_wal.append_merge_begin("t", 1)

        replica, _, _ = _build_kd_db(n=100, seed=5)
        applied = IngestWal(db.ingest_wal.frames()).replay(replica)
        assert applied == 1
        assert replica.table("t").num_live_rows == 103

    def test_replay_skips_unknown_tables(self, caplog):
        wal = IngestWal()
        wal.append_insert("ghost", {"x": np.arange(1.0)})
        db = Database.in_memory()
        with caplog.at_level("WARNING", logger="repro.ingest.wal"):
            assert wal.replay(db) == 0
        assert any("unknown table" in m for m in caplog.messages)

    def test_corrupt_frame_skipped_or_raised(self, caplog):
        db, index, _ = _build_kd_db(n=100, seed=7)
        rng = np.random.default_rng(8)
        db.table("t").insert_rows(_batch(rng, 2, oid_start=100))
        db.table("t").insert_rows(_batch(rng, 2, oid_start=102))
        frames = db.ingest_wal.frames()
        mangled = bytearray(frames[0])
        mangled[-1] ^= 0xFF  # payload byte flip: checksum must catch it
        frames[0] = bytes(mangled)

        replica, _, _ = _build_kd_db(n=100, seed=7)
        with caplog.at_level("WARNING", logger="repro.ingest.wal"):
            applied = IngestWal(frames).replay(replica)
        assert applied == 1
        assert any("checksum" in m for m in caplog.messages)
        with pytest.raises(ValueError, match="checksum"):
            IngestWal(frames).replay(_build_kd_db(n=100, seed=7)[0], on_corrupt="raise")

    def test_mangled_magic_skipped_or_raised(self):
        db, index, _ = _build_kd_db(n=100, seed=9)
        db.table("t").insert_rows(_batch(np.random.default_rng(1), 2, 100))
        frames = db.ingest_wal.frames()
        frames[0] = b"XXXX" + frames[0][4:]
        replica, _, _ = _build_kd_db(n=100, seed=9)
        assert IngestWal(frames).replay(replica) == 0
        with pytest.raises(ValueError, match="magic"):
            IngestWal(frames).replay(replica, on_corrupt="raise")

    def test_dangling_delete_skipped_or_raised(self, caplog):
        # A delete whose target insert was torn away: replay must not
        # invent a tombstone for a row that never came back.
        db, index, _ = _build_kd_db(n=100, seed=10)
        ids = db.table("t").insert_rows(_batch(np.random.default_rng(2), 2, 100))
        db.table("t").delete_rows(np.array([ids[1]]))
        frames = db.ingest_wal.frames()
        del frames[0]  # the insert record is gone; its delete now dangles
        replica, _, _ = _build_kd_db(n=100, seed=10)
        with caplog.at_level("WARNING", logger="repro.ingest.wal"):
            assert IngestWal(frames).replay(replica) == 0
        assert any("dangling" in m for m in caplog.messages)
        with pytest.raises(ValueError, match="unrecovered"):
            IngestWal(frames).replay(
                _build_kd_db(n=100, seed=10)[0], on_corrupt="raise"
            )

    def test_replay_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="on_corrupt"):
            IngestWal().replay(Database.in_memory(), on_corrupt="ignore")


class TestTableWritePath:
    @pytest.fixture()
    def setup(self):
        return _build_kd_db(n=600, seed=11)

    def test_wal_records_precede_delta_visibility(self, setup):
        db, index, _ = setup
        table = db.table("t")
        table.insert_rows(_batch(np.random.default_rng(3), 3, 600))
        records = db.ingest_wal.records()
        assert [r.kind for r in records] == [RecordKind.INSERT]
        assert records[0].table == "t"

    def test_insert_visible_to_scan_kd_and_knn(self, setup):
        db, index, _ = setup
        table = db.table("t")
        probe = np.array([5.0, 5.0, 5.0])
        batch = {
            "x": np.array([5.01]), "y": np.array([5.01]), "z": np.array([5.01]),
            "oid": np.array([600], dtype=np.int64),
        }
        ids = table.insert_rows(batch)
        assert ids[0] >= DELTA_BASE

        rows, _ = full_scan(table, columns=["oid"])
        assert 600 in _oids(rows)

        poly = Polyhedron.from_box(Box(probe - 0.5, probe + 0.5))
        kd_rows, _ = index.query_polyhedron(poly)
        assert 600 in _oids(kd_rows)

        result = knn_boundary_points(index, probe, 1)
        assert list(result.row_ids) == [int(ids[0])]

    def test_knn_matches_brute_force_with_live_delta(self, setup):
        db, index, _ = setup
        table = db.table("t")
        rng = np.random.default_rng(12)
        table.insert_rows(_batch(rng, 40, oid_start=600))
        table.delete_rows(np.arange(0, 30, dtype=np.int64))
        for _ in range(5):
            probe = rng.uniform(0.0, 10.0, size=3)
            exact = knn_boundary_points(index, probe, 8)
            brute = knn_brute_force(table, DIMS, probe, 8)
            assert np.allclose(np.sort(exact.distances), np.sort(brute.distances))

    def test_delete_suppresses_main_and_delta_rows(self, setup):
        db, index, _ = setup
        table = db.table("t")
        ids = table.insert_rows(_batch(np.random.default_rng(13), 2, 600))
        # The table is clustered by kd_leaf, so row ids are positions in
        # clustered order: resolve the victims' row ids by oid first.
        before, _ = full_scan(table, columns=["oid"])
        victims = before["_row_id"][np.isin(before["oid"], [0, 1])]
        deleted = table.delete_rows(np.concatenate([victims, ids[:1]]))
        assert deleted == 3
        rows, _ = full_scan(table, columns=["oid"])
        got = _oids(rows)
        assert {0, 1, 600}.isdisjoint(got)
        assert 601 in got
        assert table.num_live_rows == 600 - 2 + 1

    def test_delete_out_of_range_raises(self, setup):
        db, index, _ = setup
        with pytest.raises(IndexError, match="out of range"):
            db.table("t").delete_rows(np.array([600]))

    def test_kd_leaf_synthesized_per_inserted_point(self, setup):
        db, index, _ = setup
        table = db.table("t")
        batch = _batch(np.random.default_rng(14), 20, oid_start=600)
        table.insert_rows(batch)
        snapshot = table.delta_snapshot()
        tree = index.tree
        pts = np.column_stack([batch[d] for d in DIMS])
        expected = [
            tree.post_order_id(tree.leaf_of_point(p)) for p in pts
        ]
        assert list(snapshot.columns["kd_leaf"]) == expected

    def test_insert_rejects_non_finite_coordinates(self, setup):
        db, index, _ = setup
        with pytest.raises(ValueError, match="finite"):
            db.table("t").insert_rows(
                {
                    "x": np.array([np.nan]), "y": np.array([1.0]),
                    "z": np.array([1.0]), "oid": np.array([600]),
                }
            )

    def test_layout_version_bumps_on_every_write(self, setup):
        db, index, _ = setup
        table = db.table("t")
        versions = [table.layout_version]
        table.insert_rows(_batch(np.random.default_rng(15), 1, 600))
        versions.append(table.layout_version)
        table.delete_rows(np.array([0]))
        versions.append(table.layout_version)
        assert len(set(versions)) == 3

    def test_clean_table_has_no_delta(self, setup):
        db, index, _ = setup
        table = db.table("t")
        assert table.delta_snapshot() is None
        assert not table.has_live_delta()
        assert table.layout_version == "g0.e0"
        assert table.num_live_rows == table.num_rows


class TestMerge:
    def test_merge_folds_delta_into_new_generation(self):
        db, index, pts = _build_kd_db(n=400, seed=20)
        table = db.table("t")
        rng = np.random.default_rng(21)
        ids = table.insert_rows(_batch(rng, 30, oid_start=400))
        table.delete_rows(np.concatenate([np.arange(10), ids[:5]]))
        before, _ = full_scan(table, columns=["oid"])

        report = merge_table(db, "t")
        assert report.merged
        assert report.generation == 1
        assert report.rows_before == 400
        assert report.rows_after == 400 - 10 + 25
        assert report.delta_rows_applied == 25
        assert report.tombstones_dropped == 10

        merged = db.table("t")
        assert merged.physical_name == "t@g1"
        assert merged.layout_version == "g1.e0"
        assert merged.num_rows == report.rows_after
        assert not merged.has_live_delta()
        after, _ = full_scan(merged, columns=["oid"])
        assert _oids(after) == _oids(before)

    def test_merge_answers_match_before_and_after(self):
        db, index, _ = _build_kd_db(n=500, seed=22)
        table = db.table("t")
        rng = np.random.default_rng(23)
        table.insert_rows(_batch(rng, 60, oid_start=500))
        table.delete_rows(rng.choice(500, size=40, replace=False).astype(np.int64))
        poly = Polyhedron.from_box(Box(np.full(3, 2.0), np.full(3, 8.0)))
        pre_rows, _ = index.query_polyhedron(poly)
        merge_table(db, "t")
        new_index = db.index("t.kdtree")
        post_rows, _ = new_index.query_polyhedron(poly)
        assert _oids(post_rows) == _oids(pre_rows)

    def test_clean_merge_is_a_noop(self):
        db, index, _ = _build_kd_db(n=100, seed=24)
        report = merge_table(db, "t")
        assert not report.merged
        assert db.table("t").physical_name == "t"
        payload = report.as_dict()
        assert payload["merged"] is False and payload["table"] == "t"

    def test_inflight_query_keeps_the_old_layout(self):
        db, index, _ = _build_kd_db(n=300, seed=25)
        table = db.table("t")
        old_table, old_index = table, index
        ids = table.insert_rows(_batch(np.random.default_rng(26), 10, 300))
        poly = Polyhedron.from_box(Box(np.zeros(3), np.full(3, 10.0)))
        expected = _oids(old_index.query_polyhedron(poly)[0])

        merge_table(db, "t")
        # A query that resolved the old table object before the swap
        # still reads the old pages plus the frozen delta -- same answer.
        assert db.table("t") is not old_table
        stale_rows, _ = old_index.query_polyhedron(poly)
        assert _oids(stale_rows) == expected
        # But the frozen tier refuses new writes routed at the old object.
        with pytest.raises(RuntimeError, match="frozen"):
            old_table._ingest_state.delta.insert(
                {c: np.zeros(1, dtype=old_table.dtype_of(c))
                 for c in old_table.column_names}
            )
        # Writes through the catalog land in the *new* generation's tier.
        db.table("t").delete_rows(np.array([int(i) for i in range(3)]))
        assert db.table("t").has_live_delta()

    def test_merge_regenerates_zone_maps_under_new_namespace(self):
        db, index, _ = _build_kd_db(n=400, seed=27)
        assert db.zone_map("t") is not None
        db.table("t").insert_rows(_batch(np.random.default_rng(28), 8, 400))
        merge_table(db, "t")
        assert db.zone_map("t@g1") is not None

    def test_generation_retirement_has_one_merge_grace(self):
        db, index, _ = _build_kd_db(n=300, seed=29)
        rng = np.random.default_rng(30)
        storage = db.storage

        db.table("t").insert_rows(_batch(rng, 5, 300))
        merge_table(db, "t")
        # g0 pages survive the merge that superseded them (in-flight grace).
        assert storage.num_pages("t") > 0
        assert storage.num_pages("t@g1") > 0

        db.table("t").insert_rows(_batch(rng, 5, 305))
        merge_table(db, "t")
        # The next merge retires them; g1 now rides its own grace period.
        assert storage.num_pages("t") == 0
        assert storage.num_pages("t@g1") > 0
        assert storage.num_pages("t@g2") > 0

    def test_merge_truncates_the_tables_redo_records(self):
        db, index, _ = _build_kd_db(n=200, seed=31)
        db.table("t").insert_rows(_batch(np.random.default_rng(32), 6, 200))
        db.table("t").delete_rows(np.array([0, 1]))
        merge_table(db, "t")
        kinds = [r.kind for r in db.ingest_wal.records() if r.table == "t"]
        assert RecordKind.INSERT not in kinds
        assert RecordKind.DELETE not in kinds
        assert kinds[-2:] == [RecordKind.MERGE_BEGIN, RecordKind.MERGE_COMMIT]

    def test_merge_refuses_to_empty_a_kd_table(self):
        db, index, _ = _build_kd_db(n=64, seed=33)
        db.table("t").delete_rows(np.arange(64, dtype=np.int64))
        with pytest.raises(ValueError, match="empty"):
            merge_table(db, "t")

    def test_drop_table_cleans_every_generation(self):
        db, index, _ = _build_kd_db(n=200, seed=34)
        db.table("t").insert_rows(_batch(np.random.default_rng(35), 4, 200))
        merge_table(db, "t")
        db.drop_table("t")
        assert db.storage.num_pages("t") == 0
        assert db.storage.num_pages("t@g1") == 0
        assert db.ingest.state("t") is None


class TestMergePolicy:
    def test_delta_fraction_tracks_churn(self):
        db, index, _ = _build_kd_db(n=100, seed=40)
        assert db.ingest.delta_fraction("t") == 0.0
        db.table("t").insert_rows(_batch(np.random.default_rng(41), 10, 100))
        db.table("t").delete_rows(np.arange(5, dtype=np.int64))
        assert db.ingest.delta_fraction("t") == pytest.approx(0.15)

    def test_maybe_merge_respects_threshold(self):
        db, index, _ = _build_kd_db(n=100, seed=42)
        db.table("t").insert_rows(_batch(np.random.default_rng(43), 10, 100))
        assert db.ingest.maybe_merge("t", threshold=0.2) is None
        assert db.table("t").physical_name == "t"
        report = db.ingest.maybe_merge("t", threshold=0.05)
        assert report is not None and report.merged
        # Once drained, the same threshold no longer fires.
        assert db.ingest.maybe_merge("t", threshold=0.05) is None

    def test_merge_all_sweeps_every_dirty_table(self):
        db = Database.in_memory(buffer_pages=None)
        rng = np.random.default_rng(44)
        for name in ("a", "b"):
            pts = rng.uniform(0.0, 10.0, size=(100, 3))
            data = {d: pts[:, i] for i, d in enumerate(DIMS)}
            data["oid"] = np.arange(100, dtype=np.int64)
            KdTreeIndex.build(db, name, data, DIMS)
        db.table("a").insert_rows(_batch(rng, 3, 100))
        reports = db.ingest.merge_all()
        assert [r.table for r in reports] == ["a"]

    def test_merge_daemon_drains_past_threshold(self):
        db, index, _ = _build_kd_db(n=200, seed=45)
        daemon = MergeDaemon(db, tables=["t"], threshold=0.2, interval_s=0.01)
        with daemon:
            db.table("t").insert_rows(_batch(np.random.default_rng(46), 60, 200))
            deadline = 200
            while daemon.merges == 0 and deadline:
                time.sleep(0.02)
                deadline -= 1
        assert daemon.merges >= 1
        assert daemon.errors == []
        assert db.table("t").physical_name == "t@g1"
        assert not db.table("t").has_live_delta()

    def test_merge_daemon_start_stop_idempotent(self):
        db, _, _ = _build_kd_db(n=64, seed=47)
        daemon = MergeDaemon(db, interval_s=0.01)
        daemon.start()
        daemon.start()
        daemon.stop()
        daemon.stop()
        assert daemon.errors == []


class TestMutationListeners:
    def test_duplicate_registration_fires_once(self):
        db, _, _ = _build_kd_db(n=64, seed=50)
        calls: list[str] = []
        listener = calls.append
        db.add_mutation_listener(listener)
        db.add_mutation_listener(listener)  # must dedup, not double-fire
        db.table("t").insert_rows(_batch(np.random.default_rng(51), 1, 64))
        assert calls == ["t"]

    def test_failing_listener_does_not_starve_the_others(self, caplog):
        db, _, _ = _build_kd_db(n=64, seed=52)
        calls: list[str] = []

        def broken(name: str) -> None:
            raise RuntimeError("listener bug")

        db.add_mutation_listener(broken)
        db.add_mutation_listener(calls.append)
        with caplog.at_level("ERROR", logger="repro.db.catalog"):
            db.table("t").delete_rows(np.array([0]))
        # The healthy listener still saw the mutation (cache invalidation
        # must never be lost to a buggy subscriber), and the failure is
        # loud in the logs rather than swallowed.
        assert calls == ["t"]
        assert any("mutation listener" in m for m in caplog.messages)

    def test_remove_listener_is_noop_when_absent(self):
        db = Database.in_memory()
        db.remove_mutation_listener(lambda name: None)  # must not raise

    def test_listener_fires_on_merge(self):
        db, _, _ = _build_kd_db(n=64, seed=53)
        db.table("t").insert_rows(_batch(np.random.default_rng(54), 2, 64))
        calls: list[str] = []
        db.add_mutation_listener(calls.append)
        merge_table(db, "t")
        assert "t" in calls


@pytest.mark.faultsweep
class TestChurnUnderFaults:
    def test_ingest_churn_stays_correct_with_faulty_storage(self):
        # The ISSUE's churn smoke: random insert/delete/merge rounds on
        # storage that fails ~5% of reads; retries absorb the faults and
        # every query answer must equal the python-side ground truth.
        from .faultutil import BANDS, build_kd_setup, oid_set

        setup = build_kd_setup(
            num_rows=2000, seed=60, retry=RetryPolicy(attempts=4, backoff_s=0.0)
        )
        db, planner = setup.db, setup.planner
        table = db.table("mag")
        rng = np.random.default_rng(61)

        # Ground truth: oid -> point, maintained purely in python.
        rows, _ = full_scan(table, columns=BANDS + ["oid"])
        expected = {
            int(o): np.array([rows[b][j] for b in BANDS])
            for j, o in enumerate(rows["oid"])
        }
        next_oid = 2000

        setup.injector.configure(read_fault_rate=0.05)
        try:
            for round_no in range(4):
                table = db.table("mag")
                pts = rng.normal(
                    [18.0, 17.0, 16.5, 16.2, 16.0], 0.8, size=(40, 5)
                )
                oids = np.arange(next_oid, next_oid + 40, dtype=np.int64)
                batch = {b: pts[:, j] for j, b in enumerate(BANDS)}
                batch["oid"] = oids
                for extra in set(table.column_names) - set(batch) - {"kd_leaf"}:
                    batch[extra] = np.zeros(40, dtype=table.dtype_of(extra))
                table.insert_rows(batch)
                for j, o in enumerate(oids):
                    expected[int(o)] = pts[j]
                next_oid += 40

                # Delete 20 random live rows, addressed by current row id.
                live, _ = full_scan(table, columns=["oid"])
                victims = rng.choice(len(live["oid"]), size=20, replace=False)
                table.delete_rows(live["_row_id"][victims])
                for o in live["oid"][victims]:
                    del expected[int(o)]

                pts_now = np.array(list(expected.values()))
                oids_now = np.array(list(expected.keys()))
                db.cold_cache()  # force real (faultable) storage reads
                for _ in range(3):
                    center = rng.normal([18.0, 17.0, 16.5, 16.2, 16.0], 0.5)
                    width = rng.uniform(0.5, 2.5)
                    box = Box(center - width, center + width)
                    result = planner.execute(Polyhedron.from_box(box))
                    assert not result.fallback
                    want = set(
                        int(o)
                        for o in oids_now[box.contains_points(pts_now)]
                    )
                    assert oid_set(result.rows) == want

                if round_no % 2 == 1:
                    report = db.ingest.merge("mag")
                    assert report.merged
            assert setup.injector.reads_failed > 0  # the sweep actually hurt
        finally:
            setup.injector.quiesce()
