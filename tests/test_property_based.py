"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.kdtree import KdTree
from repro.db import Database, Page, PageCodec
from repro.geometry import Box, BoxRelation, Halfspace, Polyhedron
from repro.geometry.sfc import hilbert_decode, hilbert_index, morton_indices
from repro.vectype import NativeBinaryCodec, UdtPickleCodec

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def points_strategy(min_rows=1, max_rows=64, dim=3):
    return hnp.arrays(
        np.float64,
        st.tuples(st.integers(min_rows, max_rows), st.just(dim)),
        elements=finite_floats,
    )


class TestBoxProperties:
    @given(points_strategy())
    @settings(max_examples=50, deadline=None)
    def test_bounding_box_contains_its_points(self, pts):
        box = Box.from_points(pts)
        assert box.contains_points(pts).all()

    @given(points_strategy(min_rows=2), st.integers(0, 2), st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_split_partitions_points(self, pts, axis, frac):
        box = Box.from_points(pts)
        value = box.lo[axis] + frac * (box.hi[axis] - box.lo[axis])
        low, high = box.split(axis, value)
        in_low = low.contains_points(pts)
        in_high = high.contains_points(pts)
        # Closed halves: every point is in at least one side.
        assert (in_low | in_high).all()

    @given(points_strategy(min_rows=1), hnp.arrays(np.float64, 3, elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_min_distance_is_a_lower_bound(self, pts, query):
        box = Box.from_points(pts)
        bound = box.min_distance_to_point(query)
        dists = np.linalg.norm(pts - query, axis=1)
        assert bound <= dists.min() + 1e-6

    @given(points_strategy(min_rows=1), hnp.arrays(np.float64, 3, elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_max_distance_is_an_upper_bound(self, pts, query):
        box = Box.from_points(pts)
        bound = box.max_distance_to_point(query)
        dists = np.linalg.norm(pts - query, axis=1)
        assert bound >= dists.max() - 1e-6


class TestPolyhedronProperties:
    @given(
        points_strategy(min_rows=4, max_rows=32),
        hnp.arrays(
            np.float64,
            (4, 3),
            elements=st.floats(-1.0, 1.0, allow_nan=False).filter(
                lambda v: abs(v) > 1e-3
            ),
        ),
        hnp.arrays(np.float64, 4, elements=st.floats(-5.0, 5.0, allow_nan=False)),
    )
    @settings(max_examples=50, deadline=None)
    def test_box_classification_sound(self, pts, normals, offsets):
        poly = Polyhedron.from_inequalities(normals, offsets)
        box = Box.from_points(pts)
        relation = poly.classify_box(box)
        inside = poly.contains_points(pts)
        if relation is BoxRelation.INSIDE:
            assert inside.all()
        elif relation is BoxRelation.OUTSIDE:
            assert not inside.any()

    @given(
        hnp.arrays(np.float64, 3, elements=st.floats(-1, 1).filter(lambda v: abs(v) > 1e-3)),
        st.floats(-3, 3),
        hnp.arrays(np.float64, 3, elements=st.floats(-5, 5)),
    )
    @settings(max_examples=100, deadline=None)
    def test_halfspace_signed_distance_sign_matches_membership(
        self, normal, offset, point
    ):
        hs = Halfspace(normal, offset)
        signed = hs.signed_distance(point)
        if hs.contains_point(point):
            assert signed <= 1e-9
        else:
            assert signed > -1e-9


class TestSfcProperties:
    @given(st.integers(0, 2**9 - 1))
    @settings(max_examples=100, deadline=None)
    def test_hilbert_roundtrip_3d(self, code):
        pt = hilbert_decode(code, 3, 3)
        assert hilbert_index(pt, 3) == code

    @given(
        hnp.arrays(
            np.int64, st.tuples(st.integers(1, 30), st.just(2)),
            elements=st.integers(0, 255),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_morton_preserves_equality(self, coords):
        codes = morton_indices(coords, bits=8)
        for i in range(len(coords)):
            for j in range(len(coords)):
                if np.array_equal(coords[i], coords[j]):
                    assert codes[i] == codes[j]
                else:
                    assert codes[i] != codes[j]


class TestKdTreeProperties:
    @given(points_strategy(min_rows=16, max_rows=200), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_leaves_partition_points(self, pts, levels):
        if 2 ** (levels - 1) > len(pts):
            return
        tree = KdTree(pts, num_levels=levels)
        covered = []
        for leaf in range(tree.first_leaf, 2 * tree.first_leaf):
            start, end = tree.node_rows(leaf)
            covered.extend(tree.permutation[start:end].tolist())
        assert sorted(covered) == list(range(len(pts)))

    @given(points_strategy(min_rows=16, max_rows=200))
    @settings(max_examples=25, deadline=None)
    def test_balance_within_one(self, pts):
        tree = KdTree(pts, num_levels=3)
        sizes = [tree.leaf_size(leaf) for leaf in range(4, 8)]
        assert max(sizes) - min(sizes) <= 1

    @given(points_strategy(min_rows=8, max_rows=100))
    @settings(max_examples=25, deadline=None)
    def test_points_inside_leaf_partition_boxes(self, pts):
        tree = KdTree(pts, num_levels=3)
        for leaf in range(4, 8):
            start, end = tree.node_rows(leaf)
            rows = tree.permutation[start:end]
            if len(rows):
                box = tree.partition_box(leaf).expanded(1e-9)
                assert box.contains_points(pts[rows]).all()


class TestCodecProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 50), st.just(4)),
            elements=st.floats(allow_nan=False, width=64),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_native_codec_roundtrip(self, vectors):
        codec = NativeBinaryCodec(4)
        assert np.array_equal(codec.decode_rows(codec.encode_rows(vectors)), vectors)

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 20), st.just(4)),
            elements=st.floats(allow_nan=False, width=64),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_udt_codec_roundtrip(self, vectors):
        codec = UdtPickleCodec(4)
        assert np.array_equal(codec.decode_rows(codec.encode_rows(vectors)), vectors)


class TestPageProperties:
    @given(
        hnp.arrays(np.float64, st.integers(0, 100), elements=finite_floats),
        st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_page_codec_roundtrip(self, column, start_row):
        page = Page(page_id=1, start_row=start_row, columns={"c": column})
        decoded = PageCodec.decode(PageCodec.encode(page))
        assert np.array_equal(decoded.columns["c"], column)
        assert decoded.start_row == start_row


class TestTableProperties:
    @given(
        hnp.arrays(np.float64, st.integers(1, 300), elements=finite_floats),
        st.integers(1, 64),
    )
    @settings(max_examples=25, deadline=None)
    def test_scan_recovers_clustered_column(self, values, rows_per_page):
        db = Database.in_memory(buffer_pages=None)
        table = db.create_table(
            "t", {"v": values}, rows_per_page=rows_per_page, clustered_by=("v",)
        )
        out = table.read_column("v")
        assert np.array_equal(out, np.sort(values))

    @given(
        hnp.arrays(np.float64, st.integers(2, 200), elements=finite_floats),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_gather_any_subset(self, values, data):
        db = Database.in_memory(buffer_pages=None)
        table = db.create_table("t", {"v": values}, rows_per_page=16)
        ids = data.draw(
            st.lists(st.integers(0, len(values) - 1), min_size=0, max_size=20)
        )
        out = table.gather(np.array(ids, dtype=np.int64))
        assert np.array_equal(out["v"], values[ids])


class TestExpressionFuzz:
    """Random linear expression trees: AST evaluation == polyhedron form."""

    @staticmethod
    def _random_linear_expr(rng, columns, depth=0):
        from repro.db.expressions import Col, Const

        roll = rng.random()
        if depth >= 3 or roll < 0.3:
            if rng.random() < 0.7:
                return Col(str(rng.choice(columns)))
            return Const(float(rng.uniform(-3, 3)))
        left = TestExpressionFuzz._random_linear_expr(rng, columns, depth + 1)
        op = rng.choice(["+", "-", "*", "/"])
        if op == "*":
            return left * float(rng.uniform(-2, 2))
        if op == "/":
            return left / float(rng.choice([2.0, -4.0, 0.5]))
        right = TestExpressionFuzz._random_linear_expr(rng, columns, depth + 1)
        return left + right if op == "+" else left - right

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_polyhedron_matches_evaluation(self, seed):
        from repro.db.expressions import (
            LinearExtractionError,
            expression_to_polyhedron,
        )

        rng = np.random.default_rng(seed)
        columns = ["a", "b", "c"]
        data = {name: rng.normal(size=64) for name in columns}
        pts = np.column_stack([data[name] for name in columns])

        expr = None
        for _ in range(int(rng.integers(1, 4))):
            left = self._random_linear_expr(rng, columns)
            right = self._random_linear_expr(rng, columns)
            op = rng.choice(["<", "<=", ">", ">="])
            comparison = {
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[str(op)]
            expr = comparison if expr is None else expr & comparison
        try:
            poly = expression_to_polyhedron(expr, columns)
        except LinearExtractionError:
            return  # degenerate comparison (constant vs constant); fine
        ast_mask = expr.evaluate(data)
        poly_mask = poly.contains_points(pts)
        # Closed vs strict differ only on measure-zero boundaries, which
        # random continuous data misses with probability one.
        assert np.array_equal(ast_mask, poly_mask)


class TestSqlRoundTripFuzz:
    """expression_to_sql o parse_where == identity (semantically)."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_sql_text_roundtrip(self, seed):
        from repro.db.expressions import expression_to_sql
        from repro.db.sqlparse import parse_where

        rng = np.random.default_rng(seed)
        columns = ["a", "b", "c"]
        data = {name: rng.normal(size=32) for name in columns}

        expr = None
        for _ in range(int(rng.integers(1, 4))):
            left = TestExpressionFuzz._random_linear_expr(rng, columns)
            right = TestExpressionFuzz._random_linear_expr(rng, columns)
            op = str(rng.choice(["<", "<=", ">", ">="]))
            comparison = {
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[op]
            if expr is None:
                expr = comparison
            elif rng.random() < 0.3:
                expr = expr | comparison
            else:
                expr = expr & comparison
        if rng.random() < 0.2:
            expr = ~expr

        text = expression_to_sql(expr)
        reparsed = parse_where(text)
        assert np.array_equal(reparsed.evaluate(data), expr.evaluate(data))


class TestAggregateProperties:
    """aggregate_scan agrees with numpy over arbitrary data and paging."""

    @given(
        hnp.arrays(np.float64, st.integers(1, 200), elements=finite_floats),
        st.integers(1, 64),
    )
    @settings(max_examples=30, deadline=None)
    def test_aggregates_match_numpy(self, values, rows_per_page):
        from repro.db import aggregate_scan

        db = Database.in_memory(buffer_pages=None)
        table = db.create_table("t", {"v": values}, rows_per_page=rows_per_page)
        results, _ = aggregate_scan(
            table,
            {
                "n": ("count", None),
                "s": ("sum", "v"),
                "lo": ("min", "v"),
                "hi": ("max", "v"),
                "mean": ("avg", "v"),
            },
        )
        assert results["n"] == len(values)
        assert np.isclose(results["s"], values.sum(), rtol=1e-9, atol=1e-6)
        assert results["lo"] == values.min()
        assert results["hi"] == values.max()
        assert np.isclose(results["mean"], values.mean(), rtol=1e-9, atol=1e-9)

    @given(
        hnp.arrays(np.float64, st.integers(1, 200), elements=finite_floats),
        st.floats(-1e5, 1e5, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_filtered_count_matches_numpy(self, values, threshold):
        from repro.db import Col, count_rows

        db = Database.in_memory(buffer_pages=None)
        table = db.create_table("t", {"v": values}, rows_per_page=16)
        n, _ = count_rows(table, Col("v") > threshold)
        assert n == int((values > threshold).sum())


class TestGridSamplingProperties:
    """Layered grid invariants over random data and boxes."""

    @given(st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_sample_is_subset_of_box(self, seed):
        from repro import LayeredGridIndex

        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(600, 3))
        db = Database.in_memory(buffer_pages=None)
        grid = LayeredGridIndex.build(
            db, "g", {"x": pts[:, 0], "y": pts[:, 1], "z": pts[:, 2]},
            ["x", "y", "z"], base=64, seed=seed,
        )
        center = rng.normal(size=3)
        box = Box(center - rng.uniform(0.2, 2.0, 3), center + rng.uniform(0.2, 2.0, 3))
        result = grid.sample_box(box, int(rng.integers(1, 200)))
        if len(result.points):
            assert box.contains_points(result.points).all()
        # No duplicate rows.
        assert len(np.unique(result.row_ids)) == len(result.row_ids)

    @given(st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_exact_query_matches_brute_force(self, seed):
        from repro import LayeredGridIndex

        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(400, 2))
        db = Database.in_memory(buffer_pages=None)
        grid = LayeredGridIndex.build(
            db, "g", {"x": pts[:, 0], "y": pts[:, 1]}, ["x", "y"],
            base=64, seed=seed,
        )
        center = rng.normal(size=2)
        box = Box(center - 1.0, center + 1.0)
        result = grid.query_box(box)
        assert len(result.row_ids) == int(box.contains_points(pts).sum())


class TestVoronoiIndexProperties:
    """Sampled-Voronoi soundness over random mixtures."""

    @given(st.integers(0, 5000))
    @settings(max_examples=10, deadline=None)
    def test_polyhedron_queries_exact(self, seed):
        from repro import VoronoiIndex

        rng = np.random.default_rng(seed)
        pts = np.vstack(
            [rng.normal(0, 0.5, (300, 2)), rng.normal(2, 0.8, (300, 2))]
        )
        db = Database.in_memory(buffer_pages=None)
        index = VoronoiIndex.build(
            db, "v", {"x": pts[:, 0], "y": pts[:, 1]}, ["x", "y"],
            num_seeds=40, seed=seed,
        )
        center = rng.normal(1.0, 1.0, 2)
        box = Box(center - rng.uniform(0.2, 1.5, 2), center + rng.uniform(0.2, 1.5, 2))
        _, stats = index.query_box(box)
        assert stats.rows_returned == int(box.contains_points(pts).sum())


class TestBallQueryProperties:
    @given(st.integers(0, 5000), st.floats(0.05, 2.0))
    @settings(max_examples=15, deadline=None)
    def test_ball_query_exact(self, seed, radius):
        from repro import KdTreeIndex, ball_query

        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(500, 3))
        db = Database.in_memory(buffer_pages=None)
        index = KdTreeIndex.build(
            db, "b", {"x": pts[:, 0], "y": pts[:, 1], "z": pts[:, 2]},
            ["x", "y", "z"], num_levels=4,
        )
        center = rng.normal(size=3)
        _, stats = ball_query(index, center, radius)
        truth = int((np.linalg.norm(pts - center, axis=1) <= radius).sum())
        assert stats.rows_returned == truth
