"""Tests for expression trees and linear extraction."""

import numpy as np
import pytest

from repro.db import Col, LinearExtractionError, expression_to_polyhedron
from repro.db.expressions import expression_to_sql


@pytest.fixture()
def columns():
    rng = np.random.default_rng(0)
    return {name: rng.normal(size=200) for name in ("u", "g", "r")}


class TestEvaluation:
    def test_arithmetic(self, columns):
        expr = Col("u") * 2.0 + Col("g") / 4.0 - 1.0
        expected = columns["u"] * 2.0 + columns["g"] / 4.0 - 1.0
        assert np.allclose(expr.evaluate(columns), expected)

    def test_right_hand_operators(self, columns):
        expr = 2.0 * Col("u") + (1.0 - Col("g"))
        expected = 2.0 * columns["u"] + 1.0 - columns["g"]
        assert np.allclose(expr.evaluate(columns), expected)

    def test_negation(self, columns):
        assert np.allclose((-Col("u")).evaluate(columns), -columns["u"])

    def test_rdiv(self, columns):
        expr = 1.0 / (Col("u") + 10.0)
        assert np.allclose(expr.evaluate(columns), 1.0 / (columns["u"] + 10.0))

    def test_comparisons(self, columns):
        expr = Col("u") < Col("g")
        assert np.array_equal(expr.evaluate(columns), columns["u"] < columns["g"])

    def test_logic(self, columns):
        expr = (Col("u") > 0) & ~(Col("g") > 0) | (Col("r") >= 2.0)
        expected = (columns["u"] > 0) & ~(columns["g"] > 0) | (columns["r"] >= 2.0)
        assert np.array_equal(expr.evaluate(columns), expected)

    def test_referenced_columns(self):
        expr = (Col("u") - Col("g") < 1.0) & (Col("r") > 0.0)
        assert expr.referenced_columns() == {"u", "g", "r"}

    def test_rejects_foreign_operand(self):
        with pytest.raises(TypeError):
            Col("u") + "nope"


class TestLinearExtraction:
    def test_simple_box(self, columns):
        expr = (Col("u") >= -1.0) & (Col("u") <= 1.0)
        poly = expression_to_polyhedron(expr, ["u", "g"])
        pts = np.column_stack([columns["u"], columns["g"]])
        assert np.array_equal(
            poly.contains_points(pts), expr.evaluate(columns)
        )

    def test_figure2_style(self, columns):
        # An oblique cut in the style of the paper's Figure 2.
        expr = (
            (Col("r") - Col("g") / 4.0 - 0.18 < 0.2)
            & (Col("r") - Col("g") / 4.0 - 0.18 > -0.2)
            & (Col("u") < 1.0)
        )
        poly = expression_to_polyhedron(expr, ["u", "g", "r"])
        pts = np.column_stack([columns["u"], columns["g"], columns["r"]])
        assert np.array_equal(poly.contains_points(pts), expr.evaluate(columns))

    def test_constant_folding(self):
        expr = Col("u") * (2.0 * 3.0) + 1.0 < 13.0
        poly = expression_to_polyhedron(expr, ["u"])
        assert poly.contains_point(np.array([1.9]))
        assert not poly.contains_point(np.array([2.1]))

    def test_division_by_constant(self):
        expr = Col("u") / 2.0 <= 1.0
        poly = expression_to_polyhedron(expr, ["u"])
        assert poly.contains_point(np.array([2.0]))
        assert not poly.contains_point(np.array([2.1]))

    def test_rejects_nonlinear_product(self):
        with pytest.raises(LinearExtractionError):
            expression_to_polyhedron(Col("u") * Col("g") < 1.0, ["u", "g"])

    def test_rejects_division_by_column(self):
        with pytest.raises(LinearExtractionError):
            expression_to_polyhedron(Col("u") / Col("g") < 1.0, ["u", "g"])

    def test_rejects_division_by_zero(self):
        with pytest.raises(LinearExtractionError):
            expression_to_polyhedron(Col("u") / 0.0 < 1.0, ["u"])

    def test_rejects_disjunction(self):
        expr = (Col("u") < 0.0) | (Col("u") > 1.0)
        with pytest.raises(LinearExtractionError):
            expression_to_polyhedron(expr, ["u"])

    def test_rejects_unknown_column(self):
        with pytest.raises(LinearExtractionError):
            expression_to_polyhedron(Col("ghost") < 1.0, ["u"])

    def test_rejects_trivial_comparison(self):
        expr = Col("u") - Col("u") < 1.0
        with pytest.raises(LinearExtractionError):
            expression_to_polyhedron(expr, ["u"])

    def test_greater_than_flips_normal(self):
        poly = expression_to_polyhedron(Col("u") > 2.0, ["u"])
        assert poly.contains_point(np.array([3.0]))
        assert not poly.contains_point(np.array([1.0]))

    def test_closed_vs_strict_equivalent_geometry(self):
        strict = expression_to_polyhedron(Col("u") < 1.0, ["u"])
        closed = expression_to_polyhedron(Col("u") <= 1.0, ["u"])
        assert np.allclose(strict.normals, closed.normals)
        assert np.allclose(strict.offsets, closed.offsets)


class TestSqlRendering:
    def test_round_trippable_text(self):
        expr = (Col("g") - Col("r") < 0.2) & (Col("u") >= 1.0)
        text = expression_to_sql(expr)
        assert text == "(((g - r) < 0.2) AND (u >= 1))"
        assert "AND" in text

    def test_or_and_not(self):
        expr = ~(Col("u") < 0.0) | (Col("g") > 1.0)
        text = expression_to_sql(expr)
        assert "NOT" in text
        assert "OR" in text
