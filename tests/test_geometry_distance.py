"""Tests for metrics and whitening."""

import numpy as np
import pytest

from repro.geometry import Whitener, euclidean, minkowski
from repro.geometry.distance import squared_distances


class TestMetrics:
    def test_euclidean(self):
        assert np.isclose(euclidean([0, 0], [3, 4]), 5.0)

    def test_minkowski_orders(self):
        a, b = [0.0, 0.0], [1.0, 1.0]
        assert np.isclose(minkowski(a, b, 1), 2.0)
        assert np.isclose(minkowski(a, b, 2), np.sqrt(2))
        assert np.isclose(minkowski(a, b, np.inf), 1.0)

    def test_minkowski_rejects_bad_order(self):
        with pytest.raises(ValueError):
            minkowski([0], [1], 0)

    def test_squared_distances(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [3.0, 4.0]])
        d2 = squared_distances(pts, np.zeros(2))
        assert np.allclose(d2, [0.0, 1.0, 25.0])


class TestWhitener:
    def test_std_mode_unit_variance(self):
        rng = np.random.default_rng(0)
        pts = rng.normal([5.0, -2.0], [3.0, 0.1], size=(5000, 2))
        w = Whitener(mode="std").fit(pts)
        out = w.transform(pts)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_zca_mode_identity_covariance(self):
        rng = np.random.default_rng(1)
        cov_sqrt = np.array([[2.0, 0.7], [0.0, 0.5]])
        pts = rng.normal(size=(8000, 2)) @ cov_sqrt.T + [1.0, 2.0]
        w = Whitener(mode="zca").fit(pts)
        out = w.transform(pts)
        cov = np.cov(out, rowvar=False)
        assert np.allclose(cov, np.eye(2), atol=0.05)

    def test_roundtrip(self):
        rng = np.random.default_rng(2)
        pts = rng.normal(size=(100, 3)) * [1.0, 5.0, 0.2]
        for mode in ("std", "zca"):
            w = Whitener(mode=mode).fit(pts)
            back = w.inverse_transform(w.transform(pts))
            assert np.allclose(back, pts, atol=1e-8)

    def test_constant_axis_survives(self):
        pts = np.column_stack([np.ones(10), np.arange(10.0)])
        w = Whitener(mode="std").fit(pts)
        out = w.transform(pts)
        assert np.all(np.isfinite(out))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Whitener().transform(np.zeros((3, 2)))

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            Whitener(mode="pca")

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            Whitener().fit(np.zeros((1, 2)))

    def test_fit_transform(self):
        rng = np.random.default_rng(3)
        pts = rng.normal(size=(50, 2))
        w = Whitener()
        out = w.fit_transform(pts)
        assert out.shape == pts.shape
        assert w.is_fitted
