"""Tests for the k-NN searchers (§3.3)."""

import numpy as np
import pytest

from repro.core import (
    knn_best_first,
    knn_boundary_points,
    knn_brute_force,
)
from repro.core.knn import NeighborList


class TestNeighborList:
    def test_worst_before_full(self):
        lst = NeighborList(3)
        lst.offer(np.array([1.0]), np.array([7]))
        assert lst.worst == float("inf")

    def test_keeps_best_k(self):
        lst = NeighborList(2)
        lst.offer(np.array([3.0, 1.0, 2.0]), np.array([30, 10, 20]))
        rows, dists = lst.finish()
        assert rows.tolist() == [10, 20]
        assert dists.tolist() == [1.0, 2.0]

    def test_safe_count(self):
        lst = NeighborList(3)
        lst.offer(np.array([1.0, 2.0, 3.0]), np.array([1, 2, 3]))
        assert lst.safe_count(2.5) == 2
        assert lst.safe_count(0.5) == 0

    def test_merge_across_offers(self):
        lst = NeighborList(2)
        lst.offer(np.array([5.0]), np.array([50]))
        lst.offer(np.array([1.0]), np.array([10]))
        lst.offer(np.array([3.0]), np.array([30]))
        rows, _ = lst.finish()
        assert rows.tolist() == [10, 30]


class TestAgreement:
    @pytest.mark.parametrize("k", [1, 4, 25])
    def test_all_methods_agree_on_distances(self, kd_index, k):
        rng = np.random.default_rng(101)
        for _ in range(10):
            query = rng.normal([1.5, 1.0, 0.5], 1.5)
            truth = knn_brute_force(kd_index.table, kd_index.dims, query, k)
            bp = knn_boundary_points(kd_index, query, k)
            bf = knn_best_first(kd_index, query, k)
            assert np.allclose(bp.distances, truth.distances)
            assert np.allclose(bf.distances, truth.distances)

    def test_row_ids_match_on_unique_distances(self, kd_index):
        rng = np.random.default_rng(5)
        query = rng.normal(size=3)
        truth = knn_brute_force(kd_index.table, kd_index.dims, query, 10)
        bp = knn_boundary_points(kd_index, query, 10)
        assert set(bp.row_ids.tolist()) == set(truth.row_ids.tolist())

    def test_query_far_outside_data(self, kd_index):
        query = np.array([50.0, 50.0, 50.0])
        truth = knn_brute_force(kd_index.table, kd_index.dims, query, 5)
        bp = knn_boundary_points(kd_index, query, 5)
        assert np.allclose(bp.distances, truth.distances)

    def test_query_on_a_data_point(self, kd_index, clustered_points_3d):
        query = clustered_points_3d[123]
        bp = knn_boundary_points(kd_index, query, 1)
        assert np.isclose(bp.distances[0], 0.0)

    def test_k_larger_than_table(self, kd_index, clustered_points_3d):
        n = len(clustered_points_3d)
        result = knn_boundary_points(kd_index, np.zeros(3), n + 50)
        assert result.k == n
        assert (np.diff(result.distances) >= 0).all()


class TestEfficiency:
    def test_boundary_points_examines_few_boxes(self, kd_index):
        rng = np.random.default_rng(7)
        total_boxes = kd_index.tree.num_leaves
        for _ in range(10):
            query = rng.normal([0.0, 0.0, 0.0], 0.3)
            result = knn_boundary_points(kd_index, query, 5)
            assert result.stats.extra["boxes_examined"] < total_boxes / 2

    def test_fallback_rarely_needed(self, kd_index):
        # The exactness sweep should almost never find boxes the
        # boundary-point discovery missed.
        rng = np.random.default_rng(8)
        fallbacks = 0
        for _ in range(30):
            query = rng.normal([1.5, 1.0, 0.5], 1.0)
            result = knn_boundary_points(kd_index, query, 8)
            fallbacks += result.stats.extra["fallback_boxes"]
        assert fallbacks <= 3

    def test_pages_touched_less_than_full_scan(self, kd_index):
        query = np.array([0.1, 0.1, 0.1])
        truth = knn_brute_force(kd_index.table, kd_index.dims, query, 10)
        bp = knn_boundary_points(kd_index, query, 10)
        assert bp.stats.pages_touched < truth.stats.pages_touched

    def test_results_sorted_ascending(self, kd_index):
        result = knn_boundary_points(kd_index, np.zeros(3), 20)
        assert (np.diff(result.distances) >= 0).all()


class TestValidation:
    def test_k_must_be_positive(self, kd_index):
        with pytest.raises(ValueError):
            knn_boundary_points(kd_index, np.zeros(3), 0)
        with pytest.raises(ValueError):
            knn_best_first(kd_index, np.zeros(3), 0)
        with pytest.raises(ValueError):
            knn_brute_force(kd_index.table, kd_index.dims, np.zeros(3), 0)
