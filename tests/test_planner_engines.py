"""Differential and decision tests of the cost-based multi-engine planner.

Row identity first: on random box/membership mixes the bitmap engine,
the kd-tree, the hybrid prefilter, and the zone-map scan must return
exactly the same rows -- solo, batched, sharded over both transports,
under injected faults, and under ingest churn.  Then the decisions: the
cost model must pick the bitmap on high-selectivity few-dimension
queries and the baseline paths at the extremes, and the forced-engine
knob must override it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Database,
    KdPartitioner,
    KdTreeIndex,
    QueryPlanner,
    ScatterGatherExecutor,
    sdss_color_sample,
)
from repro.bitmap import BitmapIndex
from repro.core.queries import polyhedron_full_scan
from repro.datasets import QueryWorkload
from repro.db import (
    Col,
    FaultInjector,
    FaultyStorage,
    LinearExtractionError,
    MemoryStorage,
    RetryPolicy,
    expression_to_query,
)
from repro.geometry.halfspace import Halfspace, Polyhedron

BANDS = ["u", "g", "r", "i", "z"]
ENGINES = ("auto", "kd", "scan", "bitmap", "hybrid")


def _box(lo, hi) -> Polyhedron:
    halfspaces = []
    for axis, (low, high) in enumerate(zip(lo, hi)):
        e = np.zeros(len(lo))
        e[axis] = 1.0
        halfspaces.append(Halfspace(e, float(high)))
        halfspaces.append(Halfspace(-e, -float(low)))
    return Polyhedron(halfspaces)


def _sample_columns(n: int, seed: int) -> tuple:
    sample = sdss_color_sample(n, seed=seed)
    columns = dict(sample.columns())
    columns["oid"] = np.arange(n, dtype=np.float64)
    return sample, columns


def _query_mix(sample, seed: int, count: int = 12) -> list[Polyhedron]:
    workload = QueryWorkload(sample.magnitudes, seed=seed)
    queries = workload.mixed(count, selectivities=[0.001, 0.01, 0.1, 0.4])
    return [q.polyhedron(BANDS) for q in queries]


def _membership_mix(columns, seed: int, count: int) -> list[dict | None]:
    rng = np.random.default_rng(seed)
    n = len(columns["oid"])
    filters: list[dict | None] = []
    for i in range(count):
        if i % 3 == 0:
            filters.append(None)
        elif i % 3 == 1:
            filters.append(
                {"oid": rng.choice(n, size=max(1, n // 10), replace=False).astype(float)}
            )
        else:
            filters.append(
                {"u": rng.choice(np.asarray(columns["u"]), size=50, replace=False)}
            )
    return filters


def oid_set(rows: dict) -> set:
    return set(float(v) for v in rows["oid"])


@pytest.fixture(scope="module")
def engine_setup():
    sample, columns = _sample_columns(6000, seed=21)
    db = Database.in_memory(buffer_pages=None)
    index = KdTreeIndex.build(db, "mag", dict(columns), BANDS)
    BitmapIndex.build(db, "mag", BANDS)
    return sample, columns, db, index


class TestSoloDifferential:
    def test_all_engines_agree_on_box_membership_mixes(self, engine_setup):
        sample, columns, db, index = engine_setup
        polyhedra = _query_mix(sample, seed=22)
        filters = _membership_mix(columns, seed=23, count=len(polyhedra))
        planners = {
            engine: QueryPlanner(index, seed=9, engine=engine)
            for engine in ENGINES
        }
        for poly, member in zip(polyhedra, filters):
            reference, _ = polyhedron_full_scan(
                db.table("mag"), BANDS, poly, memberships=member
            )
            expected = oid_set(reference)
            for engine, planner in planners.items():
                planned = planner.execute(poly, memberships=member)
                assert oid_set(planned.rows) == expected, (
                    f"{engine} diverged on {poly!r}"
                )

    def test_forced_engines_report_their_path(self, engine_setup):
        sample, columns, db, index = engine_setup
        poly = _query_mix(sample, seed=24, count=1)[0]
        for engine, expected_path in (
            ("kd", "kdtree"),
            ("scan", "scan"),
            ("bitmap", "bitmap"),
            ("hybrid", "hybrid"),
        ):
            planner = QueryPlanner(index, seed=9, engine=engine)
            planned = planner.execute(poly)
            assert planned.chosen_path == expected_path

    def test_forced_bitmap_without_index_degrades(self):
        sample, columns = _sample_columns(1500, seed=25)
        db = Database.in_memory(buffer_pages=None)
        index = KdTreeIndex.build(db, "nobitmap", dict(columns), BANDS)
        planner = QueryPlanner(index, seed=9, engine="bitmap")
        poly = _query_mix(sample, seed=26, count=1)[0]
        planned = planner.execute(poly)
        reference, _ = polyhedron_full_scan(db.table("nobitmap"), BANDS, poly)
        assert oid_set(planned.rows) == oid_set(reference)
        assert planned.fallback
        assert "bitmap" in planned.fallback_reason

    def test_unknown_engine_rejected(self, engine_setup):
        _, _, _, index = engine_setup
        with pytest.raises(ValueError):
            QueryPlanner(index, engine="quantum")


class TestBatchedDifferential:
    def test_batch_members_match_solo_across_engines(self, engine_setup):
        sample, columns, db, index = engine_setup
        polyhedra = _query_mix(sample, seed=27, count=8)
        filters = _membership_mix(columns, seed=28, count=len(polyhedra))
        for engine in ENGINES:
            planner = QueryPlanner(index, seed=9, engine=engine)
            batch = planner.execute_batch(polyhedra, memberships_list=filters)
            for poly, member, member_result in zip(
                polyhedra, filters, batch.members
            ):
                assert member_result.error is None
                reference, _ = polyhedron_full_scan(
                    db.table("mag"), BANDS, poly, memberships=member
                )
                assert oid_set(member_result.planned.rows) == oid_set(reference)

    def test_auto_batch_can_split_members_across_engines(self, engine_setup):
        sample, columns, db, index = engine_setup
        # One needle (bitmap territory) and one haystack (scan territory).
        needle = _box([0.02, 0.05, -9, -9, -9], [0.06, 0.09, 9, 9, 9])
        haystack = _box([-9] * 5, [9] * 5)
        planner = QueryPlanner(index, seed=9)
        batch = planner.execute_batch([needle, haystack])
        paths = {m.planned.chosen_path for m in batch.members}
        for poly, member_result in zip([needle, haystack], batch.members):
            reference, _ = polyhedron_full_scan(db.table("mag"), BANDS, poly)
            assert oid_set(member_result.planned.rows) == oid_set(reference)
        assert len(paths) >= 1  # decisions are per member, not per batch


class TestShardedDifferential:
    @pytest.mark.parametrize("transport", ["thread", "process"])
    def test_sharded_engines_match_scan(self, transport):
        sample, columns = _sample_columns(4000, seed=31)
        polyhedra = _query_mix(sample, seed=32, count=6)
        filters = _membership_mix(columns, seed=33, count=len(polyhedra))
        reference_db = Database.in_memory(buffer_pages=None)
        reference_db.create_table("ref", dict(columns))
        partitioner = KdPartitioner(4, buffer_pages=None)
        if transport == "process":
            specs = partitioner.plan("mag_sh", dict(columns), BANDS)
            executor = ScatterGatherExecutor(
                specs=specs, transport="process", engine="auto"
            )
        else:
            shard_set = partitioner.partition("mag_sh", dict(columns), BANDS)
            executor = ScatterGatherExecutor(shard_set, engine="auto")
        try:
            for poly, member in zip(polyhedra, filters):
                reference, _ = polyhedron_full_scan(
                    reference_db.table("ref"), BANDS, poly, memberships=member
                )
                planned = executor.execute(poly, memberships=member)
                assert oid_set(planned.rows) == oid_set(reference)
            batch = executor.execute_batch(polyhedra, memberships_list=filters)
            for poly, member, member_result in zip(
                polyhedra, filters, batch.members
            ):
                assert member_result.error is None
                reference, _ = polyhedron_full_scan(
                    reference_db.table("ref"), BANDS, poly, memberships=member
                )
                assert oid_set(member_result.planned.rows) == oid_set(reference)
        finally:
            executor.close()

    def test_sharded_bitmap_engine_survives_faults(self):
        sample, columns = _sample_columns(3000, seed=34)
        polyhedra = _query_mix(sample, seed=35, count=5)
        injector = FaultInjector(seed=36)
        retry = RetryPolicy(attempts=8, backoff_s=0.0)

        def factory(shard_id: int) -> Database:
            return Database(
                FaultyStorage(MemoryStorage(), injector),
                buffer_pages=16,
                retry=retry,
            )

        reference_db = Database.in_memory(buffer_pages=None)
        reference_db.create_table("ref", dict(columns))
        references = [
            oid_set(polyhedron_full_scan(reference_db.table("ref"), BANDS, p)[0])
            for p in polyhedra
        ]
        shard_set = KdPartitioner(4, database_factory=factory).partition(
            "mag_flt", dict(columns), BANDS
        )
        executor = ScatterGatherExecutor(shard_set, engine="auto")
        try:
            injector.configure(read_fault_rate=0.05)
            for poly, expected in zip(polyhedra, references):
                planned = executor.execute(poly)
                assert not planned.partial
                assert oid_set(planned.rows) == expected
        finally:
            injector.quiesce()
            executor.close()


class TestChurnDifferential:
    def test_engines_agree_through_ingest_and_merge(self):
        from repro.ingest.merge import merge_table

        sample, columns = _sample_columns(2500, seed=41)
        db = Database.in_memory(buffer_pages=None)
        index = KdTreeIndex.build(db, "churn", dict(columns), BANDS)
        BitmapIndex.build(db, "churn", BANDS)
        planners = {
            engine: QueryPlanner(index, seed=9, engine=engine)
            for engine in ENGINES
        }
        poly = _query_mix(sample, seed=42, count=1)[0]
        rng = np.random.default_rng(43)
        next_oid = float(len(columns["oid"]))
        for round_idx in range(3):
            fresh = {
                name: np.zeros(40, dtype=np.asarray(values).dtype)
                for name, values in columns.items()
            }
            for band in BANDS:
                fresh[band] = rng.normal(
                    loc=np.mean(np.asarray(columns[band])), scale=0.2, size=40
                )
            fresh["oid"] = np.arange(next_oid, next_oid + 40)
            fresh["kd_leaf"] = np.zeros(40)
            next_oid += 40
            db.ingest.insert("churn", fresh)
            if round_idx == 1:
                db.ingest.delete("churn", np.arange(5, dtype=np.int64))
            reference, _ = polyhedron_full_scan(db.table("churn"), BANDS, poly)
            expected = oid_set(reference)
            for engine, planner in planners.items():
                planned = planner.execute(poly)
                assert oid_set(planned.rows) == expected, (
                    f"{engine} diverged after round {round_idx}"
                )
            merge_table(db, "churn")
            reference, _ = polyhedron_full_scan(db.table("churn"), BANDS, poly)
            expected = oid_set(reference)
            for engine, planner in planners.items():
                planned = planner.execute(poly)
                assert oid_set(planned.rows) == expected, (
                    f"{engine} diverged after merge {round_idx}"
                )


class TestCostModelDecisions:
    """Pin the planner's choices at the selectivity extremes."""

    @pytest.fixture(scope="class")
    def pin_setup(self):
        # Large pages-per-leaf ratio: kd leaves span several pages, so a
        # narrow slab leaves the bitmap far ahead on pages decoded.
        rng = np.random.default_rng(51)
        n = 20_000
        data = {c: rng.normal(size=n) for c in ("x", "y", "z")}
        data["oid"] = np.arange(n, dtype=np.float64)
        db = Database.in_memory(buffer_pages=None)
        index = KdTreeIndex.build(
            db, "pin", data, ["x", "y", "z"], num_levels=4, rows_per_page=64
        )
        BitmapIndex.build(db, "pin", ["x", "y", "z"], num_bins=64)
        return db, index

    def test_high_selectivity_two_dims_picks_bitmap(self, pin_setup):
        db, index = pin_setup
        planner = QueryPlanner(index, seed=9)
        slab = _box([2.0, 2.0, -9.0], [9.0, 9.0, 9.0])
        planned = planner.execute(slab)
        assert planned.chosen_path in ("bitmap", "hybrid")
        assert planned.stats.extra["cost_bitmap"] < planned.stats.extra["cost_scan"]
        assert planned.stats.extra["cost_bitmap"] < planned.stats.extra["cost_kdtree"]

    def test_low_selectivity_stays_on_scan(self, pin_setup):
        db, index = pin_setup
        planner = QueryPlanner(index, seed=9)
        everything = _box([-9.0] * 3, [9.0] * 3)
        planned = planner.execute(everything)
        assert planned.chosen_path == "scan"

    def test_mid_selectivity_without_bitmap_keeps_paper_rule(self):
        rng = np.random.default_rng(52)
        n = 5000
        data = {c: rng.normal(size=n) for c in ("x", "y")}
        data["oid"] = np.arange(n, dtype=np.float64)
        db = Database.in_memory(buffer_pages=None)
        index = KdTreeIndex.build(db, "plain", data, ["x", "y"])
        planner = QueryPlanner(index, seed=9)
        narrow = _box([-0.1, -0.1], [0.1, 0.1])
        assert planner.execute(narrow).chosen_path == "kdtree"
        wide = _box([-9.0, -9.0], [9.0, 9.0])
        assert planner.execute(wide).chosen_path == "scan"

    def test_calibration_report_moves_with_observations(self, pin_setup):
        db, index = pin_setup
        planner = QueryPlanner(index, seed=9)
        before = planner.cost_report()
        assert before["observations"] == 0
        for _ in range(4):
            planner.execute(_box([1.0, -9.0, -9.0], [9.0, 9.0, 9.0]))
        after = planner.cost_report()
        assert after["observations"] >= 4
        assert set(after["calibration"]) == {"kdtree", "scan", "bitmap", "hybrid"}


class TestExpressionMemberships:
    def test_expression_to_query_splits_box_and_in_list(self):
        expr = (Col("u") < 0.5) & (Col("u") > -0.5) & Col("oid").isin([1, 5, 9])
        poly, memberships = expression_to_query(expr, ["u", "g"])
        assert set(memberships) == {"oid"}
        assert np.array_equal(memberships["oid"], [1.0, 5.0, 9.0])
        assert poly.dim == 2

    def test_membership_only_expression_yields_trivial_polyhedron(self):
        poly, memberships = expression_to_query(
            Col("oid").isin([3.0, 4.0]), ["u", "g"]
        )
        points = np.array([[100.0, -100.0], [-5.0, 5.0]])
        assert poly.contains_points(points).all()
        assert np.array_equal(memberships["oid"], [3.0, 4.0])

    def test_repeated_in_lists_intersect(self):
        expr = Col("oid").isin([1, 2, 3]) & Col("oid").isin([2, 3, 4])
        _, memberships = expression_to_query(expr, ["u"])
        assert np.array_equal(memberships["oid"], [2.0, 3.0])

    def test_in_list_over_computed_expression_rejected(self):
        with pytest.raises(LinearExtractionError):
            expression_to_query((Col("u") + Col("g")).isin([1.0]), ["u", "g"])

    def test_empty_in_list_rejected(self):
        with pytest.raises(ValueError):
            Col("oid").isin([])

    def test_expression_query_runs_through_every_engine(self, request):
        sample, columns = _sample_columns(2000, seed=61)
        db = Database.in_memory(buffer_pages=None)
        index = KdTreeIndex.build(db, "exprq", dict(columns), BANDS)
        BitmapIndex.build(db, "exprq", BANDS)
        u = np.asarray(columns["u"])
        lo, hi = float(np.quantile(u, 0.3)), float(np.quantile(u, 0.7))
        expr = (
            (Col("u") < hi)
            & (Col("u") > lo)
            & Col("oid").isin(np.arange(0, 2000, 3, dtype=np.float64))
        )
        poly, memberships = expression_to_query(expr, BANDS)
        reference, _ = polyhedron_full_scan(
            db.table("exprq"), BANDS, poly, memberships=memberships
        )
        expected = oid_set(reference)
        assert expected  # the query must select something
        for engine in ENGINES:
            planner = QueryPlanner(index, seed=9, engine=engine)
            planned = planner.execute(poly, memberships=memberships)
            assert oid_set(planned.rows) == expected
