"""Tests for the analysis algorithms (PCA, least squares, photo-z, BST)."""

import numpy as np
import pytest

from repro.datasets import SpectrumTemplates, make_photoz_dataset
from repro.db import Database
from repro.ml import (
    KnnPolyRedshiftEstimator,
    PolynomialFeatures,
    PrincipalComponents,
    TemplateFitEstimator,
    basin_spanning_tree,
    cluster_class_agreement,
    clusters_from_parents,
    general_least_squares,
    merge_small_clusters,
    regression_report,
    retrieval_precision,
    smooth_densities,
)


class TestPrincipalComponents:
    def test_recovers_planted_subspace(self):
        rng = np.random.default_rng(0)
        basis = rng.normal(size=(2, 30))
        coeffs = rng.normal(size=(500, 2)) * [5.0, 2.0]
        data = coeffs @ basis + rng.normal(0, 0.01, (500, 30))
        pca = PrincipalComponents(2, normalize=False).fit(data)
        assert pca.explained_variance_ratio.sum() > 0.99

    def test_transform_shape(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(100, 50))
        features = PrincipalComponents(5, normalize=False).fit_transform(data)
        assert features.shape == (100, 5)

    def test_components_orthonormal(self):
        rng = np.random.default_rng(2)
        pca = PrincipalComponents(4, normalize=False).fit(rng.normal(size=(200, 10)))
        gram = pca.components @ pca.components.T
        assert np.allclose(gram, np.eye(4), atol=1e-10)

    def test_reconstruction_improves_with_components(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(300, 20)) @ rng.normal(size=(20, 20))
        err2 = PrincipalComponents(2, normalize=False).fit(data).reconstruction_error(data)
        err8 = PrincipalComponents(8, normalize=False).fit(data).reconstruction_error(data)
        assert err8 < err2

    def test_normalization_removes_scale(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(100, 10))
        scaled = data * rng.uniform(0.1, 10.0, size=(100, 1))
        pca = PrincipalComponents(3, normalize=True).fit(data)
        a = pca.transform(data)
        b = pca.transform(scaled)
        assert np.allclose(a, b, atol=1e-10)

    def test_five_components_describe_spectra(self):
        # §4.2: a handful of KL components captures galaxy spectra.
        rng = np.random.default_rng(5)
        templates = SpectrumTemplates()
        spectra = np.array(
            [
                templates.observe(
                    templates.galaxy_blend(rng.uniform(), z=rng.uniform(0, 0.3)),
                    snr=200.0,
                    rng=rng,
                )
                for _ in range(120)
            ]
        )
        pca = PrincipalComponents(5).fit(spectra)
        # The bulk of the variance concentrates in very few components
        # (the residual is the nonlinear part of redshift stretching plus
        # photon noise spread over 3000 dimensions).
        ratios = pca.explained_variance_ratio
        assert ratios.sum() > 0.7
        assert ratios[0] > 20 * ratios[4]

    def test_validation(self):
        with pytest.raises(ValueError):
            PrincipalComponents(0)
        with pytest.raises(ValueError):
            PrincipalComponents(10).fit(np.zeros((3, 5)))
        with pytest.raises(RuntimeError):
            PrincipalComponents(2).transform(np.zeros((3, 5)))


class TestPolynomialFeatures:
    def test_degree_zero(self):
        pf = PolynomialFeatures(0)
        design = pf.design_matrix(np.array([[1.0, 2.0]]))
        assert design.shape == (1, 1)
        assert design[0, 0] == 1.0

    def test_degree_one_terms(self):
        pf = PolynomialFeatures(1)
        design = pf.design_matrix(np.array([[2.0, 3.0]]))
        assert design.tolist() == [[1.0, 2.0, 3.0]]

    def test_degree_two_term_count(self):
        pf = PolynomialFeatures(2)
        assert pf.num_terms(2) == 6  # 1, a, b, a2, ab, b2
        assert pf.num_terms(5) == 21

    def test_degree_two_values(self):
        pf = PolynomialFeatures(2)
        design = pf.design_matrix(np.array([[2.0, 3.0]]))
        assert sorted(design[0].tolist()) == sorted([1.0, 2.0, 3.0, 4.0, 6.0, 9.0])

    def test_negative_degree(self):
        with pytest.raises(ValueError):
            PolynomialFeatures(-1)


class TestGeneralLeastSquares:
    def test_exact_polynomial_recovery(self):
        rng = np.random.default_rng(6)
        x = rng.uniform(-1, 1, size=(200, 2))
        pf = PolynomialFeatures(2)
        design = pf.design_matrix(x)
        true = rng.normal(size=design.shape[1])
        coeffs = general_least_squares(design, design @ true)
        assert np.allclose(coeffs, true, atol=1e-8)

    def test_degenerate_design_stays_finite(self):
        # Collinear columns: SVD cutoff handles the rank deficiency.
        x = np.ones((50, 3))
        coeffs = general_least_squares(x, np.full(50, 6.0))
        assert np.all(np.isfinite(coeffs))
        assert np.allclose(x @ coeffs, 6.0)

    def test_weights(self):
        x = np.array([[1.0], [1.0]])
        y = np.array([0.0, 10.0])
        heavy_second = general_least_squares(x, y, weights=np.array([1.0, 100.0]))
        assert heavy_second[0] > 9.0

    def test_validation(self):
        with pytest.raises(ValueError):
            general_least_squares(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            general_least_squares(np.zeros((3, 2)), np.zeros(3), weights=-np.ones(3))


class TestPhotoz:
    @pytest.fixture(scope="class")
    def setup(self):
        ds = make_photoz_dataset(num_reference=600, num_unknown=150, seed=7)
        db = Database.in_memory(buffer_pages=None)
        knn = KnnPolyRedshiftEstimator(
            db, ds.reference_magnitudes, ds.reference_redshifts, k=24, degree=1
        )
        template = TemplateFitEstimator(templates=ds.templates, filters=ds.filters)
        return ds, knn, template

    def test_knn_estimates_reasonable(self, setup):
        ds, knn, _ = setup
        z = knn.estimate(ds.unknown_magnitudes[:40])
        report = regression_report(z, ds.unknown_redshifts[:40])
        assert report["rms"] < 0.05

    def test_template_fit_suffers_systematics(self, setup):
        ds, _, template = setup
        z = template.estimate(ds.unknown_magnitudes[:40])
        report = regression_report(z, ds.unknown_redshifts[:40])
        assert report["rms"] > 0.03  # calibration offsets bite

    def test_knn_beats_template_by_half(self, setup):
        # Figures 7 vs 8: "average error decreased by more than 50%".
        ds, knn, template = setup
        z_knn = knn.estimate(ds.unknown_magnitudes[:80])
        z_tpl = template.estimate(ds.unknown_magnitudes[:80])
        rms_knn = regression_report(z_knn, ds.unknown_redshifts[:80])["rms"]
        rms_tpl = regression_report(z_tpl, ds.unknown_redshifts[:80])["rms"]
        assert rms_knn < 0.5 * rms_tpl

    def test_estimate_stays_in_neighbor_range(self, setup):
        ds, knn, _ = setup
        z = knn.estimate(ds.unknown_magnitudes[:10])
        assert z.min() >= 0.0
        assert z.max() <= 0.6

    def test_validation(self, setup):
        ds, knn, template = setup
        with pytest.raises(ValueError):
            knn.estimate_one(np.zeros(3))
        with pytest.raises(ValueError):
            template.estimate_one(np.zeros(3))
        db = Database.in_memory()
        with pytest.raises(ValueError):
            KnnPolyRedshiftEstimator(
                db, ds.reference_magnitudes, ds.reference_redshifts, k=1
            )

    def test_degree_zero_is_knn_mean(self, setup):
        ds, _, _ = setup
        db = Database.in_memory(buffer_pages=None)
        est = KnnPolyRedshiftEstimator(
            db,
            ds.reference_magnitudes,
            ds.reference_redshifts,
            k=16,
            degree=0,
            table_name="ref0",
        )
        z = est.estimate(ds.unknown_magnitudes[:20])
        assert np.all((z >= 0.0) & (z <= 0.6))

    def test_template_grid_size(self, setup):
        _, _, template = setup
        assert template.grid_size == len(template.z_grid) * len(template.type_grid)


class TestBst:
    def _line_graph_neighbors(self, n):
        def neighbors(i):
            out = []
            if i > 0:
                out.append(i - 1)
            if i < n - 1:
                out.append(i + 1)
            return out

        return neighbors

    def test_two_peaks_on_a_line(self):
        densities = np.array([1.0, 3.0, 2.0, 1.0, 2.5, 4.0, 1.5])
        neighbors = self._line_graph_neighbors(7)
        parents = basin_spanning_tree(densities, neighbors)
        labels = clusters_from_parents(parents)
        assert len(np.unique(labels)) == 2
        assert labels[0] == labels[1] == labels[2]
        assert labels[4] == labels[5] == labels[6]

    def test_single_peak(self):
        densities = np.array([1.0, 2.0, 3.0, 2.0, 1.0])
        parents = basin_spanning_tree(densities, self._line_graph_neighbors(5))
        labels = clusters_from_parents(parents)
        assert len(np.unique(labels)) == 1

    def test_peaks_are_roots(self):
        densities = np.array([1.0, 5.0, 1.0])
        parents = basin_spanning_tree(densities, self._line_graph_neighbors(3))
        assert parents[1] == 1
        assert parents[0] == 1
        assert parents[2] == 1

    def test_tie_break_cannot_cycle(self):
        densities = np.ones(6)
        parents = basin_spanning_tree(densities, self._line_graph_neighbors(6))
        labels = clusters_from_parents(parents)
        assert len(np.unique(labels)) == 1  # all drain to index 0

    def test_smooth_densities_reduces_variance(self):
        rng = np.random.default_rng(8)
        densities = rng.uniform(size=50)
        smoothed = smooth_densities(densities, self._line_graph_neighbors(50), rounds=3)
        assert smoothed.std() < densities.std()
        assert np.isclose(smoothed.mean(), densities.mean(), rtol=0.1)

    def test_merge_small_clusters(self):
        densities = np.array([1.0, 3.0, 1.0, 1.2, 1.0, 4.0, 1.0])
        neighbors = self._line_graph_neighbors(7)
        parents = basin_spanning_tree(densities, neighbors)
        labels = clusters_from_parents(parents)
        merged = merge_small_clusters(labels, densities, neighbors, min_size=3)
        sizes = np.bincount(np.unique(merged, return_inverse=True)[1])
        assert (sizes >= 3).all()


class TestEvaluate:
    def test_cluster_agreement_perfect(self):
        clusters = np.array([0, 0, 1, 1])
        classes = np.array([5, 5, 9, 9])
        assert cluster_class_agreement(clusters, classes) == 1.0

    def test_cluster_agreement_majority(self):
        clusters = np.array([0, 0, 0, 0])
        classes = np.array([1, 1, 1, 2])
        assert cluster_class_agreement(clusters, classes) == 0.75

    def test_cluster_agreement_empty(self):
        assert cluster_class_agreement(np.array([]), np.array([])) == 0.0

    def test_cluster_agreement_shape_guard(self):
        with pytest.raises(ValueError):
            cluster_class_agreement(np.zeros(3), np.zeros(4))

    def test_regression_report(self):
        report = regression_report(np.array([1.0, 2.0]), np.array([1.0, 2.5]))
        assert np.isclose(report["rms"], 0.5 / np.sqrt(2))
        assert np.isclose(report["bias"], -0.25)
        assert report["outlier_rate"] == 0.5
        assert report["n"] == 2

    def test_retrieval_precision(self):
        queries = np.array([0, 1])
        retrieved = np.array([[0, 0], [1, 0]])
        assert retrieval_precision(queries, retrieved) == 0.75

    def test_retrieval_shape_guard(self):
        with pytest.raises(ValueError):
            retrieval_precision(np.zeros(3), np.zeros((2, 2)))
