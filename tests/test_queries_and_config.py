"""Tests for ball queries, plugin-graph config, and failure injection."""

import json

import numpy as np
import pytest

from repro import (
    Box,
    Database,
    GeometrySet,
    PluginHost,
    RecordingConsumer,
    SubsamplePipe,
    ball_polyhedron,
    ball_query,
)
from repro.core.queries import selectivity
from repro.db import MemoryStorage, Page, PageCodec
from repro.db.stats import QueryStats
from repro.viz.plugin import Producer


class TestBallQueries:
    def test_polytope_contains_ball(self):
        rng = np.random.default_rng(0)
        center = rng.normal(size=3)
        poly = ball_polyhedron(center, 0.5, facets=16)
        directions = rng.normal(size=(200, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        surface = center + 0.5 * directions
        assert poly.contains_points(surface).all()

    def test_polytope_is_tight(self):
        # Points well outside the ball are excluded.
        center = np.zeros(3)
        poly = ball_polyhedron(center, 1.0, facets=64)
        rng = np.random.default_rng(1)
        directions = rng.normal(size=(200, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        outside = center + 1.5 * directions
        assert poly.contains_points(outside).mean() < 0.2

    def test_exact_against_brute_force(self, kd_index, clustered_points_3d):
        rng = np.random.default_rng(2)
        for _ in range(5):
            center = rng.normal([1.0, 1.0, 0.5], 1.0)
            radius = rng.uniform(0.2, 1.0)
            rows, stats = ball_query(kd_index, center, radius)
            truth = (
                np.linalg.norm(clustered_points_3d - center, axis=1) <= radius
            ).sum()
            assert stats.rows_returned == int(truth)

    def test_more_facets_fewer_candidates(self, kd_index):
        center = np.array([0.0, 0.0, 0.0])
        _, coarse = ball_query(kd_index, center, 0.8, facets=6)
        _, fine = ball_query(kd_index, center, 0.8, facets=64)
        assert fine.extra.get("candidates", 0) <= coarse.extra.get("candidates", 1)

    def test_validation(self, kd_index):
        with pytest.raises(ValueError):
            ball_polyhedron(np.zeros(3), -1.0)
        with pytest.raises(ValueError):
            ball_polyhedron(np.zeros(3), 1.0, facets=2)

    def test_selectivity_helper(self):
        stats = QueryStats()
        stats.rows_returned = 25
        assert selectivity(stats, 100) == 0.25
        assert selectivity(stats, 0) == 0.0


class _StaticProducer(Producer):
    """Test producer emitting a fixed number of points on camera events."""

    def __init__(self, count=10):
        self.count = int(count)

    def initialize(self, registry):
        super().initialize(registry)
        registry.camera_box_changed.subscribe(self._on_camera)
        return True

    def _on_camera(self, camera):
        self._latest = GeometrySet(points=np.zeros((self.count, 3)))
        self.registry.signal_production(self)

    def get_output(self):
        return getattr(self, "_latest", None)


class TestPluginGraphConfig:
    FACTORIES = {
        "static": _StaticProducer,
        "subsample": SubsamplePipe,
        "recorder": RecordingConsumer,
    }

    def _config(self):
        return {
            "plugins": [
                {"name": "source", "type": "static", "args": {"count": 50}},
                {
                    "name": "limiter",
                    "type": "subsample",
                    "args": {"max_points": 10},
                    "inputs": ["source"],
                },
                {"name": "screen", "type": "recorder", "inputs": ["limiter"]},
            ]
        }

    def test_from_dict(self):
        host = PluginHost.from_config(self._config(), self.FACTORIES)
        host.start()
        from repro import Camera

        host.set_camera(Camera(Box.unit(3)))
        host.frame()
        screen = host.plugin_of("screen")
        assert screen.frames[0].num_points == 10  # limited by the pipe
        host.shutdown()

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "graph.json"
        path.write_text(json.dumps(self._config()))
        host = PluginHost.from_config(str(path), self.FACTORIES)
        assert host.plugin_of("limiter").max_points == 10

    def test_unknown_type(self):
        config = {"plugins": [{"name": "x", "type": "warp_drive"}]}
        with pytest.raises(KeyError):
            PluginHost.from_config(config, self.FACTORIES)


class TestFailureInjection:
    def test_truncated_page_bytes(self):
        page = Page(page_id=0, start_row=0, columns={"a": np.arange(50.0)})
        data = PageCodec.encode(page)
        with pytest.raises(Exception):
            PageCodec.decode(data[: len(data) // 2])

    def test_bit_flip_in_column_count(self):
        page = Page(page_id=0, start_row=0, columns={"a": np.arange(5.0)})
        raw = bytearray(PageCodec.encode(page))
        raw[20] = 0xFF  # clobber the column count field
        with pytest.raises(Exception):
            PageCodec.decode(bytes(raw))

    def test_storage_missing_page_mid_scan(self):
        db = Database(MemoryStorage(), buffer_pages=None)
        table = db.create_table("t", {"a": np.arange(100.0)}, rows_per_page=10)
        db.cold_cache()
        # Remove a page behind the engine's back.
        del db.storage._pages["t"][5]
        with pytest.raises(KeyError):
            table.read_column("a")

    def test_partial_file_on_disk(self, tmp_path):
        db = Database.on_disk(tmp_path)
        table = db.create_table("t", {"a": np.arange(100.0)}, rows_per_page=10)
        db.cold_cache()
        victim = tmp_path / "t" / "00000003.page"
        data = victim.read_bytes()
        victim.write_bytes(data[: len(data) // 3])
        with pytest.raises(Exception):
            table.read_page(3)
