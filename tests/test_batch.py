"""Shared-work batch execution: differential correctness and isolation.

Fast-tier coverage of the micro-batching layer: the shared scan pass,
the multi-box kd traversal, the planner's batched front end (including
degradation to solo execution on shared-pass faults and the cached
selectivity probe), admission-queue batch formation, and the service's
end-to-end batched serving with per-member deadline isolation.  The
invariant everywhere: batched answers are byte-identical to solo
answers, and one member's deadline, cancellation, or fault never
disturbs its batch siblings.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from .faultutil import build_kd_setup, fault_free_ground_truth, oid_set
from repro import (
    Box,
    Database,
    FaultInjector,
    FaultyStorage,
    KdPartitioner,
    Polyhedron,
    QueryService,
    ScatterGatherExecutor,
)
from repro.core.batch import batch_kd_query
from repro.core.queries import polyhedron_batch_full_scan, polyhedron_full_scan
from repro.db.errors import StorageFault
from repro.db.faults import RetryPolicy
from repro.db.storage import MemoryStorage
from repro.service.admission import AdmissionQueue
from repro.service.errors import DeadlineExceeded
from repro.service.replay import replay_workload, rows_equal, run_serial

SELECTIVITIES = [0.005, 0.02, 0.1, 0.3, 0.6]


@pytest.fixture(scope="module")
def kd_setup():
    """One kd-indexed magnitude table shared by the read-only tests."""
    return build_kd_setup(num_rows=4000, seed=7)


def _mixed_polyhedra(setup, count: int, seed_offset: int = 0):
    queries = setup.workload.mixed(count, SELECTIVITIES)
    return [q.polyhedron() for q in queries]


class _TrippingCheck:
    """A cancel check that raises after a fixed number of polls."""

    def __init__(self, after: int, exc: BaseException):
        self.after = after
        self.exc = exc
        self.calls = 0

    def __call__(self) -> None:
        self.calls += 1
        if self.calls > self.after:
            raise self.exc


class TestBatchFullScan:
    def test_matches_serial_scan_answers(self, kd_setup):
        polys = _mixed_polyhedra(kd_setup, 10)
        table, dims = kd_setup.index.table, kd_setup.index.dims
        serial = [polyhedron_full_scan(table, dims, p) for p in polys]
        results, counters = polyhedron_batch_full_scan(table, dims, polys)
        assert len(results) == len(polys)
        for (ref_rows, _), (rows, _, error) in zip(serial, results):
            assert error is None
            assert rows_equal(ref_rows, rows)
        assert counters["pages_decoded"] <= table.num_pages
        # Ten queries over one table: nearly every decoded page serves
        # more than one member.
        assert counters["shared_decode_hits"] > counters["pages_decoded"]

    def test_decodes_each_page_once_for_the_whole_batch(self, kd_setup):
        polys = _mixed_polyhedra(kd_setup, 6)
        table, dims = kd_setup.index.table, kd_setup.index.dims
        solo_pages = sum(
            polyhedron_full_scan(table, dims, p)[1].pages_touched for p in polys
        )
        _, counters = polyhedron_batch_full_scan(table, dims, polys)
        assert counters["pages_decoded"] < solo_pages

    def test_cancelled_member_is_dropped_without_leaking_rows(self, kd_setup):
        polys = _mixed_polyhedra(kd_setup, 4)
        table, dims = kd_setup.index.table, kd_setup.index.dims
        serial = [polyhedron_full_scan(table, dims, p) for p in polys]
        boom = _TrippingCheck(3, DeadlineExceeded("mid-batch"))
        checks = [None, boom, None, None]
        results, _ = polyhedron_batch_full_scan(
            table, dims, polys, cancel_checks=checks
        )
        rows, _, error = results[1]
        assert rows is None  # partial accumulation discarded, not returned
        assert isinstance(error, DeadlineExceeded)
        for idx in (0, 2, 3):
            sibling_rows, _, sibling_error = results[idx]
            assert sibling_error is None
            assert rows_equal(serial[idx][0], sibling_rows)


class TestBatchKdQuery:
    def test_matches_solo_kd_answers(self, kd_setup):
        polys = _mixed_polyhedra(kd_setup, 8)
        serial = [kd_setup.index.query_polyhedron(p) for p in polys]
        results, counters = kd_setup.index.query_polyhedra(polys)
        for (ref_rows, _), (rows, _, error) in zip(serial, results):
            assert error is None
            assert rows_equal(ref_rows, rows)
        assert counters["pages_decoded"] >= 0

    def test_shared_fetch_beats_per_query_fetch(self, kd_setup):
        # Overlapping selective queries hit the same clustered pages.
        polys = _mixed_polyhedra(kd_setup, 8)
        solo_pages = sum(
            kd_setup.index.query_polyhedron(p)[1].pages_touched for p in polys
        )
        _, counters = kd_setup.index.query_polyhedra(polys)
        assert counters["pages_decoded"] < solo_pages
        assert counters["shared_decode_hits"] > 0

    def test_deadline_mid_traversal_spares_siblings(self, kd_setup):
        polys = _mixed_polyhedra(kd_setup, 4)
        serial = [kd_setup.index.query_polyhedron(p) for p in polys]
        boom = _TrippingCheck(5, DeadlineExceeded("mid-traversal"))
        results, _ = batch_kd_query(
            kd_setup.index, polys, cancel_checks=[None, None, boom, None]
        )
        rows, _, error = results[2]
        assert rows is None
        assert isinstance(error, DeadlineExceeded)
        for idx in (0, 1, 3):
            sibling_rows, _, sibling_error = results[idx]
            assert sibling_error is None
            assert rows_equal(serial[idx][0], sibling_rows)


class TestPlannerExecuteBatch:
    def test_differential_against_solo_planning(self, kd_setup):
        polys = _mixed_polyhedra(kd_setup, 12)
        solo = [kd_setup.planner.execute(p) for p in polys]
        batch = kd_setup.planner.execute_batch(polys)
        assert batch.occupancy == len(polys)
        for ref, member in zip(solo, batch.members):
            assert member.error is None
            assert member.planned.chosen_path == ref.chosen_path
            assert rows_equal(ref.rows, member.planned.rows)
        assert batch.pages_decoded > 0
        assert batch.shared_decode_hits > 0

    def test_correct_under_injected_read_faults(self):
        setup = build_kd_setup(
            num_rows=3000, seed=11, retry=RetryPolicy(attempts=4, backoff_s=0.0)
        )
        polys = [q.polyhedron() for q in setup.workload.mixed(10, SELECTIVITIES)]
        truth = fault_free_ground_truth(setup, polys)
        setup.db.cold_cache()
        setup.injector.configure(read_fault_rate=0.05)
        batch = setup.planner.execute_batch(polys)
        setup.injector.quiesce()
        for ref_rows, member in zip(truth, batch.members):
            if member.error is not None:
                # Only a terminal storage fault may fail a member -- and
                # never with a wrong answer.
                assert isinstance(member.error, StorageFault)
                continue
            assert rows_equal(ref_rows, member.planned.rows)

    def test_shared_pass_fault_degrades_members_to_solo(self, kd_setup, monkeypatch):
        polys = _mixed_polyhedra(kd_setup, 6)
        solo = [kd_setup.planner.execute(p) for p in polys]

        def doomed(*args, **kwargs):
            raise StorageFault("shared pass died")

        monkeypatch.setattr("repro.core.planner.batch_kd_query", doomed)
        batch = kd_setup.planner.execute_batch(polys)
        for ref, member in zip(solo, batch.members):
            assert member.error is None
            assert rows_equal(ref.rows, member.planned.rows)
            if ref.chosen_path == "kdtree":  # served via the degraded path
                assert member.planned.fallback
                assert "batch kdtree pass failed" in member.planned.fallback_reason


class TestSelectivityProbeCache:
    def test_second_estimate_is_zero_io(self):
        setup = build_kd_setup(num_rows=3000, seed=13)
        poly = setup.workload.mixed(1, [0.1])[0].polyhedron()
        first = setup.planner.estimate_selectivity(poly)
        before = setup.db.io_stats.as_dict()
        again = setup.planner.estimate_selectivity(poly)
        other = setup.planner.estimate_selectivity(
            setup.workload.mixed(2, [0.4])[1].polyhedron()
        )
        after = setup.db.io_stats.as_dict()
        assert first == again
        assert 0.0 <= other[0] <= 1.0
        # Not even buffer-pool traffic: the cached sample answers alone.
        assert after["page_reads"] == before["page_reads"]
        assert after["cache_hits"] == before["cache_hits"]
        assert after["cache_misses"] == before["cache_misses"]

    def test_catalog_mutation_invalidates_the_cache(self):
        setup = build_kd_setup(num_rows=2000, seed=17)
        poly = setup.workload.mixed(1, [0.1])[0].polyhedron()
        setup.planner.estimate_selectivity(poly)
        assert setup.planner._probe_cache is not None
        # A mutation of some *other* table leaves the sample alone.
        setup.db.create_table("unrelated", {"v": np.arange(8.0)})
        assert setup.planner._probe_cache is not None
        setup.db.drop_table(setup.planner.index.table.name)
        assert setup.planner._probe_cache is None

    def test_probe_fault_leaves_cache_unbuilt(self):
        setup = build_kd_setup(
            num_rows=2000, seed=19, retry=RetryPolicy(attempts=2, backoff_s=0.0)
        )
        poly = setup.workload.mixed(1, [0.1])[0].polyhedron()
        setup.db.cold_cache()
        setup.injector.fail_next_reads(100_000)
        with pytest.raises(StorageFault):
            setup.planner.estimate_selectivity(poly)
        assert setup.planner._probe_cache is None
        setup.injector.quiesce()
        estimate, probed = setup.planner.estimate_selectivity(poly)
        assert probed > 0
        assert setup.planner._probe_cache is not None


class TestAdmissionPopBatch:
    def test_empty_queue_times_out_to_empty_batch(self):
        queue = AdmissionQueue(8)
        assert queue.pop_batch(4, timeout=0.01) == []

    def test_drains_backlog_up_to_max_items(self):
        queue = AdmissionQueue(8)
        for i in range(6):
            assert queue.offer(i)
        assert queue.pop_batch(4, timeout=0.01) == [0, 1, 2, 3]
        assert queue.pop_batch(4, timeout=0.01) == [4, 5]

    def test_formation_delay_gathers_late_arrivals(self):
        queue = AdmissionQueue(8)
        queue.offer("early")

        def late():
            time.sleep(0.02)
            queue.offer("late")

        thread = threading.Thread(target=late)
        thread.start()
        batch = queue.pop_batch(2, delay_s=0.5, timeout=0.1)
        thread.join()
        assert batch == ["early", "late"]

    def test_full_batch_skips_the_delay(self):
        queue = AdmissionQueue(8)
        queue.offer("a")
        queue.offer("b")
        started = time.monotonic()
        batch = queue.pop_batch(2, delay_s=5.0, timeout=0.1)
        assert batch == ["a", "b"]
        assert time.monotonic() - started < 1.0

    def test_rejects_nonpositive_max_items(self):
        with pytest.raises(ValueError):
            AdmissionQueue(8).pop_batch(0)


class TestServiceBatchedExecution:
    def test_batched_replay_matches_serial(self, kd_setup):
        polys = _mixed_polyhedra(kd_setup, 24)
        serial = run_serial(kd_setup.planner, polys)
        service = QueryService(
            kd_setup.db,
            kd_setup.planner,
            workers=2,
            batch_size=6,
            batch_delay_s=0.003,
            cache_entries=0,
        )
        with service:
            report = replay_workload(service, polys, concurrency=8)
        assert not report.errors
        for idx, ref in enumerate(serial):
            assert rows_equal(ref, report.rows(idx))
        summary = service.metrics.summary()
        assert summary["batches"] > 0
        assert summary["mean_batch_occupancy"] > 1.0
        assert summary["shared_decode_hits"] > 0
        assert "batches formed" in service.metrics.format_report()

    def test_cache_hits_are_peeled_before_batch_formation(self, kd_setup):
        polys = _mixed_polyhedra(kd_setup, 6)
        doubled = polys + polys
        serial = run_serial(kd_setup.planner, polys)
        service = QueryService(
            kd_setup.db,
            kd_setup.planner,
            workers=1,
            batch_size=4,
            batch_delay_s=0.003,
        )
        with service:
            report = replay_workload(service, doubled, concurrency=4)
        assert not report.errors
        for idx in range(len(doubled)):
            assert rows_equal(serial[idx % len(polys)], report.rows(idx))
        summary = service.metrics.summary()
        assert summary["cache_hits"] > 0
        # Peeled hits never count toward batch occupancy.
        assert summary["batch_members"] + summary["cache_hits"] >= len(doubled)
        assert summary["batch_members"] <= len(doubled) - summary["cache_hits"]

    def test_expired_member_fails_alone_in_a_formed_batch(self, kd_setup):
        polys = _mixed_polyhedra(kd_setup, 4)
        serial = run_serial(kd_setup.planner, polys)
        service = QueryService(
            kd_setup.db,
            kd_setup.planner,
            workers=1,
            batch_size=4,
            batch_delay_s=0.2,
            cache_entries=0,
        )
        with service:
            session = service.open_session("isolation")
            tickets = [
                service.submit(
                    poly,
                    session=session,
                    deadline=0.0 if idx == 1 else None,
                )
                for idx, poly in enumerate(polys)
            ]
            with pytest.raises(DeadlineExceeded):
                tickets[1].result(30.0)
            for idx in (0, 2, 3):
                outcome = tickets[idx].result(30.0)
                assert rows_equal(serial[idx], outcome.rows)
        summary = service.metrics.summary()
        assert summary["deadline_misses"] == 1
        assert summary["completed"] == 3

    def test_batch_size_one_keeps_the_solo_path(self, kd_setup):
        polys = _mixed_polyhedra(kd_setup, 6)
        serial = run_serial(kd_setup.planner, polys)
        service = QueryService(
            kd_setup.db, kd_setup.planner, workers=2, cache_entries=0
        )
        with service:
            report = replay_workload(service, polys, concurrency=4)
        assert not report.errors
        for idx, ref in enumerate(serial):
            assert rows_equal(ref, report.rows(idx))
        assert service.metrics.summary()["batches"] == 0


DIMS3 = ["x", "y", "z"]


def _cluster_data(n: int = 4000, seed: int = 23) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    pts = np.vstack(
        [
            rng.normal([0.0, 0.0, 0.0], [0.5, 0.3, 0.6], size=(n // 2, 3)),
            rng.normal([3.0, 2.0, 1.0], [0.8, 0.5, 0.4], size=(n - n // 2, 3)),
        ]
    )
    data = {d: pts[:, i] for i, d in enumerate(DIMS3)}
    data["oid"] = np.arange(n, dtype=np.int64)
    return data


def _boxes_and_polyhedra(seed: int = 3, count: int = 8) -> list[Polyhedron]:
    rng = np.random.default_rng(seed)
    polys = []
    for i in range(count):
        center = rng.uniform([-1, -1, -1], [4, 3, 2])
        if i % 2 == 0:
            polys.append(Polyhedron.from_box(Box.cube(center, rng.uniform(0.5, 4.0))))
        else:
            from repro.geometry import Halfspace

            halfspaces = []
            for _ in range(4):
                direction = rng.normal(size=3)
                direction /= np.linalg.norm(direction)
                halfspaces.append(
                    Halfspace(direction, float(direction @ center) + rng.uniform(0.5, 2.5))
                )
            polys.append(Polyhedron(halfspaces))
    return polys


class TestShardedBatchedExecution:
    def test_sharded_batch_matches_solo_scatter_gather(self):
        data = _cluster_data()
        shard_set = KdPartitioner(4, buffer_pages=None).partition(
            "pts_batch", data, DIMS3
        )
        executor = ScatterGatherExecutor(shard_set)
        try:
            polys = _boxes_and_polyhedra()
            solo = [executor.execute(p) for p in polys]
            batch = executor.execute_batch(polys)
            assert batch.occupancy == len(polys)
            for ref, member in zip(solo, batch.members):
                assert member.error is None
                assert oid_set(member.planned.rows) == oid_set(ref.rows)
                assert np.array_equal(
                    np.sort(member.planned.rows["_row_id"]),
                    np.sort(ref.rows["_row_id"]),
                )
        finally:
            executor.close()

    def test_dead_shard_degrades_members_to_partial(self):
        data = _cluster_data(seed=29)
        injector = FaultInjector(seed=5)
        fast_retry = RetryPolicy(attempts=2, backoff_s=0.0)

        def factory(shard_id: int) -> Database:
            if shard_id == 0:
                return Database(
                    FaultyStorage(MemoryStorage(), injector),
                    buffer_pages=None,
                    retry=fast_retry,
                )
            return Database.in_memory(buffer_pages=None)

        shard_set = KdPartitioner(4, database_factory=factory).partition(
            "faulty_batch", data, DIMS3
        )
        executor = ScatterGatherExecutor(shard_set)
        try:
            poly = Polyhedron.from_box(Box.cube(np.array([1.5, 1.0, 0.5]), 10.0))
            intact = executor.execute_batch([poly, poly])
            assert all(not m.planned.partial for m in intact.members)

            shard_set[0].database.cold_cache()
            injector.fail_next_reads(1_000_000)
            degraded = executor.execute_batch([poly, poly])
            survivor_oids = frozenset(
                int(v)
                for shard in list(shard_set)[1:]
                for v in shard.table.read_column("oid")
            )
            for member in degraded.members:
                assert member.error is None
                assert member.planned.partial
                assert member.planned.failed_shards == (0,)
                assert (
                    oid_set(member.planned.rows)
                    == oid_set(intact.members[0].planned.rows) & survivor_oids
                )
            injector.quiesce()
        finally:
            executor.close()

    def test_sharded_service_replay_with_batches(self):
        data = _cluster_data(seed=31)
        shard_set = KdPartitioner(4, buffer_pages=None).partition(
            "pts_svc_batch", data, DIMS3
        )
        executor = ScatterGatherExecutor(shard_set)
        try:
            polys = _boxes_and_polyhedra(seed=9, count=12)
            solo = [executor.execute(p) for p in polys]
            service = QueryService(
                None,
                executor,
                workers=2,
                batch_size=4,
                batch_delay_s=0.003,
                cache_entries=0,
            )
            with service:
                report = replay_workload(service, polys, concurrency=6)
            assert not report.errors
            for idx, ref in enumerate(solo):
                assert oid_set(report.rows(idx)) == oid_set(ref.rows)
            assert service.metrics.summary()["batches"] > 0
        finally:
            executor.close()
