"""Tests for axis-aligned boxes."""

import numpy as np
import pytest

from repro.geometry import Box, BoxRelation


def box(lo, hi):
    return Box(np.asarray(lo, float), np.asarray(hi, float))


class TestConstruction:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            box([1.0, 0.0], [0.0, 1.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            Box(np.zeros(2), np.ones(3))

    def test_from_points_covers_all(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(100, 4))
        b = Box.from_points(pts)
        assert b.contains_points(pts).all()

    def test_from_points_pad(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = Box.from_points(pts, pad=0.5)
        assert np.allclose(b.lo, [-0.5, -0.5])
        assert np.allclose(b.hi, [1.5, 1.5])

    def test_from_points_rejects_empty(self):
        with pytest.raises(ValueError):
            Box.from_points(np.empty((0, 3)))

    def test_unit_cube(self):
        b = Box.unit(5)
        assert b.dim == 5
        assert b.volume == 1.0

    def test_cube_around_center(self):
        b = Box.cube(np.array([1.0, 2.0]), 0.5)
        assert np.allclose(b.center, [1.0, 2.0])
        assert np.allclose(b.widths, [1.0, 1.0])

    def test_immutable_bounds(self):
        b = Box.unit(2)
        with pytest.raises(ValueError):
            b.lo[0] = 5.0


class TestPredicates:
    def test_contains_point_boundary_closed(self):
        b = box([0, 0], [1, 1])
        assert b.contains_point([0.0, 0.0])
        assert b.contains_point([1.0, 1.0])
        assert not b.contains_point([1.0000001, 0.5])

    def test_contains_points_vectorized(self):
        b = box([0, 0], [1, 1])
        pts = np.array([[0.5, 0.5], [2.0, 0.5], [-0.1, 0.2]])
        assert b.contains_points(pts).tolist() == [True, False, False]

    def test_intersects_shared_face(self):
        a = box([0, 0], [1, 1])
        b = box([1, 0], [2, 1])
        assert a.intersects(b)

    def test_disjoint(self):
        a = box([0, 0], [1, 1])
        b = box([2, 2], [3, 3])
        assert not a.intersects(b)
        assert a.relation_to(b) is BoxRelation.OUTSIDE

    def test_relation_inside(self):
        inner = box([0.25, 0.25], [0.75, 0.75])
        outer = box([0, 0], [1, 1])
        assert inner.relation_to(outer) is BoxRelation.INSIDE
        assert outer.relation_to(inner) is BoxRelation.PARTIAL


class TestAlgebra:
    def test_intersection(self):
        a = box([0, 0], [2, 2])
        b = box([1, 1], [3, 3])
        overlap = a.intersection(b)
        assert np.allclose(overlap.lo, [1, 1])
        assert np.allclose(overlap.hi, [2, 2])

    def test_intersection_disjoint_is_none(self):
        assert box([0, 0], [1, 1]).intersection(box([2, 2], [3, 3])) is None

    def test_union_bounds(self):
        u = box([0, 0], [1, 1]).union_bounds(box([2, -1], [3, 0.5]))
        assert np.allclose(u.lo, [0, -1])
        assert np.allclose(u.hi, [3, 1])

    def test_split_partitions_volume(self):
        b = box([0, 0, 0], [2, 2, 2])
        left, right = b.split(axis=1, value=0.5)
        assert np.isclose(left.volume + right.volume, b.volume)
        assert left.hi[1] == 0.5
        assert right.lo[1] == 0.5

    def test_split_outside_extent_rejected(self):
        with pytest.raises(ValueError):
            box([0, 0], [1, 1]).split(0, 2.0)

    def test_expanded(self):
        b = box([0, 0], [1, 1]).expanded(1.0)
        assert np.allclose(b.lo, [-1, -1])


class TestDistances:
    def test_min_distance_inside_is_zero(self):
        assert box([0, 0], [1, 1]).min_distance_to_point([0.5, 0.5]) == 0.0

    def test_min_distance_outside(self):
        d = box([0, 0], [1, 1]).min_distance_to_point([2.0, 1.0])
        assert np.isclose(d, 1.0)

    def test_min_distance_corner(self):
        d = box([0, 0], [1, 1]).min_distance_to_point([2.0, 2.0])
        assert np.isclose(d, np.sqrt(2.0))

    def test_max_distance_to_point(self):
        d = box([0, 0], [1, 1]).max_distance_to_point([0.0, 0.0])
        assert np.isclose(d, np.sqrt(2.0))

    def test_max_ge_min(self):
        rng = np.random.default_rng(3)
        b = box([0, 0, 0], [1, 2, 3])
        for _ in range(50):
            p = rng.normal(scale=3, size=3)
            assert b.max_distance_to_point(p) >= b.min_distance_to_point(p)


class TestCornersAndFaces:
    def test_corner_count(self):
        assert box([0, 0, 0], [1, 1, 1]).corners().shape == (8, 3)

    def test_corners_are_extreme(self):
        b = box([0, -1], [2, 3])
        corners = {tuple(c) for c in b.corners()}
        assert corners == {(0, -1), (0, 3), (2, -1), (2, 3)}

    def test_corner_dim_guard(self):
        with pytest.raises(ValueError):
            Box(np.zeros(17), np.ones(17)).corners()

    def test_face_projections_on_boundary(self):
        b = box([0, 0, 0], [1, 1, 1])
        p = np.array([0.3, 0.6, 0.9])
        projections = b.project_point_to_faces(p)
        assert projections.shape == (6, 3)
        for proj in projections:
            assert b.contains_point(proj)
            on_face = np.any(np.isclose(proj, b.lo) | np.isclose(proj, b.hi))
            assert on_face

    def test_face_projection_of_outside_point_clamped(self):
        b = box([0, 0], [1, 1])
        projections = b.project_point_to_faces(np.array([5.0, 0.5]))
        assert b.contains_points(projections).all()

    def test_face_projection_achieves_min_distance(self):
        # For an outside point, the closest projection equals the box's
        # min distance -- the property the boundary-point k-NN leans on.
        b = box([0, 0, 0], [1, 1, 1])
        p = np.array([2.0, 0.5, 0.5])
        projections = b.project_point_to_faces(p)
        best = min(np.linalg.norm(proj - p) for proj in projections)
        assert np.isclose(best, b.min_distance_to_point(p))


class TestShapeStats:
    def test_elongation_of_cube_is_one(self):
        assert box([0, 0], [2, 2]).elongation == 1.0

    def test_elongation_ratio(self):
        assert np.isclose(box([0, 0], [4, 1]).elongation, 4.0)

    def test_elongation_degenerate_is_inf(self):
        assert box([0, 0], [1, 0]).elongation == float("inf")

    def test_volume(self):
        assert np.isclose(box([0, 0, 0], [1, 2, 3]).volume, 6.0)
