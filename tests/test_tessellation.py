"""Tests for the Delaunay / Voronoi / density substrate."""

import numpy as np
import pytest

from repro.tessellation import (
    DelaunayGraph,
    VoronoiCells,
    density_from_volumes,
    simplex_volumes,
    voronoi_volume_estimates,
)


@pytest.fixture(scope="module")
def graph_2d():
    rng = np.random.default_rng(21)
    return DelaunayGraph(rng.uniform(size=(300, 2)))


@pytest.fixture(scope="module")
def graph_5d():
    rng = np.random.default_rng(22)
    return DelaunayGraph(rng.uniform(size=(160, 5)))


class TestDelaunayGraph:
    def test_needs_enough_seeds(self):
        with pytest.raises(ValueError):
            DelaunayGraph(np.zeros((3, 2)))

    def test_adjacency_symmetric(self, graph_2d):
        for seed in range(graph_2d.num_seeds):
            for nbr in graph_2d.neighbors(seed):
                assert seed in graph_2d.neighbors(int(nbr))

    def test_no_self_loops(self, graph_2d):
        for seed in range(graph_2d.num_seeds):
            assert seed not in graph_2d.neighbors(seed)

    def test_edges_unique_and_consistent(self, graph_2d):
        edges = graph_2d.edges()
        assert len(edges) == graph_2d.num_edges()
        assert (edges[:, 0] < edges[:, 1]).all()

    def test_degrees_sum_to_twice_edges(self, graph_2d):
        assert graph_2d.degrees().sum() == 2 * graph_2d.num_edges()

    def test_connected_graph(self, graph_2d):
        # A Delaunay triangulation is connected.
        seen = {0}
        frontier = [0]
        while frontier:
            for nbr in graph_2d.neighbors(frontier.pop()):
                if int(nbr) not in seen:
                    seen.add(int(nbr))
                    frontier.append(int(nbr))
        assert len(seen) == graph_2d.num_seeds


class TestDirectedWalk:
    def test_walk_reaches_nearest_seed_2d(self, graph_2d):
        rng = np.random.default_rng(1)
        for _ in range(100):
            point = rng.uniform(-0.2, 1.2, 2)
            walk = graph_2d.directed_walk(point)
            assert walk.seed == graph_2d.nearest_seed_exact(point)

    def test_walk_reaches_nearest_seed_5d(self, graph_5d):
        rng = np.random.default_rng(2)
        for _ in range(50):
            point = rng.uniform(size=5)
            walk = graph_5d.directed_walk(point)
            assert walk.seed == graph_5d.nearest_seed_exact(point)

    def test_walk_path_strictly_improves(self, graph_2d):
        point = np.array([0.77, 0.31])
        walk = graph_2d.directed_walk(point, start=0)
        dists = [np.linalg.norm(graph_2d.seeds[s] - point) for s in walk.path]
        assert (np.diff(dists) < 0).all() or len(dists) == 1

    def test_walk_from_any_start(self, graph_2d):
        point = np.array([0.5, 0.5])
        results = {
            graph_2d.directed_walk(point, start=s).seed
            for s in range(0, graph_2d.num_seeds, 37)
        }
        assert len(results) == 1

    def test_walk_hops_scale_sublinearly(self):
        # O(sqrt(Nseed)) hops on average (the paper's claim).
        rng = np.random.default_rng(3)
        hops = {}
        for n in (64, 1024):
            graph = DelaunayGraph(rng.uniform(size=(n, 2)))
            lengths = [
                graph.directed_walk(rng.uniform(size=2), start=0).hops
                for _ in range(60)
            ]
            hops[n] = np.mean(lengths)
        # 16x more seeds should cost ~4x more hops, not ~16x.
        assert hops[1024] / max(hops[64], 0.5) < 8.0

    def test_bad_start_rejected(self, graph_2d):
        with pytest.raises(IndexError):
            graph_2d.directed_walk(np.zeros(2), start=10_000)


class TestCircumcenters:
    def test_equidistance_property(self, graph_2d):
        centers, radii = graph_2d.circumcenters()
        simplices = graph_2d.simplices
        for idx in range(0, len(simplices), 25):
            center = centers[idx]
            if not np.all(np.isfinite(center)):
                continue
            dists = np.linalg.norm(graph_2d.seeds[simplices[idx]] - center, axis=1)
            assert np.allclose(dists, radii[idx], rtol=1e-6)


class TestVoronoiCells:
    def test_vertex_counts_sum(self, graph_2d):
        cells = VoronoiCells(graph_2d)
        counts = cells.vertex_counts()
        # Each simplex has d+1 vertices, so counts sum to (d+1) * #simplices.
        assert counts.sum() == 3 * len(graph_2d.simplices)

    def test_face_counts_are_degrees(self, graph_2d):
        cells = VoronoiCells(graph_2d)
        assert np.array_equal(cells.face_counts(), graph_2d.degrees())

    def test_hull_cells_unbounded(self, graph_2d):
        cells = VoronoiCells(graph_2d)
        bounded = cells.bounded_mask()
        assert 0 < bounded.sum() < graph_2d.num_seeds
        hull_seed = int(np.flatnonzero(~bounded)[0])
        assert not cells.is_bounded(hull_seed)

    def test_geometric_radii_cover_vertices(self, graph_2d):
        cells = VoronoiCells(graph_2d)
        radii = cells.geometric_radii()
        interior = np.flatnonzero(cells.bounded_mask())
        for seed in interior[:20]:
            verts = cells.cell_vertices(int(seed))
            dists = np.linalg.norm(verts - graph_2d.seeds[seed], axis=1)
            assert (dists <= radii[seed] + 1e-9).all()

    def test_roundness_5d(self, graph_5d):
        # The E5 claim: 5-D Voronoi cells have far more vertices than the
        # 32 of a hyper-box and more faces than the 10 of a hyper-box.
        report = VoronoiCells(graph_5d).roundness_report()
        assert report["box_vertices"] == 32
        assert report["box_faces"] == 10
        assert report["mean_vertices"] > report["box_vertices"]
        assert report["mean_faces"] > report["box_faces"]


class TestDensity:
    def test_simplex_volume_triangle(self):
        verts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        vol = simplex_volumes(verts, np.array([[0, 1, 2]]))
        assert np.isclose(vol[0], 0.5)

    def test_simplex_volume_tetrahedron(self):
        verts = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float
        )
        vol = simplex_volumes(verts, np.array([[0, 1, 2, 3]]))
        assert np.isclose(vol[0], 1.0 / 6.0)

    def test_volume_estimates_sum_to_hull_volume(self, graph_2d):
        estimates = voronoi_volume_estimates(graph_2d)
        total = simplex_volumes(graph_2d.seeds, graph_2d.simplices).sum()
        assert np.isclose(estimates.sum(), total, rtol=1e-9)

    def test_density_inverse_relationship(self):
        volumes = np.array([0.1, 1.0, 10.0])
        dens = density_from_volumes(volumes)
        assert dens[0] > dens[1] > dens[2]

    def test_density_with_counts(self):
        dens = density_from_volumes(np.array([1.0, 1.0]), np.array([10.0, 1.0]))
        assert dens[0] == 10 * dens[1]

    def test_zero_volume_capped(self):
        dens = density_from_volumes(np.array([0.0, 1.0]))
        assert np.isfinite(dens).all()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            density_from_volumes(np.ones(3), np.ones(4))

    def test_density_tracks_point_density(self):
        # Dense region cells get higher density than sparse region cells.
        rng = np.random.default_rng(5)
        dense = rng.normal(0.0, 0.2, size=(200, 2))
        sparse = rng.normal(5.0, 2.0, size=(200, 2))
        seeds = np.vstack([dense, sparse])
        graph = DelaunayGraph(seeds)
        volumes = voronoi_volume_estimates(graph)
        dens = density_from_volumes(volumes)
        assert np.median(dens[:200]) > 10 * np.median(dens[200:])
