"""Tests for the kd-tree structure and index."""

import numpy as np
import pytest

from repro.core.kdtree import KdTree, KdTreeIndex, default_num_levels
from repro.db import Database
from repro.geometry import Box, Polyhedron
from repro.core import polyhedron_full_scan


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(13)
    return np.vstack(
        [rng.normal(0, 1, (3000, 3)), rng.normal([4, 4, 4], 0.5, (1000, 3))]
    )


@pytest.fixture(scope="module")
def tree(points):
    return KdTree(points, num_levels=6)


class TestSizing:
    def test_default_levels_follow_sqrt_rule(self):
        # The paper: 270M rows -> 15 levels, 2^14 leaves, ~16K per leaf.
        assert default_num_levels(270_000_000) == 15

    def test_default_levels_small(self):
        assert default_num_levels(1) == 1
        assert default_num_levels(0) == 1

    def test_sqrt_rule_balances_leaf_count_and_size(self):
        n = 65536
        levels = default_num_levels(n)
        leaves = 2 ** (levels - 1)
        per_leaf = n / leaves
        assert 0.5 <= leaves / per_leaf <= 2.0

    def test_too_many_levels_rejected(self, points):
        with pytest.raises(ValueError):
            KdTree(points[:4], num_levels=10)

    def test_bad_axis_policy(self, points):
        with pytest.raises(ValueError):
            KdTree(points, axis_policy="zigzag")

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            KdTree(np.empty((0, 3)))


class TestStructure:
    def test_leaf_count(self, tree):
        assert tree.num_leaves == 32
        assert tree.num_nodes == 63

    def test_balance(self, tree):
        sizes = [tree.leaf_size(leaf) for leaf in range(32, 64)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == tree.num_points

    def test_segments_partition_rows(self, tree):
        # Children split the parent's row range exactly.
        for node in range(1, 32):
            start, end = tree.node_rows(node)
            l_start, l_end = tree.node_rows(2 * node)
            r_start, r_end = tree.node_rows(2 * node + 1)
            assert (start, end) == (l_start, r_end)
            assert l_end == r_start

    def test_permutation_is_a_permutation(self, tree):
        assert np.array_equal(np.sort(tree.permutation), np.arange(tree.num_points))

    def test_split_separates_points(self, tree, points):
        for node in (1, 2, 3, 7, 15):
            axis, value = tree.split_plane(node)
            l_start, l_end = tree.node_rows(2 * node)
            r_start, r_end = tree.node_rows(2 * node + 1)
            left = points[tree.permutation[l_start:l_end], axis]
            right = points[tree.permutation[r_start:r_end], axis]
            assert left.max() <= value <= right.min()

    def test_split_plane_on_leaf_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.split_plane(32)

    def test_partition_boxes_tile_root(self, tree, points):
        # Every point lies in its leaf's partition box; leaf boxes' total
        # volume equals the root volume.
        root = tree.partition_box(1)
        volume = sum(tree.partition_box(leaf).volume for leaf in range(32, 64))
        assert np.isclose(volume, root.volume, rtol=1e-9)

    def test_points_in_their_partition_box(self, tree, points):
        for leaf in range(32, 64):
            start, end = tree.node_rows(leaf)
            rows = tree.permutation[start:end]
            assert tree.partition_box(leaf).contains_points(points[rows]).all()

    def test_tight_boxes_contained_in_partition(self, tree):
        for node in range(1, 64):
            if tree.leaf_size(node) == 0:
                continue
            assert tree.partition_box(node).expanded(1e-9).contains_box(
                tree.tight_box(node)
            )

    def test_tight_boxes_nest_upward(self, tree):
        for node in range(1, 32):
            parent = tree.tight_box(node)
            for child in (2 * node, 2 * node + 1):
                if tree.leaf_size(child):
                    assert parent.contains_box(tree.tight_box(child))


class TestPostOrder:
    def test_ids_are_a_permutation(self, tree):
        ids = [tree.post_order_id(node) for node in range(1, 64)]
        assert sorted(ids) == list(range(1, 64))

    def test_root_is_last(self, tree):
        assert tree.post_order_id(1) == 63

    def test_subtree_between_property(self, tree):
        # Every descendant's id lies in the node's post-order range --
        # the property that makes subtree retrieval a BETWEEN.
        for node in range(1, 64):
            lo, hi = tree.post_order_range(node)
            descendants = [node]
            frontier = [node]
            while frontier:
                current = frontier.pop()
                if not tree.is_leaf(current):
                    frontier += [2 * current, 2 * current + 1]
                    descendants += [2 * current, 2 * current + 1]
            for d in descendants:
                assert lo <= tree.post_order_id(d) <= hi
        assert tree.post_order_range(1) == (1, 63)

    def test_leaf_ids_increase_left_to_right(self, tree):
        leaf_ids = tree.leaf_post_order_ids()
        assert (np.diff(leaf_ids) > 0).all()


class TestPointLocation:
    def test_leaf_of_point_contains_it(self, tree, points):
        rng = np.random.default_rng(0)
        for idx in rng.choice(tree.num_points, 100, replace=False):
            leaf = tree.leaf_of_point(points[idx])
            assert tree.partition_box(leaf).contains_point(points[idx])

    def test_leaves_containing_interior_point_is_single(self, tree):
        point = tree.partition_box(40).center
        leaves = tree.leaves_containing(point)
        assert leaves == [tree.leaf_of_point(point)]

    def test_leaves_containing_cut_plane_point(self, tree):
        axis, value = tree.split_plane(1)
        point = tree.partition_box(1).center.copy()
        point[axis] = value
        leaves = tree.leaves_containing(point)
        assert len(leaves) >= 2
        for leaf in leaves:
            assert tree.partition_box(leaf).contains_point(point)

    def test_leaf_statistics_keys(self, tree):
        stats = tree.leaf_statistics()
        assert stats["num_leaves"] == 32
        assert stats["mean_leaf_size"] * 32 == tree.num_points


class TestKdTreeIndex:
    @pytest.fixture(scope="class")
    def index(self, points):
        db = Database.in_memory(buffer_pages=None)
        data = {"x": points[:, 0], "y": points[:, 1], "z": points[:, 2]}
        # paged=False: these tests read tree.permutation after the build.
        return KdTreeIndex.build(
            db, "kd", data, ["x", "y", "z"], num_levels=6, paged=False
        )

    def test_registered_in_catalog(self, index):
        assert index.table.clustered_by == ("kd_leaf",)

    def test_rows_clustered_by_leaf(self, index):
        leaf_col = index.table.read_column("kd_leaf")
        assert (np.diff(leaf_col) >= 0).all()

    def test_leaf_ranges_address_clustered_table(self, index, points):
        tree = index.tree
        for leaf in (32, 45, 63):
            start, end = tree.node_rows(leaf)
            rows = index.table.read_rows(start, end)
            got = np.column_stack([rows["x"], rows["y"], rows["z"]])
            expected = points[tree.permutation[start:end]]
            assert sorted(map(tuple, np.round(got, 9))) == sorted(
                map(tuple, np.round(expected, 9))
            )

    def test_box_query_matches_scan(self, index, points):
        box = Box(np.array([-0.5, -0.5, -0.5]), np.array([0.7, 0.7, 0.7]))
        rows, stats = index.query_box(box)
        expected = int(box.contains_points(points).sum())
        assert stats.rows_returned == expected
        pts = index.points_of(rows)
        assert box.contains_points(pts).all()

    def test_polyhedron_query_matches_scan(self, index, points):
        poly = Polyhedron.simplex_around(np.array([0.0, 0.0, 0.0]), 1.0)
        rows, stats = index.query_polyhedron(poly)
        _, scan_stats = polyhedron_full_scan(index.table, index.dims, poly)
        assert stats.rows_returned == scan_stats.rows_returned

    def test_partition_boxes_also_correct(self, index, points):
        poly = Polyhedron.simplex_around(np.array([4.0, 4.0, 4.0]), 1.0)
        rows_tight, s_tight = index.query_polyhedron(poly, use_tight_boxes=True)
        rows_part, s_part = index.query_polyhedron(poly, use_tight_boxes=False)
        assert s_tight.rows_returned == s_part.rows_returned
        # Tight boxes never touch more pages than partition boxes.
        assert s_tight.pages_touched <= s_part.pages_touched

    def test_inside_subtrees_skip_point_filter(self, index, points):
        # A huge box covers the root: one INSIDE cell, zero partial.
        box = Box.from_points(points, pad=1.0)
        _, stats = index.query_box(box)
        assert stats.cells_inside == 1
        assert stats.cells_partial == 0
        assert stats.rows_returned == len(points)

    def test_disjoint_query_returns_nothing(self, index):
        box = Box(np.full(3, 100.0), np.full(3, 101.0))
        rows, stats = index.query_box(box)
        assert stats.rows_returned == 0
        assert stats.pages_touched == 0

    def test_dim_mismatch_rejected(self, index):
        with pytest.raises(ValueError):
            index.query_polyhedron(Polyhedron.from_box(Box.unit(2)))

    def test_selective_query_reads_fewer_pages(self, index, points):
        box = Box.cube(np.array([4.0, 4.0, 4.0]), 0.3)
        _, stats = index.query_box(box)
        assert 0 < stats.rows_returned < len(points) * 0.1
        assert stats.pages_touched < index.table.num_pages / 2
