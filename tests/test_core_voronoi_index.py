"""Tests for the sampled Voronoi tessellation index (§3.4)."""

import numpy as np
import pytest

from repro.core import VoronoiIndex, knn_brute_force, polyhedron_full_scan
from repro.db import Database
from repro.geometry import Box, Polyhedron


class TestBuild:
    def test_cell_tags_cover_table(self, voronoi_index):
        counts = voronoi_index.cell_point_counts()
        assert counts.sum() == voronoi_index.table.num_rows

    def test_clustered_on_cell(self, voronoi_index):
        tags = voronoi_index.table.read_column("voronoi_cell")
        assert (np.diff(tags) >= 0).all()

    def test_points_assigned_to_nearest_seed(self, voronoi_index):
        # Every stored point is closest to its own cell's seed.
        rows = voronoi_index.table.read_rows(0, voronoi_index.table.num_rows)
        pts = np.column_stack([rows[d] for d in voronoi_index.dims])
        tags = rows["voronoi_cell"]
        seeds = np.array(
            [voronoi_index.cell_seed_point(c) for c in range(voronoi_index.num_cells)]
        )
        rng = np.random.default_rng(0)
        for idx in rng.choice(len(pts), 200, replace=False):
            dists = np.linalg.norm(seeds - pts[idx], axis=1)
            assert np.isclose(dists[tags[idx]], dists.min())

    def test_radii_cover_members(self, voronoi_index):
        rows = voronoi_index.table.read_rows(0, voronoi_index.table.num_rows)
        pts = np.column_stack([rows[d] for d in voronoi_index.dims])
        tags = rows["voronoi_cell"]
        for cell in range(0, voronoi_index.num_cells, 17):
            members = pts[tags == cell]
            if len(members) == 0:
                continue
            seed = voronoi_index.cell_seed_point(cell)
            radius = voronoi_index.cell_radius(cell)
            assert (np.linalg.norm(members - seed, axis=1) <= radius + 1e-9).all()

    def test_seed_count_guards(self):
        db = Database.in_memory()
        rng = np.random.default_rng(0)
        data = {"x": rng.normal(size=50), "y": rng.normal(size=50)}
        with pytest.raises(ValueError):
            VoronoiIndex.build(db, "v1", data, ["x", "y"], num_seeds=3)
        with pytest.raises(ValueError):
            VoronoiIndex.build(db, "v2", data, ["x", "y"], num_seeds=51)

    def test_hilbert_curve_option(self):
        db = Database.in_memory()
        rng = np.random.default_rng(1)
        data = {"x": rng.normal(size=500), "y": rng.normal(size=500)}
        index = VoronoiIndex.build(
            db, "vh", data, ["x", "y"], num_seeds=32, curve="hilbert"
        )
        assert index.cell_point_counts().sum() == 500

    def test_bad_curve_rejected(self):
        db = Database.in_memory()
        rng = np.random.default_rng(1)
        data = {"x": rng.normal(size=100), "y": rng.normal(size=100)}
        with pytest.raises(ValueError):
            VoronoiIndex.build(db, "vb", data, ["x", "y"], num_seeds=16, curve="peano")

    def test_sfc_numbering_is_local(self, voronoi_index):
        # Consecutive cell ids should be spatially closer than random
        # pairs -- the point of space-filling-curve numbering.
        seeds = np.array(
            [voronoi_index.cell_seed_point(c) for c in range(voronoi_index.num_cells)]
        )
        consecutive = np.linalg.norm(np.diff(seeds, axis=0), axis=1).mean()
        rng = np.random.default_rng(2)
        idx = rng.permutation(len(seeds))
        random_pairs = np.linalg.norm(seeds[idx[:-1]] - seeds[idx[1:]], axis=1).mean()
        assert consecutive < random_pairs


class TestPointLocation:
    def test_locate_agrees_with_exact(self, voronoi_index):
        rng = np.random.default_rng(3)
        graph = voronoi_index.graph
        for _ in range(50):
            point = rng.normal([1.5, 1.0, 0.5], 1.5)
            cell, hops = voronoi_index.locate(point)
            exact_seed = graph.nearest_seed_exact(point)
            exact_cell = int(voronoi_index._cell_of_seed[exact_seed])
            assert cell == exact_cell
            assert hops >= 0

    def test_locate_from_custom_start(self, voronoi_index):
        point = np.array([0.0, 0.0, 0.0])
        cell_a, _ = voronoi_index.locate(point, start=0)
        cell_b, _ = voronoi_index.locate(point, start=voronoi_index.num_cells - 1)
        assert cell_a == cell_b

    def test_cell_rows_returns_members(self, voronoi_index):
        for cell in (0, 57, 150):
            rows, stats = voronoi_index.cell_rows(cell)
            assert len(rows["_row_id"]) == voronoi_index.cell_point_count(cell)
            assert (rows["voronoi_cell"] == cell).all()


class TestQueries:
    def test_polyhedron_matches_scan(self, voronoi_index, clustered_points_3d):
        poly = Polyhedron.from_box(Box.cube(np.array([0.0, 0.0, 0.0]), 0.8))
        rows, stats = voronoi_index.query_polyhedron(poly)
        expected = int(
            poly.contains_points(clustered_points_3d).sum()
        )
        assert stats.rows_returned == expected

    def test_simplex_query_matches_scan(self, voronoi_index):
        poly = Polyhedron.simplex_around(np.array([3.0, 2.0, 1.0]), 0.7)
        rows, stats = voronoi_index.query_polyhedron(poly)
        _, scan_stats = polyhedron_full_scan(
            voronoi_index.table, voronoi_index.dims, poly
        )
        assert stats.rows_returned == scan_stats.rows_returned

    def test_outside_cells_skipped(self, voronoi_index):
        poly = Polyhedron.from_box(Box.cube(np.array([0.0, 0.0, 0.0]), 0.4))
        _, stats = voronoi_index.query_polyhedron(poly)
        assert stats.cells_outside > 0
        assert (
            stats.cells_inside + stats.cells_outside + stats.cells_partial
            <= voronoi_index.num_cells
        )

    def test_dim_mismatch(self, voronoi_index):
        with pytest.raises(ValueError):
            voronoi_index.query_polyhedron(Polyhedron.from_box(Box.unit(2)))

    def test_ball_classification_conservative(self, voronoi_index):
        # INSIDE cells' members must all satisfy the polyhedron: implied
        # by result correctness, but check the count decomposition too.
        poly = Polyhedron.from_box(Box.cube(np.array([3.0, 2.0, 1.0]), 1.2))
        rows, stats = voronoi_index.query_polyhedron(poly)
        assert stats.rows_returned <= stats.rows_examined


class TestKnn:
    @pytest.mark.parametrize("k", [1, 7, 20])
    def test_matches_brute_force(self, voronoi_index, k):
        rng = np.random.default_rng(9)
        for _ in range(8):
            query = rng.normal([1.5, 1.0, 0.5], 1.2)
            truth = knn_brute_force(
                voronoi_index.table, voronoi_index.dims, query, k
            )
            got = voronoi_index.knn(query, k)
            assert np.allclose(got.distances, truth.distances)

    def test_reports_walk_hops(self, voronoi_index):
        result = voronoi_index.knn(np.zeros(3), 5)
        assert "walk_hops" in result.stats.extra
        assert result.stats.extra["cells_examined"] >= 1

    def test_k_validation(self, voronoi_index):
        with pytest.raises(ValueError):
            voronoi_index.knn(np.zeros(3), 0)

    def test_examines_fraction_of_cells(self, voronoi_index):
        result = voronoi_index.knn(np.array([0.1, 0.0, 0.2]), 5)
        assert result.stats.extra["cells_examined"] < voronoi_index.num_cells / 2
