"""Concurrent-correctness tests: replaying Figure 2 traffic at concurrency 8.

The acceptance bar of the serving layer: a workload slice replayed at 8
workers returns row-for-row identical results to serial execution, repeat
queries hit the result cache, per-query metrics are reported, and a tiny
deadline fails cleanly without killing workers.
"""

import numpy as np
import pytest

from repro import Database, KdTreeIndex, QueryPlanner, sdss_color_sample
from repro.datasets import QueryWorkload
from repro.service import (
    DeadlineExceeded,
    QueryService,
    replay_workload,
    rows_equal,
    run_serial,
)

BANDS = ["u", "g", "r", "i", "z"]

NUM_QUERIES = 240
NUM_UNIQUE = 80  # every unique query replayed 3x: plenty of cache traffic


@pytest.fixture(scope="module")
def setup():
    sample = sdss_color_sample(5000, seed=11)
    db = Database.in_memory(buffer_pages=1024)
    index = KdTreeIndex.build(db, "mag", sample.columns(), BANDS)
    planner = QueryPlanner(index, seed=11)
    workload = QueryWorkload(sample.magnitudes, seed=11)
    unique = workload.mixed(NUM_UNIQUE, selectivities=[0.001, 0.01, 0.05, 0.2, 0.5])
    polyhedra = [q.polyhedron(BANDS) for q in unique]
    queries = [polyhedra[i % NUM_UNIQUE] for i in range(NUM_QUERIES)]
    return db, planner, queries


class TestConcurrentReplay:
    def test_concurrency8_matches_serial_with_metrics_and_cache_hits(self, setup):
        db, planner, queries = setup
        serial = run_serial(planner, queries)

        service = QueryService(db, planner, workers=8, queue_depth=32)
        with service:
            report = replay_workload(service, queries, concurrency=8)

        assert report.errors == []
        assert report.completed == NUM_QUERIES

        # Row-for-row identical to serial execution, for every query.
        for idx, rows in enumerate(serial):
            assert rows_equal(report.rows(idx), rows), f"query {idx} diverged"

        # Per-query metrics: queue wait, exec time, pages, planner choice.
        records = service.metrics.per_query()
        assert len(records) == NUM_QUERIES
        for record in records:
            assert record.queue_wait_s >= 0.0
            assert record.exec_time_s >= 0.0
            assert record.chosen_path in ("kdtree", "scan", "cache")
            if not record.cache_hit:
                assert record.pages_read > 0

        # Repeat queries hit the result cache.
        summary = report.report["service"]
        assert summary["cache_hits"] > 0
        assert summary["cache_hit_rate"] > 0.0
        assert report.report["cache"]["hit_rate"] > 0.0

        # Session accounting covers every submission.
        session_stats = report.report["sessions"].values()
        assert sum(s["submitted"] for s in session_stats) == NUM_QUERIES
        assert sum(s["completed"] for s in session_stats) == NUM_QUERIES

    def test_tiny_deadline_fails_cleanly_and_service_keeps_serving(self, setup):
        db, planner, queries = setup
        service = QueryService(db, planner, workers=4, queue_depth=32)
        doomed = queries[:16]
        with service:
            report = replay_workload(
                service, doomed, concurrency=4, deadline=1e-9
            )
            # Every doomed query missed its deadline; none crashed a worker.
            assert report.completed == 0
            assert len(report.errors) == len(doomed)
            assert all(
                isinstance(exc, DeadlineExceeded) for _, exc in report.errors
            )
            assert service.alive_workers == 4

            # The service keeps serving normal queries afterwards.
            outcome = service.execute(queries[0], timeout=30)
            assert outcome.rows["_row_id"] is not None

        summary = service.metrics.summary()
        assert summary["deadline_misses"] == len(doomed)
        assert summary["completed"] >= 1

    def test_replay_applies_backpressure_not_loss(self, setup):
        db, planner, queries = setup
        # A deliberately tiny queue forces rejections; the driver retries
        # and still every query completes exactly once.
        service = QueryService(db, planner, workers=2, queue_depth=2)
        with service:
            report = replay_workload(service, queries[:60], concurrency=8)
        assert report.completed == 60
        assert report.errors == []
        admission = report.report["admission"]
        assert admission["admitted"] == 60
        assert admission["high_water"] <= 2

    def test_serial_service_matches_direct_planner(self, setup):
        db, planner, queries = setup
        subset = queries[:10]
        expected = run_serial(planner, subset)
        with QueryService(db, planner, workers=1, cache_entries=0) as service:
            for idx, poly in enumerate(subset):
                outcome = service.execute(poly, timeout=30)
                assert rows_equal(outcome.rows, expected[idx])
        assert service.cache is None  # caching disabled end to end


class TestRowsEqual:
    def test_detects_equal_and_unequal(self):
        a = {"_row_id": np.array([2, 1]), "u": np.array([20.0, 10.0])}
        b = {"_row_id": np.array([1, 2]), "u": np.array([10.0, 20.0])}
        assert rows_equal(a, b)
        c = {"_row_id": np.array([1, 2]), "u": np.array([10.0, 99.0])}
        assert not rows_equal(a, c)
        d = {"_row_id": np.array([1]), "u": np.array([10.0])}
        assert not rows_equal(a, d)
