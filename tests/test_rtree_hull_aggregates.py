"""Tests for the R-tree baseline, hull selector, aggregates, and pipes."""

import numpy as np
import pytest

from repro import (
    Box,
    ClipBoxPipe,
    Col,
    ColorByDensityPipe,
    ConvexHullSelector,
    Database,
    GeometrySet,
    Polyhedron,
    RTreeIndex,
    SubsamplePipe,
    aggregate_scan,
    count_rows,
    knn_brute_force,
    polyhedron_full_scan,
)
from repro.core.rtree import str_pack


class TestStrPack:
    def test_permutation_valid(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(500, 3))
        perm, leaves = str_pack(pts, leaf_capacity=32)
        assert np.array_equal(np.sort(perm), np.arange(500))

    def test_leaves_cover_rows(self):
        rng = np.random.default_rng(1)
        pts = rng.normal(size=(300, 2))
        _, leaves = str_pack(pts, leaf_capacity=20)
        covered = sorted((s, e) for s, e in leaves)
        position = 0
        for start, end in covered:
            assert start == position
            assert end - start <= 20
            position = end
        assert position == 300

    def test_small_input_single_leaf(self):
        pts = np.zeros((5, 2))
        perm, leaves = str_pack(pts, leaf_capacity=10)
        assert leaves == [(0, 5)]

    def test_capacity_guard(self):
        with pytest.raises(ValueError):
            str_pack(np.zeros((10, 2)), leaf_capacity=0)

    def test_tiles_are_spatially_coherent(self):
        # STR leaves should have much smaller extents than the data.
        rng = np.random.default_rng(2)
        pts = rng.uniform(size=(1000, 2))
        perm, leaves = str_pack(pts, leaf_capacity=25)
        leaf_areas = []
        for start, end in leaves:
            sub = pts[perm[start:end]]
            widths = sub.max(axis=0) - sub.min(axis=0)
            leaf_areas.append(np.prod(widths))
        assert np.mean(leaf_areas) < 0.05  # data area is 1.0


class TestRTreeIndex:
    @pytest.fixture(scope="class")
    def rtree(self, clustered_points_3d):
        db = Database.in_memory(buffer_pages=None)
        pts = clustered_points_3d
        data = {"x": pts[:, 0], "y": pts[:, 1], "z": pts[:, 2]}
        return RTreeIndex.build(db, "rt", data, ["x", "y", "z"], leaf_capacity=64)

    def test_clustered_by_leaf(self, rtree):
        leaf_col = rtree.table.read_column("rt_leaf")
        assert (np.diff(leaf_col) >= 0).all()

    def test_statistics(self, rtree):
        stats = rtree.leaf_statistics()
        assert stats["num_leaves"] == rtree.num_leaves
        assert stats["height"] >= 2

    def test_box_query_matches_scan(self, rtree, clustered_points_3d):
        box = Box.cube(np.array([0.0, 0.0, 0.0]), 0.6)
        rows, stats = rtree.query_box(box)
        expected = int(box.contains_points(clustered_points_3d).sum())
        assert stats.rows_returned == expected

    def test_polyhedron_matches_scan(self, rtree):
        poly = Polyhedron.simplex_around(np.array([3.0, 2.0, 1.0]), 0.8)
        _, stats = rtree.query_polyhedron(poly)
        _, scan_stats = polyhedron_full_scan(rtree.table, rtree.dims, poly)
        assert stats.rows_returned == scan_stats.rows_returned

    def test_selective_query_prunes(self, rtree):
        box = Box.cube(np.array([0.0, 0.0, 0.0]), 0.3)
        _, stats = rtree.query_box(box)
        assert stats.pages_touched < rtree.table.num_pages / 2

    def test_knn_exact(self, rtree):
        rng = np.random.default_rng(3)
        for _ in range(10):
            query = rng.normal([1.5, 1.0, 0.5], 1.2)
            truth = knn_brute_force(rtree.table, rtree.dims, query, 6)
            got = rtree.knn(query, 6)
            assert np.allclose(got.distances, truth.distances)

    def test_knn_validation(self, rtree):
        with pytest.raises(ValueError):
            rtree.knn(np.zeros(3), 0)

    def test_dim_mismatch(self, rtree):
        with pytest.raises(ValueError):
            rtree.query_polyhedron(Polyhedron.from_box(Box.unit(2)))

    def test_fan_out_guard(self, clustered_points_3d):
        db = Database.in_memory()
        pts = clustered_points_3d[:200]
        data = {"x": pts[:, 0], "y": pts[:, 1], "z": pts[:, 2]}
        with pytest.raises(ValueError):
            RTreeIndex.build(db, "rt_bad", data, ["x", "y", "z"], fan_out=1)


class TestConvexHullSelector:
    def test_training_points_inside_own_hull(self):
        rng = np.random.default_rng(4)
        training = rng.normal(size=(60, 3))
        hull = ConvexHullSelector(training, margin=1e-9)
        assert hull.contains(training).mean() > 0.95  # QJ joggle tolerance

    def test_margin_grows_selection(self):
        rng = np.random.default_rng(5)
        training = rng.normal(size=(50, 2))
        probes = rng.normal(size=(2000, 2)) * 1.5
        tight = ConvexHullSelector(training, margin=0.0)
        padded = ConvexHullSelector(training, margin=0.5)
        assert padded.contains(probes).sum() > tight.contains(probes).sum()

    def test_select_through_index(self, kd_index, clustered_points_3d):
        rng = np.random.default_rng(6)
        # Train on a corner of the first cluster.
        training = rng.normal([0.0, 0.0, 0.0], 0.2, size=(40, 3))
        hull = ConvexHullSelector(training, margin=0.05)
        rows, stats = hull.select(kd_index)
        expected = int(hull.contains(clustered_points_3d).sum())
        assert stats.rows_returned == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvexHullSelector(np.zeros((3, 3)))  # too few
        with pytest.raises(ValueError):
            ConvexHullSelector(np.random.default_rng(0).normal(size=(10, 2)), margin=-1)

    def test_dim_check_on_select(self, kd_index):
        hull = ConvexHullSelector(np.random.default_rng(1).normal(size=(10, 2)))
        with pytest.raises(ValueError):
            hull.select(kd_index)

    def test_volume_positive(self):
        hull = ConvexHullSelector(np.random.default_rng(2).normal(size=(30, 3)))
        assert hull.hull_volume > 0
        assert hull.num_facets >= 4


class TestAggregates:
    @pytest.fixture()
    def table(self, db):
        rng = np.random.default_rng(7)
        data = {"a": rng.normal(size=400), "b": rng.uniform(0, 10, 400)}
        return db.create_table("agg", data, rows_per_page=64), data

    def test_count(self, table):
        t, data = table
        n, stats = count_rows(t)
        assert n == 400
        assert stats.pages_touched == t.num_pages

    def test_count_filtered(self, table):
        t, data = table
        n, _ = count_rows(t, Col("a") > 0.0)
        assert n == int((data["a"] > 0).sum())

    def test_all_aggregates(self, table):
        t, data = table
        results, _ = aggregate_scan(
            t,
            {
                "n": ("count", None),
                "total": ("sum", "b"),
                "lo": ("min", "a"),
                "hi": ("max", "a"),
                "mean": ("avg", "b"),
            },
        )
        assert results["n"] == 400
        assert np.isclose(results["total"], data["b"].sum())
        assert np.isclose(results["lo"], data["a"].min())
        assert np.isclose(results["hi"], data["a"].max())
        assert np.isclose(results["mean"], data["b"].mean())

    def test_empty_match(self, table):
        t, _ = table
        results, _ = aggregate_scan(
            t, {"n": ("count", None), "m": ("min", "a")}, Col("a") > 1e9
        )
        assert results["n"] == 0
        assert np.isnan(results["m"])

    def test_validation(self, table):
        t, _ = table
        with pytest.raises(ValueError):
            aggregate_scan(t, {})
        with pytest.raises(ValueError):
            aggregate_scan(t, {"x": ("median", "a")})
        with pytest.raises(ValueError):
            aggregate_scan(t, {"x": ("sum", None)})


class TestPipes:
    def _points_geometry(self, n=100, seed=0):
        rng = np.random.default_rng(seed)
        return GeometrySet(
            points=rng.normal(size=(n, 3)),
            attributes={"ids": np.arange(n)},
        )

    def test_subsample_respects_budget(self):
        pipe = SubsamplePipe(max_points=30)
        out = pipe.process(self._points_geometry(100))
        assert out.num_points == 30
        assert len(out.attributes["ids"]) == 30

    def test_subsample_passthrough(self):
        pipe = SubsamplePipe(max_points=200)
        geometry = self._points_geometry(100)
        assert pipe.process(geometry) is geometry

    def test_subsample_validation(self):
        with pytest.raises(ValueError):
            SubsamplePipe(0)

    def test_clip_box(self):
        pipe = ClipBoxPipe(Box.cube(np.zeros(3), 1.0))
        out = pipe.process(self._points_geometry(500))
        assert pipe.box.contains_points(out.points).all()
        assert out.num_points < 500

    def test_clip_lines_by_endpoint(self):
        lines = np.array(
            [
                [[0.0, 0.0, 0.0], [5.0, 0.0, 0.0]],  # one endpoint in
                [[5.0, 5.0, 5.0], [6.0, 6.0, 6.0]],  # fully out
            ]
        )
        pipe = ClipBoxPipe(Box.cube(np.zeros(3), 1.0))
        out = pipe.process(GeometrySet(lines=lines))
        assert out.num_lines == 1

    def test_color_by_density(self):
        rng = np.random.default_rng(1)
        dense = rng.normal(0, 0.05, size=(50, 3))
        sparse = rng.normal(5, 2.0, size=(50, 3))
        geometry = GeometrySet(points=np.vstack([dense, sparse]))
        out = ColorByDensityPipe(k=5).process(geometry)
        density = out.attributes["point_density"]
        assert np.median(density[:50]) > np.median(density[50:])

    def test_color_by_density_tiny_input(self):
        out = ColorByDensityPipe(k=10).process(self._points_geometry(4))
        assert np.allclose(out.attributes["point_density"], 1.0)

    def test_pipe_validation(self):
        with pytest.raises(ValueError):
            ColorByDensityPipe(0)
