"""The I/O acceleration stack: zone maps, read-ahead, decoded-page cache.

Covers the three layers the query hot path gained and the contracts
between them:

* zone maps classify pages soundly (differentially checked against the
  un-pruned scans, including sharded execution) and die with the table;
* coalesced read-ahead is invisible except in the counters -- same rows,
  fewer storage requests -- and keeps fault injection observable;
* the decoded-page cache verifies every distinct byte content exactly
  once while torn pages still surface on genuinely cold reads;
* the service's result cache enforces its byte budget and reports it.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro import (
    Box,
    Database,
    KdPartitioner,
    KdTreeIndex,
    Polyhedron,
    QueryPlanner,
    QueryService,
    ScatterGatherExecutor,
    polyhedron_full_scan,
)
from repro.db import CorruptPageError, ZoneMap, full_scan
from repro.db.persistence import attach_database, save_catalog
from repro.db.scan import _coalesced_runs
from repro.geometry.boxes import BoxRelation
from repro.service.result_cache import ResultCache

from .faultutil import make_faulty_db

NUM_ROWS = 1024
ROWS_PER_PAGE = 64  # 16 pages of a sorted column: one tight box per page


def _sorted_data(n: int = NUM_ROWS) -> dict[str, np.ndarray]:
    return {
        "x": np.arange(n, dtype=np.float64),
        "oid": np.arange(n, dtype=np.int64),
    }


def _interval(lo: float, hi: float) -> Polyhedron:
    return Polyhedron.from_box(Box(np.array([lo]), np.array([hi])))


def _row_ids(rows: dict) -> frozenset[int]:
    return frozenset(int(v) for v in rows["_row_id"])


@pytest.fixture()
def sorted_table():
    db = Database.in_memory(buffer_pages=None)
    table = db.create_table("t", _sorted_data(), rows_per_page=ROWS_PER_PAGE)
    return db, table


class TestZoneMapConstruction:
    def test_built_at_table_creation_with_page_tight_boxes(self, sorted_table):
        db, table = sorted_table
        zone_map = db.zone_map("t")
        assert zone_map is not None
        assert zone_map.num_pages == table.num_pages == 16
        for page_id in range(table.num_pages):
            box = zone_map.box(page_id)
            lo = page_id * ROWS_PER_PAGE
            x_axis = zone_map.columns.index("x")
            assert box.lo[x_axis] == lo
            assert box.hi[x_axis] == lo + ROWS_PER_PAGE - 1

    def test_page_order_is_enforced(self):
        db = Database.in_memory(buffer_pages=None)
        table = db.create_table("t", _sorted_data(256), rows_per_page=64)
        zone_map = ZoneMap("t", ["x"])
        with pytest.raises(ValueError, match="expected page 0"):
            zone_map.observe_page(table.read_page(2))

    def test_pruner_trichotomy_matches_geometry(self, sorted_table):
        db, _ = sorted_table
        # [96, 352): fully covers pages 2..4, clips pages 1 and 5.
        pruner = db.zone_map("t").pruner(_interval(96.0, 351.0), ["x"])
        assert pruner.classify(0) is BoxRelation.OUTSIDE
        assert pruner.classify(1) is BoxRelation.PARTIAL
        for page_id in (2, 3, 4):
            assert pruner.classify(page_id) is BoxRelation.INSIDE
        assert pruner.classify(5) is BoxRelation.PARTIAL
        assert pruner.classify(6) is BoxRelation.OUTSIDE
        counts = pruner.counts()
        assert counts == {"outside": 11, "partial": 2, "inside": 3}
        assert pruner.surviving(range(16)) == [1, 2, 3, 4, 5]

    def test_unknown_pages_and_uncovered_dims_degrade_conservatively(
        self, sorted_table
    ):
        db, _ = sorted_table
        zone_map = db.zone_map("t")
        pruner = zone_map.pruner(_interval(0.0, 1.0), ["x"])
        # A page the map never observed must not be skipped.
        assert pruner.classify(999) is BoxRelation.PARTIAL
        # A dimension without synopses disables pruning entirely.
        assert zone_map.pruner(_interval(0.0, 1.0), ["no_such_column"]) is None

    def test_disabled_database_has_no_zone_maps_but_scans_correctly(self):
        db = Database.in_memory(buffer_pages=None, zone_maps=False)
        table = db.create_table("t", _sorted_data(), rows_per_page=ROWS_PER_PAGE)
        assert db.zone_map("t") is None
        rows, stats = polyhedron_full_scan(table, ["x"], _interval(100.0, 199.0))
        assert _row_ids(rows) == frozenset(range(100, 200))
        assert stats.pages_skipped == 0


class TestZoneMapScanIntegration:
    def test_outside_pages_never_read_inside_pages_skip_predicate(
        self, sorted_table
    ):
        db, table = sorted_table
        polyhedron = _interval(96.0, 351.0)
        pruner = db.zone_map("t").pruner(polyhedron, ["x"])
        calls = {"n": 0}

        def predicate(columns):
            calls["n"] += 1
            return (columns["x"] >= 96.0) & (columns["x"] <= 351.0)

        rows, stats = full_scan(table, predicate=predicate, pruner=pruner)
        assert _row_ids(rows) == frozenset(range(96, 352))
        assert stats.pages_skipped == 11  # OUTSIDE pages never surfaced
        assert stats.pages_touched == 5  # 2 PARTIAL + 3 INSIDE
        assert calls["n"] == 2  # only the PARTIAL pages ran the filter

    @pytest.mark.parametrize(
        "lo,hi",
        [(0.0, 63.0), (96.0, 351.0), (31.5, 32.5), (-10.0, 2000.0), (2000.0, 3000.0)],
    )
    def test_differential_pruned_vs_unpruned_full_scan(self, sorted_table, lo, hi):
        _, table = sorted_table
        polyhedron = _interval(lo, hi)
        pruned, _ = polyhedron_full_scan(table, ["x"], polyhedron)
        plain, _ = polyhedron_full_scan(
            table, ["x"], polyhedron, use_zone_maps=False
        )
        assert _row_ids(pruned) == _row_ids(plain)

    def test_differential_kd_index_with_and_without_zone_maps(self):
        rng = np.random.default_rng(3)
        db = Database.in_memory(buffer_pages=None)
        dims = ["a", "b"]
        data = {
            "a": rng.normal(size=2000),
            "b": rng.normal(size=2000),
            "oid": np.arange(2000, dtype=np.int64),
        }
        index = KdTreeIndex.build(db, "pts", data, dims)
        for trial in range(5):
            center = rng.normal(size=2) * 0.5
            half = rng.uniform(0.1, 1.0)
            polyhedron = Polyhedron.from_box(Box.cube(center, half))
            on_rows, on_stats = index.query_polyhedron(polyhedron)
            off_rows, _ = index.query_polyhedron(polyhedron, use_zone_maps=False)
            assert _row_ids(on_rows) == _row_ids(off_rows), f"trial {trial}"

    def test_differential_sharded_scatter_gather(self):
        rng = np.random.default_rng(9)
        dims = ["a", "b"]
        data = {
            "a": rng.normal(size=1200),
            "b": rng.normal(size=1200),
            "oid": np.arange(1200, dtype=np.int64),
        }
        with_maps = KdPartitioner(2, buffer_pages=None).partition(
            "pts", dict(data), dims
        )
        without_maps = KdPartitioner(
            2,
            database_factory=lambda j: Database.in_memory(
                buffer_pages=None, zone_maps=False
            ),
        ).partition("pts", dict(data), dims)
        with ScatterGatherExecutor(with_maps) as on, ScatterGatherExecutor(
            without_maps
        ) as off:
            for trial in range(4):
                center = rng.normal(size=2) * 0.5
                polyhedron = Polyhedron.from_box(
                    Box.cube(center, rng.uniform(0.2, 1.0))
                )
                oids_on = frozenset(
                    int(v) for v in on.execute(polyhedron).rows["oid"]
                )
                oids_off = frozenset(
                    int(v) for v in off.execute(polyhedron).rows["oid"]
                )
                assert oids_on == oids_off, f"trial {trial}"


class TestZoneMapInvalidation:
    def test_drop_table_drops_the_map(self, sorted_table):
        db, _ = sorted_table
        assert db.zone_map("t") is not None
        db.drop_table("t")
        assert db.zone_map("t") is None
        assert "t" not in db.zone_map_names()

    def test_recreate_rebuilds_the_map_for_the_new_contents(self, sorted_table):
        db, _ = sorted_table
        db.drop_table("t")
        shifted = {
            "x": np.arange(NUM_ROWS, dtype=np.float64) + 5000.0,
            "oid": np.arange(NUM_ROWS, dtype=np.int64),
        }
        table = db.create_table("t", shifted, rows_per_page=ROWS_PER_PAGE)
        # A query aimed at the *old* value range now prunes everything...
        rows, stats = polyhedron_full_scan(table, ["x"], _interval(0.0, 500.0))
        assert len(rows["_row_id"]) == 0
        assert stats.pages_skipped == table.num_pages
        # ...and the new range answers exactly.
        rows, _ = polyhedron_full_scan(table, ["x"], _interval(5000.0, 5099.0))
        assert _row_ids(rows) == frozenset(range(100))

    def test_zone_maps_survive_catalog_persistence(self, tmp_path):
        db = Database.on_disk(tmp_path / "zm", buffer_pages=None)
        db.create_table("t", _sorted_data(), rows_per_page=ROWS_PER_PAGE)
        save_catalog(db)

        reopened = attach_database(tmp_path / "zm", buffer_pages=None)
        zone_map = reopened.zone_map("t")
        assert zone_map is not None
        assert zone_map.num_pages == 16
        rows, stats = polyhedron_full_scan(
            reopened.table("t"), ["x"], _interval(100.0, 199.0)
        )
        assert _row_ids(rows) == frozenset(range(100, 200))
        assert stats.pages_skipped > 0


class TestCoalescedReadAhead:
    def test_runs_split_on_gaps_and_window(self):
        assert _coalesced_runs([0, 1, 2, 5, 6, 9], 8) == [[0, 1, 2], [5, 6], [9]]
        assert _coalesced_runs([0, 1, 2, 3], 2) == [[0, 1], [2, 3]]
        assert _coalesced_runs([], 8) == []

    def test_scan_prefetches_in_batches_with_identical_rows(self, sorted_table):
        db, table = sorted_table
        polyhedron = _interval(0.0, float(NUM_ROWS))

        db.cold_cache()
        db.reset_io_stats()
        plain, _ = polyhedron_full_scan(table, ["x"], polyhedron)
        batched = db.io_stats.snapshot()
        assert batched.pages_prefetched > 0
        assert batched.coalesced_reads > 0

        db.cold_cache()
        db.reset_io_stats()
        single, stats = full_scan(
            table, predicate=None, readahead=0
        )
        assert db.io_stats.pages_prefetched == 0
        assert stats.pages_prefetched == 0
        assert _row_ids(plain) == _row_ids(single)

    def test_transient_faults_inside_a_batch_are_retried_and_counted(self):
        db, injector = make_faulty_db(seed=4, buffer_pages=8)
        table = db.create_table("t", _sorted_data(), rows_per_page=ROWS_PER_PAGE)
        truth, _ = polyhedron_full_scan(table, ["x"], _interval(0.0, 1024.0))

        db.cold_cache()
        db.reset_io_stats()
        injector.fail_next_reads(2)
        rows, stats = polyhedron_full_scan(table, ["x"], _interval(0.0, 1024.0))
        assert _row_ids(rows) == _row_ids(truth)
        io = db.io_stats.as_dict()
        assert io["read_faults"] >= 2
        assert io["read_retries"] >= 2
        assert stats.pages_prefetched > 0

    def test_rate_faults_through_the_coalesced_path_keep_answers_exact(self):
        db, injector = make_faulty_db(seed=11, buffer_pages=8)
        table = db.create_table("t", _sorted_data(), rows_per_page=ROWS_PER_PAGE)
        queries = [(0.0, 63.0), (100.0, 500.0), (0.0, 1024.0), (900.0, 1023.0)]
        truth = [
            _row_ids(polyhedron_full_scan(table, ["x"], _interval(lo, hi))[0])
            for lo, hi in queries
        ]

        injector.configure(read_fault_rate=0.1)
        db.cold_cache()
        for (lo, hi), expected in zip(queries, truth):
            db.cold_cache()
            rows, _ = polyhedron_full_scan(table, ["x"], _interval(lo, hi))
            assert _row_ids(rows) == expected
        assert injector.counters()["reads_failed"] > 0
        assert db.io_stats.read_retries > 0


class TestDecodedPageCache:
    def test_repeat_scans_verify_each_page_once(self):
        db = Database.in_memory(buffer_pages=4)  # pool far smaller than table
        table = db.create_table("t", _sorted_data(), rows_per_page=ROWS_PER_PAGE)
        polyhedron = _interval(0.0, 1024.0)

        db.cold_cache()
        db.reset_io_stats()
        first, _ = polyhedron_full_scan(table, ["x"], polyhedron)
        after_cold = db.io_stats.snapshot()
        assert after_cold.checksum_verifications == table.num_pages

        second, _ = polyhedron_full_scan(table, ["x"], polyhedron)
        after_warm = db.io_stats.snapshot()
        # The tiny pool forced re-reads, but no byte content was
        # re-verified or re-decoded.
        assert after_warm.checksum_verifications == after_cold.checksum_verifications
        assert after_warm.decode_hits > after_cold.decode_hits
        assert _row_ids(first) == _row_ids(second)

    def test_disabled_cache_re_verifies_every_re_read(self):
        db = Database.in_memory(buffer_pages=4, decoded_cache_bytes=0)
        table = db.create_table("t", _sorted_data(), rows_per_page=ROWS_PER_PAGE)
        polyhedron = _interval(0.0, 1024.0)
        db.cold_cache()
        db.reset_io_stats()
        polyhedron_full_scan(table, ["x"], polyhedron)
        polyhedron_full_scan(table, ["x"], polyhedron)
        io = db.io_stats.as_dict()
        assert io["decode_hits"] == 0
        assert io["checksum_verifications"] > table.num_pages

    def test_byte_budget_bounds_the_decoded_cache(self):
        db = Database.in_memory(buffer_pages=1, decoded_cache_bytes=4096)
        table = db.create_table("t", _sorted_data(), rows_per_page=ROWS_PER_PAGE)
        db.cold_cache()
        for page_id in range(table.num_pages):
            table.read_page(page_id)
        assert 0 < db.buffer_pool.decoded_cache_bytes <= 4096


class TestChecksumDiscipline:
    """Satellite: CRC verified once per content, faults stay observable."""

    def test_verify_once_across_primary_evictions(self):
        db = Database.in_memory(buffer_pages=1)
        table = db.create_table("t", _sorted_data(128), rows_per_page=64)
        db.cold_cache()
        db.reset_io_stats()
        table.read_page(0)  # verified
        table.read_page(1)  # verified; evicts page 0 from the frame cache
        table.read_page(0)  # re-read bytes, decode hit, no re-verification
        io = db.io_stats.as_dict()
        assert io["checksum_verifications"] == 2
        assert io["decode_hits"] == 1

    def test_persistent_torn_pages_raise_on_cold_reads(self):
        db, injector = make_faulty_db(seed=6, buffer_pages=8)
        table = db.create_table("t", _sorted_data(128), rows_per_page=64)
        injector.configure(corrupt_rate=1.0)
        db.cold_cache()
        db.reset_io_stats()
        with pytest.raises(CorruptPageError):
            table.read_page(0)
        io = db.io_stats.as_dict()
        assert io["read_faults"] > 0
        assert io["decode_hits"] == 0

    def test_warm_decoded_cache_absorbs_torn_rereads_cold_cache_detects(self):
        db, injector = make_faulty_db(seed=6, buffer_pages=1)
        table = db.create_table("t", _sorted_data(128), rows_per_page=64)
        db.cold_cache()
        intact = table.read_page(0).columns["x"].copy()
        table.read_page(1)  # evicts page 0's frame; decoded copy remains

        # Torn bytes with an intact stored CRC are absorbed by the
        # already-verified decoded copy -- the sanctioned fast path.
        injector.configure(corrupt_rate=1.0)
        absorbed = table.read_page(0)
        assert np.array_equal(absorbed.columns["x"], intact)

        # A genuinely cold read (both cache levels dropped) must still
        # surface the corruption: fault injection stays observable.
        db.cold_cache()
        with pytest.raises(CorruptPageError):
            table.read_page(0)


class TestResultCacheByteBudget:
    @staticmethod
    def _result(num_values: int) -> SimpleNamespace:
        return SimpleNamespace(
            rows={"v": np.zeros(num_values, dtype=np.float64)}
        )

    def test_byte_bound_evicts_lru_first(self):
        cache = ResultCache(capacity=10, max_bytes=20_000)
        for i in range(3):  # 8000 bytes each
            cache.put(f"k{i}", "t", self._result(1000))
        assert len(cache) == 2
        assert cache.get("k0") is None  # the oldest entry paid for the budget
        assert cache.get("k2") is not None
        assert cache.cache_bytes <= 20_000

    def test_oversized_single_entry_does_not_pin_the_budget(self):
        cache = ResultCache(capacity=10, max_bytes=1000)
        cache.put("big", "t", self._result(1000))
        assert len(cache) == 0
        assert cache.cache_bytes == 0

    def test_invalidation_returns_the_bytes(self):
        cache = ResultCache(capacity=10, max_bytes=None)
        cache.put("a", "t", self._result(100))
        cache.put("b", "u", self._result(100))
        assert cache.invalidate_table("t") == 1
        assert cache.cache_bytes == 800
        counters = cache.counters()
        assert counters["cache_bytes"] == 800.0
        assert counters["invalidations"] == 1.0

    def test_service_report_exposes_cache_bytes(self):
        rng = np.random.default_rng(2)
        db = Database.in_memory(buffer_pages=None)
        dims = ["a", "b"]
        data = {
            "a": rng.normal(size=1500),
            "b": rng.normal(size=1500),
            "oid": np.arange(1500, dtype=np.int64),
        }
        index = KdTreeIndex.build(db, "pts", data, dims)
        planner = QueryPlanner(index, seed=2)
        polyhedron = Polyhedron.from_box(Box.cube(np.zeros(2), 1.0))
        with QueryService(
            db, planner, workers=2, cache_entries=8, cache_bytes=1 << 20
        ) as service:
            first = service.execute(polyhedron, timeout=60)
            second = service.execute(polyhedron, timeout=60)
            assert second.cache_hit
            report = service.report()
        assert report["cache"]["cache_bytes"] > 0
        assert report["cache"]["max_bytes"] == float(1 << 20)
        assert frozenset(first.rows["oid"]) == frozenset(second.rows["oid"])
