"""Tests for the index-backed k-NN classifier (§2.2)."""

import numpy as np
import pytest

from repro import Database, KnnClassifier, Whitener, sdss_color_sample


@pytest.fixture(scope="module")
def labeled_split():
    # Classification runs in the whitened color space: spectral classes
    # separate in colors, while overall brightness is a nuisance axis
    # that dilutes Euclidean neighborhoods (same framing as Figure 1
    # and the BST experiment).
    sample = sdss_color_sample(20_000, seed=8)
    keep = sample.labels != 3  # outliers are not a class to learn
    points = Whitener(mode="std").fit_transform(sample.colors())[keep]
    labels = sample.labels[keep]
    rng = np.random.default_rng(1)
    train = rng.choice(len(points), 1500, replace=False)
    pool = np.setdiff1d(np.arange(len(points)), train)
    test = rng.choice(pool, 300, replace=False)
    return points, labels, train, test


class TestKnnClassifier:
    def test_accuracy_beats_majority_baseline(self, labeled_split):
        points, labels, train, test = labeled_split
        db = Database.in_memory(buffer_pages=None)
        clf = KnnClassifier(db, points[train], labels[train], k=15)
        accuracy = clf.accuracy(points[test], labels[test])
        majority = np.bincount(labels[test]).max() / len(test)
        assert accuracy > majority + 0.1
        assert accuracy > 0.85

    def test_training_points_self_classify(self, labeled_split):
        points, labels, train, _ = labeled_split
        db = Database.in_memory(buffer_pages=None)
        clf = KnnClassifier(
            db, points[train], labels[train], k=5, table_name="self_clf"
        )
        subset = train[:50]
        predictions = clf.predict(points[subset])
        # Weighted voting makes the zero-distance self match dominate.
        assert (predictions == labels[subset]).mean() > 0.9

    def test_unweighted_mode(self, labeled_split):
        points, labels, train, test = labeled_split
        db = Database.in_memory(buffer_pages=None)
        clf = KnnClassifier(
            db, points[train], labels[train], k=15, weighted=False,
            table_name="unweighted_clf",
        )
        accuracy = clf.accuracy(points[test][:100], labels[test][:100])
        assert accuracy > 0.8

    def test_single_prediction_shape(self, labeled_split):
        points, labels, train, _ = labeled_split
        db = Database.in_memory(buffer_pages=None)
        clf = KnnClassifier(
            db, points[train], labels[train], k=3, table_name="one_clf"
        )
        assert isinstance(clf.predict_one(points[0]), int)
        assert clf.predict(points[:3]).shape == (3,)

    def test_validation(self, labeled_split):
        points, labels, train, _ = labeled_split
        db = Database.in_memory()
        with pytest.raises(ValueError):
            KnnClassifier(db, points[train], labels[train][:-1], k=3)
        with pytest.raises(ValueError):
            KnnClassifier(db, points[train], labels[train], k=0)
        clf = KnnClassifier(
            db, points[train][:100], labels[train][:100], k=3,
            table_name="dim_clf",
        )
        with pytest.raises(ValueError):
            clf.predict_one(np.zeros(2))
