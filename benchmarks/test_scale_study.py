"""Scaling study: how the index advantage grows with table size.

The paper's headline ("orders of magnitudes") is measured at 270M rows;
our default benches run at 60K.  This study sweeps N and shows the
low-selectivity page ratio *growing* with N -- the evidence that the
default-scale numbers extrapolate in the paper's direction.  The
mechanism is simple: a fixed-selectivity query touches O(result) pages
through the index but O(N) pages in a scan, so the ratio scales like
N / result.
"""

from __future__ import annotations

import time

import numpy as np

from repro import Database, KdTreeIndex, polyhedron_full_scan, sdss_color_sample
from repro.datasets import QueryWorkload
from repro.datasets.sdss import BANDS

from .conftest import print_table, scaled


def test_scale_page_ratio_grows_with_n(benchmark):
    """Fixed 0.2% selectivity across N: page speedup vs table size."""

    def run():
        rows = []
        for n in (scaled(15_000), scaled(60_000), scaled(240_000)):
            sample = sdss_color_sample(n, seed=99)
            db = Database.in_memory(buffer_pages=None)
            build_start = time.perf_counter()
            index = KdTreeIndex.build(db, f"scale_{n}", sample.columns(), list(BANDS))
            build_time = time.perf_counter() - build_start
            workload = QueryWorkload(sample.magnitudes, seed=3)
            ratios = []
            for _ in range(4):
                poly = workload.box_query(0.002).polyhedron(list(BANDS))
                _, kd_stats = index.query_polyhedron(poly)
                _, scan_stats = polyhedron_full_scan(index.table, list(BANDS), poly)
                assert kd_stats.rows_returned == scan_stats.rows_returned
                ratios.append(
                    scan_stats.pages_touched / max(kd_stats.pages_touched, 1)
                )
            rows.append(
                [
                    n,
                    index.table.num_pages,
                    index.tree.num_leaves,
                    float(np.mean(ratios)),
                    build_time,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Scale study: page speedup at 0.2% selectivity vs N",
        ["rows", "pages", "leaves", "page_speedup", "build_s"],
        rows,
    )
    speedups = [row[3] for row in rows]
    # The advantage grows with N (the extrapolation to the paper's
    # "orders of magnitudes" at 270M).  Leaf sizes also grow as sqrt(N),
    # so the observed growth is sub-proportional but steadily upward.
    assert speedups == sorted(speedups)
    assert speedups[-1] > 1.3 * speedups[0]
    # Build time stays near-linear: 16x rows under ~48x time.
    assert rows[-1][4] < 48 * max(rows[0][4], 1e-3)
