"""Shared benchmark fixtures and scale control.

Set ``REPRO_BENCH_SCALE`` to scale the dataset sizes (default 1.0).  All
reproduced quantities are ratios and shapes, which are stable across
scale; raising the scale sharpens the index-vs-scan contrasts at the
cost of wall-clock time.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import Database, KdTreeIndex, sdss_color_sample
from repro.datasets.sdss import BANDS


def bench_scale() -> float:
    """The global scale multiplier from ``REPRO_BENCH_SCALE``."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int) -> int:
    """Scale a default size by the multiplier."""
    return max(64, int(n * bench_scale()))


@pytest.fixture(scope="session")
def bench_sample():
    """The shared SDSS color-space sample for index benchmarks."""
    return sdss_color_sample(scaled(60_000), seed=1)


@pytest.fixture(scope="session")
def bench_db():
    """One database shared across benchmark modules."""
    return Database.in_memory(buffer_pages=None)


@pytest.fixture(scope="session")
def bench_kd(bench_db, bench_sample) -> KdTreeIndex:
    """Kd-tree index over the shared sample (paper defaults)."""
    return KdTreeIndex.build(
        bench_db, "bench_mag_kd", bench_sample.columns(), list(BANDS)
    )


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print an aligned results table (the bench's figure/table output)."""
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-+-".join("-" * w for w in widths))
    for row in text_rows:
        print(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float) or isinstance(cell, np.floating):
        if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e5):
            return f"{cell:.3g}"
        return f"{cell:.4f}".rstrip("0").rstrip(".")
    return str(cell)
