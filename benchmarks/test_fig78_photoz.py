"""E8 / Figures 7 and 8: photometric redshift estimation.

Paper: the template-fitting method suffers "calibration problems of the
templates [that] produce large scatter" (Figure 7); the k-NN + local
polynomial method over the indexed reference set "is not sensitive to
calibration errors [so] the precision of the estimation has also
improved: average error decreased by more than 50%" (Figure 8).

This bench reproduces the pair: same unknown set, both estimators, RMS
error and outlier rates, plus the degree ablation of the local fit
("instead of using the average, a local low order polynomial fit over
the neighbors gives a better estimate").
"""

from __future__ import annotations

import numpy as np

from repro import (
    Database,
    KnnPolyRedshiftEstimator,
    TemplateFitEstimator,
    make_photoz_dataset,
    regression_report,
)

from .conftest import print_table, scaled


def _dataset():
    return make_photoz_dataset(
        num_reference=scaled(2500),
        num_unknown=scaled(400),
        seed=77,
    )


def test_fig78_knn_vs_template(benchmark):
    """The headline Figure 7 vs Figure 8 comparison."""

    def run():
        ds = _dataset()
        db = Database.in_memory(buffer_pages=None)
        rows = []
        template = TemplateFitEstimator(templates=ds.templates, filters=ds.filters)
        z_tpl = template.estimate(ds.unknown_magnitudes)
        tpl_report = regression_report(z_tpl, ds.unknown_redshifts)
        rows.append(
            ["template fit (Fig 7)", tpl_report["rms"], tpl_report["bias"],
             tpl_report["median_abs"], tpl_report["outlier_rate"]]
        )
        knn = KnnPolyRedshiftEstimator(
            db, ds.reference_magnitudes, ds.reference_redshifts, k=32, degree=1
        )
        z_knn = knn.estimate(ds.unknown_magnitudes)
        knn_report = regression_report(z_knn, ds.unknown_redshifts)
        rows.append(
            ["kNN + polynomial (Fig 8)", knn_report["rms"], knn_report["bias"],
             knn_report["median_abs"], knn_report["outlier_rate"]]
        )
        return rows, knn_report["rms"] / tpl_report["rms"]

    rows, ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Figures 7/8: photometric redshift estimators",
        ["method", "rms", "bias", "median_abs", "outlier_rate"],
        rows,
    )
    print(f"error ratio (kNN / template): {ratio:.3f}  (paper: < 0.5)")
    # "average error decreased by more than 50%"
    assert ratio < 0.5


def test_fig8_polynomial_degree_ablation(benchmark):
    """Local fit degree: mean (0) vs linear (1) vs quadratic (2)."""

    def run():
        ds = _dataset()
        db = Database.in_memory(buffer_pages=None)
        rows = []
        for degree in (0, 1, 2):
            knn = KnnPolyRedshiftEstimator(
                db,
                ds.reference_magnitudes,
                ds.reference_redshifts,
                k=48,
                degree=degree,
                table_name=f"photoz_ref_deg{degree}",
            )
            z = knn.estimate(ds.unknown_magnitudes[: scaled(200)])
            report = regression_report(z, ds.unknown_redshifts[: scaled(200)])
            rows.append([degree, report["rms"], report["median_abs"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Figure 8 ablation: local polynomial degree",
        ["degree", "rms", "median_abs"],
        rows,
    )
    # The paper's observation: the polynomial fit beats the plain average.
    assert min(rows[1][1], rows[2][1]) < rows[0][1]


def test_fig8_single_estimate_benchmark(benchmark):
    """Benchmark one estimate (the per-object server-side latency)."""
    ds = _dataset()
    db = Database.in_memory(buffer_pages=None)
    knn = KnnPolyRedshiftEstimator(
        db, ds.reference_magnitudes, ds.reference_redshifts, k=32, degree=1
    )
    z = benchmark(lambda: knn.estimate_one(ds.unknown_magnitudes[0]))
    assert 0.0 <= z <= 0.6
