"""E2 / §3.2 build statistics: √N sizing, iterative build, post-order.

Paper: "our tree has 15 levels, 2^14 leafs and in each leaf there are
approximately 16K items.  The run-time of the kd-tree generation over
270M rows was less than 12 hours."  We verify the sizing rule at our
scale, that the build scales near-linearly (the iterative level-wise
build is O(N log leaves)), and benchmark it.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.kdtree import KdTree, default_num_levels

from .conftest import print_table, scaled


def test_sec32_sizing_and_build_scaling(benchmark):
    """Build-time scaling and √N leaf statistics across N."""

    def run():
        rng = np.random.default_rng(3)
        rows = []
        for n in (scaled(10_000), scaled(30_000), scaled(90_000)):
            pts = rng.normal(size=(n, 5))
            start = time.perf_counter()
            tree = KdTree(pts)
            elapsed = time.perf_counter() - start
            stats = tree.leaf_statistics()
            rows.append(
                [
                    n,
                    int(stats["num_levels"]),
                    int(stats["num_leaves"]),
                    stats["mean_leaf_size"],
                    stats["mean_leaf_size"] / stats["num_leaves"],
                    elapsed,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "§3.2 kd-tree build: √N rule and build time",
        ["rows", "levels", "leaves", "rows_per_leaf", "leaf_size/leaf_count", "build_s"],
        rows,
    )
    # √N rule: leaf size ≈ leaf count (ratio within a factor ~4 given
    # power-of-two rounding).
    for row in rows:
        assert 0.25 <= row[4] <= 4.0
    # Paper-scale extrapolation sanity: the rule gives the published tree.
    assert default_num_levels(270_000_000) == 15
    # Near-linear scaling: 9x rows should cost well under 27x time.
    assert rows[-1][5] < 27 * max(rows[0][5], 1e-4)


def test_sec32_build_benchmark(benchmark):
    """Benchmark the iterative balanced build at the default bench size."""
    rng = np.random.default_rng(4)
    pts = rng.normal(size=(scaled(60_000), 5))
    tree = benchmark.pedantic(lambda: KdTree(pts), rounds=3, iterations=1)
    assert tree.num_points == len(pts)
