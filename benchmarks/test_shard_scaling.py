"""Shard scaling: the Figure 2 workload over 1/2/4/8 kd-subtree shards.

Replays the mixed SkyServer-style workload (the same family as
test_fig2_workload_replay) through scatter-gather engines of increasing
shard counts plus the unsharded planner baseline, asserting identical
row sets everywhere and reporting wall clock, aggregate pages, and
router pruning per configuration.  Emits ``BENCH_shard.json`` next to
the repo root so CI can track the scaling curve.

Two effects drive the sharded wall clock even under the GIL: the router
prunes whole shards before any I/O (most of the workload is selective),
and each surviving shard searches a tree of 1/N the size.  The 8-shard
configuration must finish the replay at least as fast as the unsharded
baseline.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import KdPartitioner, QueryPlanner, ScatterGatherExecutor
from repro.datasets.sdss import BANDS
from repro.datasets.workload import QueryWorkload

from .conftest import print_table

SHARD_COUNTS = [1, 2, 4, 8]


def _workload_polyhedra(sample) -> list:
    workload = QueryWorkload(sample.magnitudes, seed=2006)
    queries = workload.mixed(18, [0.005, 0.02, 0.1])
    queries.append(workload.figure2_query())
    return [q.polyhedron(list(BANDS)) for q in queries]


def _replay(engine, polyhedra) -> tuple[float, list[frozenset], int, int]:
    """Best-of-two replay; returns (seconds, oid sets, pages, pruned)."""
    best = float("inf")
    answers: list[frozenset] = []
    pages = pruned = 0
    for _ in range(2):
        started = time.perf_counter()
        round_answers = []
        round_pages = round_pruned = 0
        for poly in polyhedra:
            planned = engine.execute(poly)
            round_answers.append(frozenset(int(v) for v in planned.rows["oid"]))
            round_pages += planned.stats.pages_touched
            round_pruned += planned.shards_pruned
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
        answers, pages, pruned = round_answers, round_pages, round_pruned
    return best, answers, pages, pruned


def test_shard_scaling_figure2_workload(benchmark, bench_db, bench_sample):
    """1/2/4/8-shard scatter-gather vs the unsharded planner, one answer."""
    from repro import KdTreeIndex

    columns = dict(bench_sample.columns())
    columns["oid"] = np.arange(len(bench_sample.magnitudes), dtype=np.int64)
    polyhedra = _workload_polyhedra(bench_sample)

    baseline = QueryPlanner(
        KdTreeIndex.build(bench_db, "shard_bench_ref", dict(columns), list(BANDS))
    )
    base_time, base_answers, base_pages, _ = _replay(baseline, polyhedra)

    def run():
        rows = [["unsharded", 1, base_time, base_pages, 0, 1.0]]
        results = {"unsharded": {"wall_s": base_time, "pages": base_pages}}
        for count in SHARD_COUNTS:
            shard_set = KdPartitioner(count, buffer_pages=None).partition(
                "shard_bench", dict(columns), list(BANDS)
            )
            with ScatterGatherExecutor(shard_set) as engine:
                wall, answers, pages, pruned = _replay(engine, polyhedra)
            assert answers == base_answers, f"{count}-shard answers diverged"
            rows.append(
                [f"{count} shards", count, wall, pages, pruned, base_time / wall]
            )
            results[f"shards_{count}"] = {
                "wall_s": wall,
                "pages": pages,
                "shards_pruned": pruned,
                "speedup_vs_unsharded": base_time / wall,
            }
        return rows, results

    rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Shard scaling: Figure 2 workload replay (best of 2)",
        ["engine", "shards", "wall_s", "pages", "shards_pruned", "speedup"],
        rows,
    )
    out = Path(__file__).resolve().parent.parent / "BENCH_shard.json"
    out.write_text(
        json.dumps(
            {
                "workload": "figure2_mixed",
                "queries": len(polyhedra),
                "rows": len(columns["oid"]),
                "results": results,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {out}")

    # Router pruning must be doing real work on the selective mix...
    multi = [r for r in rows if isinstance(r[1], int) and r[1] > 1]
    assert all(r[4] > 0 for r in multi), "no shards pruned at any multi-shard count"
    # ...and the 8-shard replay must not lose to the single index.
    eight = next(r for r in rows if r[0] == "8 shards")
    assert eight[2] <= base_time, (
        f"8-shard replay ({eight[2]:.3f} s) slower than unsharded ({base_time:.3f} s)"
    )
