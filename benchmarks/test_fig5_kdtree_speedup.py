"""E1 / Figure 5: kd-tree index vs full table scan across selectivity.

Paper claims: "if the ratio of the returned / total number of rows is
below 0.25 kd-trees can outperform simple SQL queries by orders of
magnitudes" and "for typical queries, where the number of returned points
is a small fraction of the dataset, using the kd-tree index can speed up
the query by orders of magnitudes."

This bench sweeps target selectivity, runs each query both ways, and
reports rows returned, pages touched and wall-clock time -- the x/y of
Figure 5 plus the I/O profile that drives it.  (The paper's y-axis is
disk time on a 2 TB table; in-process the I/O win shows up as the
pages-touched ratio, with a smaller wall-clock ratio on top.)
"""

from __future__ import annotations

import time

import numpy as np

from repro import QueryWorkload, polyhedron_full_scan, selectivity
from repro.datasets.sdss import BANDS

from .conftest import print_table

SELECTIVITIES = [0.001, 0.005, 0.02, 0.08, 0.25, 0.6]


def _run_pair(kd, poly):
    start = time.perf_counter()
    _, kd_stats = kd.query_polyhedron(poly)
    kd_time = time.perf_counter() - start
    start = time.perf_counter()
    _, scan_stats = polyhedron_full_scan(kd.table, list(BANDS), poly)
    scan_time = time.perf_counter() - start
    assert kd_stats.rows_returned == scan_stats.rows_returned
    return kd_stats, kd_time, scan_stats, scan_time


def _sweep(bench_kd, bench_sample):
    workload = QueryWorkload(bench_sample.magnitudes, seed=42)
    total_rows = bench_kd.table.num_rows
    rows = []
    page_ratios = {}
    for target in SELECTIVITIES:
        kd_pages, scan_pages, kd_times, scan_times, sels = [], [], [], [], []
        for _ in range(4):
            poly = workload.box_query(target).polyhedron(list(BANDS))
            kd_stats, kd_time, scan_stats, scan_time = _run_pair(bench_kd, poly)
            kd_pages.append(kd_stats.pages_touched)
            scan_pages.append(scan_stats.pages_touched)
            kd_times.append(kd_time)
            scan_times.append(scan_time)
            sels.append(selectivity(scan_stats, total_rows))
        page_ratio = np.mean(scan_pages) / max(np.mean(kd_pages), 1e-9)
        page_ratios[target] = page_ratio
        rows.append(
            [
                target,
                float(np.mean(sels)),
                float(np.mean(kd_pages)),
                float(np.mean(scan_pages)),
                page_ratio,
                float(np.mean(scan_times) / max(np.mean(kd_times), 1e-9)),
            ]
        )
    return rows, page_ratios


def test_fig5_selectivity_sweep(benchmark, bench_kd, bench_sample):
    """The Figure 5 sweep: page and time ratios per selectivity bucket."""
    rows, page_ratios = benchmark.pedantic(
        _sweep, args=(bench_kd, bench_sample), rounds=1, iterations=1
    )
    print_table(
        "Figure 5: kd-tree vs full scan",
        ["target_sel", "actual_sel", "kd_pages", "scan_pages", "page_speedup", "time_speedup"],
        rows,
    )
    # Paper shape: large wins at low selectivity...
    assert page_ratios[0.001] > 5.0
    # ... decaying toward parity as selectivity grows past ~0.25.
    assert page_ratios[0.6] < page_ratios[0.001]
    assert page_ratios[0.6] < 3.0


def test_fig5_query_time_benchmark(benchmark, bench_kd, bench_sample):
    """Benchmark one typical (1% selectivity) indexed polyhedron query."""
    workload = QueryWorkload(bench_sample.magnitudes, seed=7)
    poly = workload.box_query(0.01).polyhedron(list(BANDS))
    result = benchmark(lambda: bench_kd.query_polyhedron(poly))
    assert result[1].rows_returned >= 0


def test_fig5_scan_time_benchmark(benchmark, bench_kd, bench_sample):
    """Benchmark the same query as a full scan (the Figure 5 baseline)."""
    workload = QueryWorkload(bench_sample.magnitudes, seed=7)
    poly = workload.box_query(0.01).polyhedron(list(BANDS))
    result = benchmark(lambda: polyhedron_full_scan(bench_kd.table, list(BANDS), poly))
    assert result[1].rows_returned >= 0
