"""E12 / Figure 2: SkyServer-style complex query workload replay.

Figure 2 shows one of the "top 100" complex spatial queries mined from
the May 2006 SkyServer log (12M+ user queries): conjunctions of linear
inequalities over magnitudes.  This bench replays a generated mix of
that family -- axis windows, color cuts, oblique Figure 2-style cuts,
plus the literal Figure 2 clause -- through the kd-tree index and the
full-scan baseline, reporting the per-kind outcome distribution.
"""

from __future__ import annotations

import numpy as np

from repro import QueryWorkload, polyhedron_full_scan
from repro.datasets.sdss import BANDS

from .conftest import print_table


def test_fig2_workload_replay(benchmark, bench_kd, bench_sample):
    """Replay a mixed workload; report wins and page ratios per kind."""

    def run():
        workload = QueryWorkload(bench_sample.magnitudes, seed=2006)
        queries = workload.mixed(18, [0.005, 0.02, 0.1])
        queries.append(workload.figure2_query())
        by_kind: dict[str, list] = {}
        for query in queries:
            poly = query.polyhedron(list(BANDS))
            _, kd_stats = bench_kd.query_polyhedron(poly)
            _, scan_stats = polyhedron_full_scan(bench_kd.table, list(BANDS), poly)
            assert kd_stats.rows_returned == scan_stats.rows_returned
            ratio = scan_stats.pages_touched / max(kd_stats.pages_touched, 1)
            selectivity = scan_stats.rows_returned / bench_kd.table.num_rows
            by_kind.setdefault(query.kind, []).append((selectivity, ratio))
        rows = []
        for kind, entries in sorted(by_kind.items()):
            sels = [e[0] for e in entries]
            ratios = [e[1] for e in entries]
            wins = sum(1 for r in ratios if r > 1.0)
            rows.append(
                [
                    kind,
                    len(entries),
                    float(np.mean(sels)),
                    float(np.median(ratios)),
                    float(np.max(ratios)),
                    f"{wins}/{len(entries)}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Figure 2 workload replay: kd-tree vs scan per query kind",
        ["kind", "queries", "mean_sel", "median_page_speedup", "max_page_speedup", "index_wins"],
        rows,
    )
    # Axis-window queries prune strongly; the literal Figure 2 cut is
    # selective and must win too.
    box_row = next(r for r in rows if r[0] == "box")
    fig2_row = next(r for r in rows if r[0] == "figure2")
    assert box_row[3] > 2.0
    assert fig2_row[3] >= 1.0


def test_fig2_literal_query_benchmark(benchmark, bench_kd, bench_sample):
    """Benchmark the paper's literal Figure 2 selection through the index."""
    workload = QueryWorkload(bench_sample.magnitudes, seed=1)
    poly = workload.figure2_query().polyhedron(list(BANDS))
    result = benchmark(lambda: bench_kd.query_polyhedron(poly))
    assert result[1].rows_returned >= 0


def test_fig2_verbatim_hybrid_execution(benchmark):
    """The *verbatim* Figure 2 text -- LOG10 terms, top-level OR and all.

    The full loop the paper sketches: a textual log query parses into an
    expression tree; the linear part relaxes into a union-of-polyhedra
    cover pushed into the kd-tree; the nonlinear residual evaluates only
    on the candidates.  Results are exact.
    """
    from repro import Database, KdTreeIndex, full_scan, hybrid_query, parse_where
    from repro import sdss_color_sample
    from repro.datasets.workload import FIGURE2_VERBATIM

    from .conftest import scaled

    def run():
        sample = sdss_color_sample(scaled(60_000), seed=7)
        cols = sample.extended_columns(seed=8)
        db = Database.in_memory(buffer_pages=None)
        dims = ["dered_g", "dered_r", "dered_i", "petroMag_r", "extinction_r"]
        index = KdTreeIndex.build(db, "fig2_hyb", cols, dims)
        expr = parse_where(FIGURE2_VERBATIM)
        rows, stats = hybrid_query(index, expr)
        _, scan_stats = full_scan(index.table, predicate=expr)
        assert stats.rows_returned == scan_stats.rows_returned
        return {
            "rows": stats.rows_returned,
            "candidates": stats.extra.get("candidates", 0),
            "cover_polyhedra": stats.extra.get("cover_polyhedra", 0),
            "hybrid_pages": stats.pages_touched,
            "scan_pages": scan_stats.pages_touched,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nverbatim Figure 2 via hybrid execution: {result['rows']} rows "
        f"from {result['candidates']} candidates "
        f"({result['cover_polyhedra']} cover polyhedra); "
        f"{result['hybrid_pages']} pages vs {result['scan_pages']} scan "
        f"({result['scan_pages'] / max(result['hybrid_pages'], 1):.1f}x fewer)"
    )
    assert result["hybrid_pages"] < result["scan_pages"]
    # The relaxation is nearly tight: few wasted candidates.
    assert result["candidates"] < 3 * max(result["rows"], 1) + 50
