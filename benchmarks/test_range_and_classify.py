"""Range (ball) queries and index-backed classification.

* Ball queries: §1's "nonlinear theories ... can be broken down into
  polyhedron queries" made concrete -- a sphere query runs as a
  circumscribing polytope through the index plus an exact residual
  filter; compared against the full scan across radii.
* Classification: §2.2's "classification of all objects is a crucial
  task" as the index-backed k-NN classifier over the whitened color
  space, scored on the hidden spectral classes.
"""

from __future__ import annotations

import numpy as np

from repro import (
    Database,
    KnnClassifier,
    Whitener,
    ball_query,
    polyhedron_full_scan,
    sdss_color_sample,
)
from repro.datasets.sdss import BANDS, CLASS_OUTLIER

from .conftest import print_table, scaled


def test_ball_queries_vs_scan(benchmark, bench_kd, bench_sample):
    """Exactness + I/O across radii; candidate overhead of the polytope."""

    def run():
        rng = np.random.default_rng(21)
        rows = []
        for radius in (0.1, 0.3, 0.8):
            pages_ball, overheads, returned = [], [], []
            for _ in range(4):
                center = bench_sample.magnitudes[
                    rng.integers(len(bench_sample.magnitudes))
                ]
                result, stats = ball_query(bench_kd, center, radius)
                truth = (
                    np.linalg.norm(bench_sample.magnitudes - center, axis=1)
                    <= radius
                ).sum()
                assert stats.rows_returned == int(truth)
                pages_ball.append(stats.pages_touched)
                candidates = stats.extra.get("candidates", stats.rows_returned)
                overheads.append(
                    candidates / max(stats.rows_returned, 1)
                )
                returned.append(stats.rows_returned)
            rows.append(
                [
                    radius,
                    float(np.mean(returned)),
                    float(np.mean(pages_ball)),
                    bench_kd.table.num_pages,
                    float(np.mean(overheads)),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Range queries: ball through the kd-tree (exact)",
        ["radius", "mean_rows", "ball_pages", "scan_pages", "candidate_overhead"],
        rows,
    )
    # Small balls read a small fraction of the table; the circumscribing
    # polytope's candidate overhead stays modest.
    assert rows[0][2] < rows[0][3] / 5
    assert rows[0][4] < 30.0


def test_classification_accuracy(benchmark):
    """§2.2 classification: accuracy vs training-set size (<1% labeled)."""

    def run():
        sample = sdss_color_sample(scaled(40_000), seed=31)
        keep = sample.labels != CLASS_OUTLIER
        points = Whitener(mode="std").fit_transform(sample.colors())[keep]
        labels = sample.labels[keep]
        rng = np.random.default_rng(5)
        pool = rng.permutation(len(points))
        test = pool[:400]
        rows = []
        for train_size in (scaled(200), scaled(800), scaled(3200)):
            train = pool[400: 400 + train_size]
            db = Database.in_memory(buffer_pages=None)
            clf = KnnClassifier(
                db, points[train], labels[train], k=15,
                table_name=f"clf_{train_size}",
            )
            accuracy = clf.accuracy(points[test], labels[test])
            rows.append(
                [train_size, train_size / len(points), accuracy]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "§2.2 classification: accuracy vs labeled fraction",
        ["training_size", "labeled_fraction", "accuracy"],
        rows,
    )
    accuracies = [row[2] for row in rows]
    assert accuracies[-1] > 0.93
    assert accuracies[-1] >= accuracies[0]
