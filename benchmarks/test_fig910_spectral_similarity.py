"""E9 / Figures 9 and 10: spectral similarity search.

Paper: spectra are ~3000-dimensional; "with a principal component
transformation we can create a low (we have chosen 5) dimensional
feature vector"; the same kd-tree k-NN procedures then find similar
spectra (Figures 9 and 10 show an elliptical galaxy and a quasar with
their two most similar spectra -- visibly the same class).

Also reproduced: the simulation comparison ("a comparison between the
...SDSS data set and 100K spectra simulated by the Bruzual-Charlot
spectral synthesis code ... astronomers can 'reverse engineer' the
observed data to estimate physical parameters of galaxies") using the
parameterized synthesis grid.
"""

from __future__ import annotations

import numpy as np

from repro import (
    Database,
    KdTreeIndex,
    PrincipalComponents,
    SpectrumTemplates,
    knn_boundary_points,
    retrieval_precision,
)

from .conftest import print_table, scaled


def _spectrum_library(count_per_class, rng, snr=40.0):
    templates = SpectrumTemplates()
    spectra, classes = [], []
    for _ in range(count_per_class):
        z = rng.uniform(0.0, 0.3)
        spectra.append(
            templates.observe(templates.galaxy_blend(rng.uniform(0.0, 0.2), z), snr, rng)
        )
        classes.append(0)  # elliptical
        spectra.append(
            templates.observe(templates.galaxy_blend(rng.uniform(0.8, 1.0), z), snr, rng)
        )
        classes.append(1)  # starburst
        spectra.append(templates.observe(templates.quasar(z), snr, rng))
        classes.append(2)  # quasar
        spectra.append(
            templates.observe(templates.star(rng.uniform(4000, 9000)), snr, rng)
        )
        classes.append(3)  # star
    return templates, np.array(spectra), np.array(classes)


def test_fig910_similarity_retrieval(benchmark):
    """Top-2 same-class precision over the PCA feature index."""

    def run():
        rng = np.random.default_rng(55)
        templates, spectra, classes = _spectrum_library(scaled(120), rng)
        pca = PrincipalComponents(5)
        features = pca.fit_transform(spectra)
        db = Database.in_memory(buffer_pages=None)
        data = {f"pc{i}": features[:, i] for i in range(5)}
        data["cls"] = classes
        index = KdTreeIndex.build(db, "spec910", data, [f"pc{i}" for i in range(5)])
        per_class: dict[int, list] = {0: [], 1: [], 2: [], 3: []}
        queries = range(0, len(features), 7)
        retrieved = []
        for row in queries:
            result = knn_boundary_points(index, features[row], 3)
            got = index.table.gather(result.row_ids)["cls"]
            retrieved.append(got[1:3])  # drop the query itself
            per_class[int(classes[row])].append(
                float((got[1:3] == classes[row]).mean())
            )
        overall = retrieval_precision(classes[list(queries)], np.array(retrieved))
        rows = [
            [name, len(per_class[cls]), float(np.mean(per_class[cls]))]
            for cls, name in ((0, "elliptical"), (1, "starburst"), (2, "quasar"), (3, "star"))
        ]
        rows.append(["overall", len(retrieved), overall])
        return rows, overall, pca.explained_variance_ratio.sum()

    rows, overall, variance = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Figures 9/10: top-2 same-class retrieval precision",
        ["class", "queries", "precision"],
        rows,
    )
    print(f"5-component variance captured: {variance:.3f}")
    assert overall > 0.85


def test_fig910_simulation_reverse_engineering(benchmark):
    """Parameter recovery against the Bruzual-Charlot-style grid."""

    def run():
        rng = np.random.default_rng(56)
        templates = SpectrumTemplates()
        # The simulation grid: spectra with known (age, dust).
        ages = np.linspace(0.0, 1.0, 12)
        dusts = np.linspace(0.0, 1.0, 8)
        grid_specs, grid_params = [], []
        for age in ages:
            for dust in dusts:
                grid_specs.append(templates.synthesized(age, dust, z=0.05))
                grid_params.append((age, dust))
        grid_specs = np.array(grid_specs)
        grid_params = np.array(grid_params)

        pca = PrincipalComponents(5)
        grid_features = pca.fit_transform(grid_specs)
        db = Database.in_memory(buffer_pages=None)
        data = {f"pc{i}": grid_features[:, i] for i in range(5)}
        data["age"] = grid_params[:, 0]
        data["dust"] = grid_params[:, 1]
        index = KdTreeIndex.build(
            db, "bc_grid", data, [f"pc{i}" for i in range(5)], num_levels=4
        )

        # "Observed" spectra with known truth, noisy.
        age_errors, dust_errors = [], []
        for _ in range(scaled(60)):
            age, dust = rng.uniform(0.05, 0.95), rng.uniform(0.05, 0.95)
            observed = templates.observe(
                templates.synthesized(age, dust, z=0.05), snr=60.0, rng=rng
            )
            feature = pca.transform(observed[np.newaxis, :])[0]
            result = knn_boundary_points(index, feature, 3)
            got = index.table.gather(result.row_ids)
            age_errors.append(abs(float(got["age"].mean()) - age))
            dust_errors.append(abs(float(got["dust"].mean()) - dust))
        return float(np.mean(age_errors)), float(np.mean(dust_errors))

    age_err, dust_err = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nBruzual-Charlot analog parameter recovery: "
        f"|age error|={age_err:.3f}, |dust error|={dust_err:.3f} (params in [0,1])"
    )
    # Recovered parameters land near the truth (grid spacing ~0.1).
    assert age_err < 0.15
    assert dust_err < 0.15
