"""E4 / §3.3: boundary-point k-NN over the kd-tree.

Paper: "given a query point p, return the k nearest neighbors from the
270M magnitude table" via the boundary-point region-growing algorithm.
We verify exactness against brute force and measure the I/O profile --
boxes examined and pages read vs a full scan -- plus the TOP(k-f)
refinement's effect.
"""

from __future__ import annotations

import numpy as np

from repro import knn_best_first, knn_boundary_points, knn_brute_force
from repro.datasets.sdss import BANDS

from .conftest import print_table


def _queries(bench_sample, count, seed=11):
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(bench_sample.magnitudes), count, replace=False)
    return bench_sample.magnitudes[picks] + rng.normal(0, 0.05, (count, 5))


def test_sec33_knn_profile(benchmark, bench_kd, bench_sample):
    """Exactness + I/O table across k."""

    def run():
        queries = _queries(bench_sample, 8)
        rows = []
        for k in (1, 10, 100):
            pages_bp, pages_scan, boxes, fallbacks = [], [], [], []
            for query in queries:
                truth = knn_brute_force(bench_kd.table, list(BANDS), query, k)
                result = knn_boundary_points(bench_kd, query, k)
                assert np.allclose(result.distances, truth.distances)
                pages_bp.append(result.stats.pages_touched)
                pages_scan.append(truth.stats.pages_touched)
                boxes.append(result.stats.extra["boxes_examined"])
                fallbacks.append(result.stats.extra["fallback_boxes"])
            rows.append(
                [
                    k,
                    float(np.mean(boxes)),
                    bench_kd.tree.num_leaves,
                    float(np.mean(pages_bp)),
                    float(np.mean(pages_scan)),
                    float(np.mean(pages_scan)) / max(float(np.mean(pages_bp)), 1e-9),
                    float(np.sum(fallbacks)),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "§3.3 boundary-point k-NN vs full scan",
        ["k", "boxes_examined", "total_leaves", "knn_pages", "scan_pages", "page_speedup", "fallback_boxes"],
        rows,
    )
    for row in rows:
        assert row[5] > 3.0  # order-of-magnitude-bound I/O win at bench scale
        assert row[1] < row[2] / 4  # examines a small fraction of the leaves


def test_sec33_knn_query_benchmark(benchmark, bench_kd, bench_sample):
    """Benchmark a single k=16 boundary-point query."""
    query = _queries(bench_sample, 1)[0]
    result = benchmark(lambda: knn_boundary_points(bench_kd, query, 16))
    assert result.k == 16


def test_sec33_best_first_benchmark(benchmark, bench_kd, bench_sample):
    """Benchmark the best-first baseline on the same query."""
    query = _queries(bench_sample, 1)[0]
    result = benchmark(lambda: knn_best_first(bench_kd, query, 16))
    assert result.k == 16


def test_sec33_brute_force_benchmark(benchmark, bench_kd, bench_sample):
    """Benchmark the full-scan ground truth on the same query."""
    query = _queries(bench_sample, 1)[0]
    result = benchmark(
        lambda: knn_brute_force(bench_kd.table, list(BANDS), query, 16)
    )
    assert result.k == 16
