"""Write-path throughput and read amplification across a merge.

The nightly-load scenario behind the paper's "static database"
assumption being lifted: a kd-clustered SDSS color table absorbs a batch
of inserts and deletes into its delta tier (WAL-first), serves queries
merge-on-read, then folds the delta down in one background merge.  The
bench measures the three costs that story trades between:

1. ingest throughput -- rows/s through the WAL + delta apply path;
2. read amplification while the delta is live -- pages decoded per
   query (and per 1k returned rows) against the same queries on the
   merged layout;
3. merge quality -- after the merge, pages decoded per query must land
   within 10% of a table freshly built from the surviving rows: the
   merged layout re-clusters, so merge-on-read's debt is fully repaid.

Every pass is differential: the pre-merge, post-merge, and fresh-build
answers must return identical oid sets query for query.  Emits
``BENCH_ingest.json`` next to the repo root.  The 10% amplification gate
engages at full scale only; scaled-down smoke runs always check answer
identity but only report the ratios.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import Database, KdTreeIndex, QueryPlanner, full_scan, sdss_color_sample
from repro.datasets.sdss import BANDS
from repro.datasets.workload import QueryWorkload

from .conftest import bench_scale, print_table, scaled

NUM_QUERIES = 24
SELECTIVITIES = [0.005, 0.02, 0.1]
INSERT_BATCH = 200


def _pool_pages(num_rows: int, rows_per_page: int = 128) -> int:
    # About a third of the table: queries keep missing into storage, so
    # pages decoded measures layout quality rather than cache luck.
    return max(8, (num_rows // rows_per_page) // 3)


def _build_engine(columns: dict, pool_pages: int, name: str) -> tuple[Database, QueryPlanner]:
    db = Database.in_memory(buffer_pages=pool_pages, decoded_cache_bytes=0)
    index = KdTreeIndex.build(db, name, dict(columns), list(BANDS))
    return db, QueryPlanner(index, seed=7)


def _query_pass(db: Database, planner: QueryPlanner, polyhedra: list) -> dict:
    """Serial query pass over a cold cache; returns counters + answers."""
    db.cold_cache()
    db.reset_io_stats()
    answers = []
    rows_returned = 0
    start = time.perf_counter()
    for poly in polyhedra:
        planned = planner.execute(poly)
        answers.append(frozenset(int(v) for v in planned.rows["oid"]))
        rows_returned += len(planned.rows["oid"])
    wall = time.perf_counter() - start
    io = db.io_stats.as_dict()
    decoded = io["checksum_verifications"]
    return {
        "wall_s": wall,
        "pages_read": io["page_reads"],
        "pages_decoded": decoded,
        "pages_decoded_per_query": decoded / len(polyhedra),
        "rows_returned": rows_returned,
        "pages_decoded_per_1k_rows": decoded / max(rows_returned / 1000.0, 1e-9),
        "answers": answers,
    }


def test_ingest_merge_read_amplification(benchmark):
    num_base = scaled(24_000)
    num_insert = scaled(2_400)
    num_delete = scaled(1_200)
    sample = sdss_color_sample(num_base, seed=11)
    columns = dict(sample.columns())
    columns["oid"] = np.arange(num_base, dtype=np.int64)
    pool_pages = _pool_pages(num_base)

    workload = QueryWorkload(sample.magnitudes, seed=2007)
    polyhedra = [
        q.polyhedron(list(BANDS))
        for q in workload.mixed(NUM_QUERIES, SELECTIVITIES)
    ]

    fresh_rows = sdss_color_sample(num_insert, seed=12)
    insert_oids = np.arange(num_base, num_base + num_insert, dtype=np.int64)

    def run_all() -> dict:
        db, planner = _build_engine(columns, pool_pages, "ingest_bench")
        table = db.table("ingest_bench")

        # -- phase 1: WAL-first ingest ---------------------------------
        start = time.perf_counter()
        for lo in range(0, num_insert, INSERT_BATCH):
            hi = min(lo + INSERT_BATCH, num_insert)
            batch = {
                band: fresh_rows.magnitudes[lo:hi, i]
                for i, band in enumerate(BANDS)
            }
            batch["cls"] = fresh_rows.labels[lo:hi].astype(np.int64)
            batch["oid"] = insert_oids[lo:hi]
            table.insert_rows(batch)
        insert_wall = time.perf_counter() - start

        live, _ = full_scan(table, columns=["oid"])
        rng = np.random.default_rng(13)
        victims = rng.choice(
            np.flatnonzero(live["oid"] < num_base), size=num_delete, replace=False
        )
        start = time.perf_counter()
        table.delete_rows(live["_row_id"][victims])
        delete_wall = time.perf_counter() - start
        delta_fraction = db.ingest.delta_fraction("ingest_bench")

        # -- phase 2: merge-on-read reads, then the merge --------------
        pre = _query_pass(db, planner, polyhedra)
        report = db.ingest.merge("ingest_bench")
        assert report.merged
        post = _query_pass(db, planner, polyhedra)

        # -- phase 3: the fresh-build reference ------------------------
        merged_table = db.table("ingest_bench")
        rows, _ = full_scan(merged_table)
        surviving = {
            name: rows[name]
            for name in ("cls", "oid", *BANDS)
        }
        fresh_db, fresh_planner = _build_engine(
            surviving, pool_pages, "ingest_fresh"
        )
        fresh = _query_pass(fresh_db, fresh_planner, polyhedra)

        # Differential gate at every scale: three layouts, one answer.
        for idx in range(len(polyhedra)):
            assert pre["answers"][idx] == post["answers"][idx], f"query {idx}"
            assert post["answers"][idx] == fresh["answers"][idx], f"query {idx}"

        return {
            "insert_rows_per_s": num_insert / max(insert_wall, 1e-9),
            "delete_rows_per_s": num_delete / max(delete_wall, 1e-9),
            "delta_fraction_at_merge": delta_fraction,
            "merge": report.as_dict(),
            "merge_rows_per_s": report.rows_after / max(report.seconds, 1e-9),
            "pre_merge": pre,
            "post_merge": post,
            "fresh_build": fresh,
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    pre, post, fresh = (
        results["pre_merge"], results["post_merge"], results["fresh_build"]
    )
    print_table(
        f"{num_base} base rows, +{num_insert}/-{num_delete}, "
        f"{len(SELECTIVITIES)}-way mixed x{NUM_QUERIES}",
        ["pass", "decoded/query", "decoded/1k rows", "pages_read", "wall_s"],
        [
            [name, r["pages_decoded_per_query"], r["pages_decoded_per_1k_rows"],
             r["pages_read"], r["wall_s"]]
            for name, r in (("pre-merge", pre), ("post-merge", post),
                            ("fresh", fresh))
        ],
    )

    amplification_vs_fresh = post["pages_decoded_per_query"] / max(
        fresh["pages_decoded_per_query"], 1e-9
    )
    payload = {
        "base_rows": num_base,
        "inserted_rows": num_insert,
        "deleted_rows": num_delete,
        "queries": len(polyhedra),
        "pool_pages": pool_pages,
        "insert_rows_per_s": results["insert_rows_per_s"],
        "delete_rows_per_s": results["delete_rows_per_s"],
        "delta_fraction_at_merge": results["delta_fraction_at_merge"],
        "merge": results["merge"],
        "merge_rows_per_s": results["merge_rows_per_s"],
        "read_amplification": {
            name: {k: v for k, v in r.items() if k != "answers"}
            for name, r in (("pre_merge", pre), ("post_merge", post),
                            ("fresh_build", fresh))
        },
        "post_merge_vs_fresh_pages_ratio": amplification_vs_fresh,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_ingest.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    assert results["insert_rows_per_s"] > 0
    assert results["merge"]["merged"]
    # The merge repays merge-on-read's debt: reading the merged layout
    # costs within 10% of a from-scratch build over the same rows.  At
    # smoke scales the fixed probe/page costs dominate tiny tables, so
    # the gate engages at full scale only.
    if bench_scale() >= 1.0:
        assert amplification_vs_fresh <= 1.10, (
            f"post-merge reads cost {amplification_vs_fresh:.2f}x fresh"
        )
