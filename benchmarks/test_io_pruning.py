"""I/O acceleration ablation: zone maps, read-ahead, decoded-page cache.

Replays the Figure 2 mixed workload through the planner under every
feature toggle the :class:`~repro.db.catalog.Database` constructor
exposes -- all off, each accelerator alone, and the full stack -- over a
deliberately small buffer pool, so repeat rounds keep missing into
storage the way the paper's 8 GB box missed into its disk array.  Every
configuration must return the identical row sets; the accelerators may
only change *how much I/O work* those answers cost.

Emits ``BENCH_io.json`` next to the repo root: pages read / skipped /
prefetched, pages decoded (CRC verifications), decode hits, and wall
clock per configuration.  The acceptance gates live at the bottom: the
full stack must cut pages decoded by >= 40% and wall time by >= 25%
against this bench's own all-features-off baseline.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import Database, KdTreeIndex, QueryPlanner, sdss_color_sample
from repro.datasets.sdss import BANDS
from repro.datasets.workload import QueryWorkload

from .conftest import bench_scale, print_table, scaled

#: Small on purpose: the pool holds about a third of the table's pages,
#: so round 2+ re-reads are real storage traffic the decoded cache can
#: save.  Computed from the row count so ``REPRO_BENCH_SCALE`` keeps the
#: pool-to-table ratio (a fixed pool would swallow a scaled-down table).
def _pool_pages(num_rows: int, rows_per_page: int = 128) -> int:
    return max(8, (num_rows // rows_per_page) // 3)

#: Repeat rounds of the replay -- Figure 2 traffic is repetitive.
ROUNDS = 3

#: The 0.3 tail forces the planner onto the scan path for some queries,
#: where zone-map pruning (not the kd-tree) is what skips pages.
SELECTIVITIES = [0.005, 0.02, 0.1, 0.3]

CONFIGS: dict[str, dict] = {
    "all_off": dict(zone_maps=False, decoded_cache_bytes=0, readahead_pages=0),
    "zone_maps": dict(zone_maps=True, decoded_cache_bytes=0, readahead_pages=0),
    "readahead": dict(zone_maps=False, decoded_cache_bytes=0, readahead_pages=8),
    "decoded_cache": dict(zone_maps=False, readahead_pages=0),
    "full_stack": dict(zone_maps=True, readahead_pages=8),
}


def _workload_polyhedra(sample) -> list:
    workload = QueryWorkload(sample.magnitudes, seed=2006)
    queries = workload.mixed(16, SELECTIVITIES)
    queries.append(workload.figure2_query())
    return [q.polyhedron(list(BANDS)) for q in queries]


#: Timed replays per configuration.  Timing is *interleaved at round
#: granularity*: within a trial, every configuration runs round k before
#: any configuration runs round k+1 (each configuration owns its own
#: database, so cache state carries across its rounds exactly as in a
#: back-to-back replay).  The reported wall clock sums, per round, the
#: minimum across trials -- on a shared machine whose spare CPU swings
#: on multi-second timescales, a contention spike then inflates one
#: (config, round, trial) cell instead of biasing a whole configuration.
TRIALS = 4


#: Deliberately coarse kd tree: 32 leaves of several pages each.  The
#: ablation measures the *page I/O* layers, so leaves span enough pages
#: that reading/decoding/skipping pages -- not classifying tree nodes --
#: is where the time goes (the paper's √N-leaf sizing is benchmarked in
#: its own right by test_fig5_kdtree_speedup).
KD_LEVELS = 6


def _build_engine(
    toggles: dict, columns: dict, pool_pages: int
) -> tuple[Database, QueryPlanner]:
    db = Database.in_memory(buffer_pages=pool_pages, **toggles)
    index = KdTreeIndex.build(
        db, "io_bench", dict(columns), list(BANDS), num_levels=KD_LEVELS
    )
    return db, QueryPlanner(index, seed=3)


def _one_round(
    db: Database, planner: QueryPlanner, polyhedra: list, collect: bool
) -> tuple[float, list[frozenset], list[int], int, int]:
    """Run every query once; returns (wall, answers, row counts, skipped, prefetched).

    Full row-set identity (``answers``) is collected only when asked --
    once per configuration, for the cross-configuration differential --
    so the timed loop is not dominated by set building; other rounds use
    row counts as the drift check.
    """
    answers: list[frozenset] = []
    counts: list[int] = []
    skipped = prefetched = 0
    started = time.perf_counter()
    for poly in polyhedra:
        planned = planner.execute(poly)
        if collect:
            answers.append(frozenset(int(v) for v in planned.rows["oid"]))
        counts.append(planned.stats.rows_returned)
        skipped += planned.stats.pages_skipped
        prefetched += planned.stats.pages_prefetched
    return time.perf_counter() - started, answers, counts, skipped, prefetched


def _replay_all(
    columns: dict, polyhedra: list, pool_pages: int
) -> dict[str, dict]:
    engines = {
        name: _build_engine(toggles, columns, pool_pages)
        for name, toggles in CONFIGS.items()
    }
    round_walls: dict[str, list[list[float]]] = {
        name: [[] for _ in range(ROUNDS)] for name in engines
    }
    results: dict[str, dict] = {}
    for trial in range(TRIALS):
        for name, (db, _) in engines.items():
            db.cold_cache()
            db.reset_io_stats()
        for round_no in range(ROUNDS):
            for name, (db, planner) in engines.items():
                collect = trial == 0 and round_no == 0
                wall, answers, counts, skipped, prefetched = _one_round(
                    db, planner, polyhedra, collect
                )
                round_walls[name][round_no].append(wall)
                if collect:
                    results[name] = {
                        "answers": answers,
                        "row_counts": counts,
                        "pages_skipped": 0,
                        "pages_prefetched": 0,
                    }
                else:
                    assert counts == results[name]["row_counts"], (
                        f"{name} answers drifted (trial {trial}, round {round_no})"
                    )
                if trial == 0:
                    results[name]["pages_skipped"] += skipped
                    results[name]["pages_prefetched"] += prefetched
        if trial == 0:
            # I/O counters are deterministic per replay; capture once.
            for name, (db, _) in engines.items():
                io = db.io_stats.as_dict()
                results[name].update(
                    pages_read=io["page_reads"],
                    coalesced_reads=io["coalesced_reads"],
                    pages_decoded=io["checksum_verifications"],
                    decode_hits=io["decode_hits"],
                )
    for name, per_round in round_walls.items():
        results[name]["wall_s"] = sum(min(walls) for walls in per_round)
        del results[name]["row_counts"]
    return results


def test_io_acceleration_ablation(benchmark):
    sample = sdss_color_sample(scaled(24_000), seed=5)
    columns = dict(sample.columns())
    columns["oid"] = np.arange(len(sample.magnitudes), dtype=np.int64)
    polyhedra = _workload_polyhedra(sample)
    pool_pages = _pool_pages(len(sample.magnitudes))

    results = benchmark.pedantic(
        lambda: _replay_all(columns, polyhedra, pool_pages),
        rounds=1,
        iterations=1,
    )

    # Differential gate: every toggle combination answers identically.
    baseline_answers = results["all_off"].pop("answers")
    for name, result in results.items():
        if name == "all_off":
            continue
        assert result.pop("answers") == baseline_answers, f"{name} diverged"

    rows = [
        [
            name,
            r["wall_s"],
            r["pages_read"],
            r["pages_skipped"],
            r["pages_prefetched"],
            r["coalesced_reads"],
            r["pages_decoded"],
            r["decode_hits"],
        ]
        for name, r in results.items()
    ]
    print_table(
        f"Figure 2 replay x{ROUNDS} rounds, {pool_pages}-page pool",
        [
            "config",
            "wall_s",
            "pages_read",
            "skipped",
            "prefetched",
            "coalesced",
            "decoded",
            "decode_hits",
        ],
        rows,
    )

    off = results["all_off"]
    full = results["full_stack"]
    decode_cut = 1.0 - full["pages_decoded"] / max(off["pages_decoded"], 1)
    wall_cut = 1.0 - full["wall_s"] / off["wall_s"]
    out = Path(__file__).resolve().parent.parent / "BENCH_io.json"
    out.write_text(
        json.dumps(
            {
                "workload": "figure2_mixed",
                "queries": len(polyhedra),
                "rounds": ROUNDS,
                "trials": TRIALS,
                "rows": len(columns["oid"]),
                "pool_pages": pool_pages,
                "results": results,
                "full_stack_decode_reduction": decode_cut,
                "full_stack_wall_reduction": wall_cut,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {out}")

    # Each accelerator demonstrably did its own job...
    assert results["zone_maps"]["pages_skipped"] > 0
    assert results["readahead"]["coalesced_reads"] > 0
    assert results["decoded_cache"]["decode_hits"] > 0
    # ...and the full stack clears the acceptance bars against the
    # all-features-off baseline.  The percentage gates hold at full
    # scale; scaled-down smoke runs (REPRO_BENCH_SCALE < 1) only report,
    # since fixed per-query planner/traversal overhead dominates tiny
    # tables and the timing says nothing about the accelerators.
    if bench_scale() >= 1.0:
        assert decode_cut >= 0.40, f"decode reduction {decode_cut:.1%} < 40%"
        assert wall_cut >= 0.25, f"wall-time reduction {wall_cut:.1%} < 25%"
