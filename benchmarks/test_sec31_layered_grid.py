"""E3 / §3.1 layered uniform grid: sampling cost and fidelity.

Paper claims: "This layered structure allows us to quickly return n
random points independent of how large the query box is, without wasting
too much time reading in useless points from disk ... Our tests show
that practically only points which are actually returned are read from
disk into memory.  It handles any type of query box and n well."

The rejected baseline: "TABLESAMPLE ... p must be tuned, otherwise we
under sample the table and return less points, or we over sample loosing
the speed advantage ... and the TOP(n) clause will return a set that
does not follow the underlying distribution."
"""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

from repro import Box, Database, LayeredGridIndex, TableSampleBaseline

from .conftest import print_table, scaled


def _build(bench_sample):
    db = Database.in_memory(buffer_pages=None)
    dims = ["u", "g", "r"]
    grid = LayeredGridIndex.build(db, "grid31", bench_sample.columns(), dims)
    baseline = TableSampleBaseline.build(
        db, "ts31", bench_sample.columns(), dims
    )
    pts = np.column_stack([bench_sample.columns()[d] for d in dims])
    return grid, baseline, pts


def test_sec31_read_cost_tracks_output(benchmark, bench_sample):
    """Pages read scale with points returned, not with box size or table."""

    def run():
        grid, _, pts = _build(bench_sample)
        full = Box.from_points(pts)
        rows = []
        boxes = {
            "whole_space": full,
            "half_width": Box.cube(np.median(pts, axis=0), full.widths.max() / 4),
            "dense_core": Box.cube(np.median(pts, axis=0), full.widths.max() / 16),
        }
        for name, box in boxes.items():
            for n in (200, 1000, 4000):
                result = grid.sample_box(box, n)
                returned = len(result.row_ids)
                pages_min = max(1, returned // grid.table.rows_per_page)
                rows.append(
                    [
                        name,
                        n,
                        returned,
                        result.layers_used,
                        result.stats.pages_touched,
                        grid.table.num_pages,
                        result.stats.pages_touched / max(pages_min, 1),
                    ]
                )
        return grid, rows

    grid, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "§3.1 layered grid: read cost vs output size",
        ["box", "n", "returned", "layers", "pages", "table_pages", "pages/needed"],
        rows,
    )
    for row in rows:
        if row[2] >= row[1]:  # full n delivered
            # Never reads more than a small multiple of the output's pages
            # and always a fraction of the table.
            assert row[6] < 16.0
            assert row[4] < row[5]


def test_sec31_sample_follows_distribution(benchmark, bench_sample):
    """Chi-square of the sample against the true in-box distribution."""

    def run():
        grid, _, pts = _build(bench_sample)
        box = Box.from_points(pts)
        result = grid.sample_box(box, 1500)
        edges = np.quantile(pts[:, 0], np.linspace(0, 1, 11))
        edges[0] -= 1e-9
        edges[-1] += 1e-9
        expected = np.histogram(pts[:, 0], bins=edges)[0] / len(pts)
        observed = np.histogram(result.points[:, 0], bins=edges)[0]
        return scipy_stats.chisquare(observed, f_exp=expected * observed.sum())

    chi2 = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n§3.1 distribution check: chi2={chi2.statistic:.1f} p={chi2.pvalue:.3f}")
    assert chi2.pvalue > 1e-4


def _box_with_fraction(pts, frac):
    """A query box around an off-center point holding ~frac of the rows."""
    center = pts[np.argsort(pts[:, 0])[int(len(pts) * 0.9)]]
    lo, hi = 1e-6, float(Box.from_points(pts).widths.max())
    for _ in range(40):
        half = (lo + hi) / 2
        inside = Box.cube(center, half).contains_points(pts).mean()
        if inside < frac:
            lo = half
        else:
            hi = half
    return Box.cube(center, hi)


def test_sec31_tablesample_pathology(benchmark, bench_sample):
    """The TABLESAMPLE + TOP(n) baseline under- and over-shoots.

    The query box is calibrated to hold ~1.5% of the rows, the "zoomed
    in" regime where the paper's p-tuning dilemma bites: a low sampling
    percent returns fewer than n points, while a percent high enough to
    satisfy n reads a large share of the table.
    """

    def run():
        grid, baseline, pts = _build(bench_sample)
        box = _box_with_fraction(pts, 0.015)
        n = 400
        rows = []
        for percent in (1.0, 5.0, 25.0, 100.0):
            result = baseline.sample_box(box, n, percent=percent)
            rows.append(
                [
                    f"TABLESAMPLE({percent:g}%)",
                    n,
                    len(result.row_ids),
                    result.stats.pages_touched,
                ]
            )
        grid_result = grid.sample_box(box, n)
        rows.append(
            ["layered grid", n, len(grid_result.row_ids), grid_result.stats.pages_touched]
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "§3.1 layered grid vs TABLESAMPLE+TOP(n)",
        ["method", "requested", "returned", "pages"],
        rows,
    )
    # Low percent undersamples ...
    assert rows[0][2] < rows[0][1]
    # ... and the grid returns >= n while reading far fewer pages than
    # any percent that actually satisfied the request.
    grid_row = rows[-1]
    satisfying = [r for r in rows[:-1] if r[2] >= r[1]]
    assert grid_row[2] >= grid_row[1]
    if satisfying:
        assert grid_row[3] < min(r[3] for r in satisfying)


def test_sec31_sample_query_benchmark(benchmark, bench_sample):
    """Benchmark one adaptive sample query (the viz hot path)."""
    grid, _, pts = _build(bench_sample)
    box = Box.cube(np.median(pts, axis=0), Box.from_points(pts).widths.max() / 8)
    result = benchmark(lambda: grid.sample_box(box, 1000))
    assert len(result.row_ids) > 0
