"""Paged kd-tree vs in-memory: residency, cold start, warm latency.

The on-disk index trades memory for page reads: node arrays live in
compressed pages and only a byte-budgeted cache of decoded node groups
stays resident.  This bench builds one deliberately *deep* tree (two
rows per leaf, so node arrays -- not data rows -- are the footprint),
then replays a selective workload through the in-memory tree and
through paged views at several node-cache budgets.

Emits ``BENCH_index.json`` next to the repo root: build and
serialization time, cold-start time against full deserialization
(reading and decoding *every* node page from storage before answering,
the eager-load alternative), node pages decoded, peak index-resident
bytes, and warm latency per budget.  Warm overhead is measured as the
best within-trial ratio against an adjacent in-memory baseline pass,
so a contention spike on a shared machine cancels in the pair or is
discarded by the min over trials instead of skewing a configuration.
Acceptance (full scale only): at the default 4 MB budget the peak
residency is >= 10x below the in-memory node arrays, warm latency is
within 25% of the in-memory tree, and cold start beats full
deserialization.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import Database, KdTreeIndex, sdss_color_sample
from repro.core.kdpaged import PagedKdTree, write_paged_tree
from repro.datasets.sdss import BANDS
from repro.datasets.workload import QueryWorkload

from .conftest import bench_scale, print_table, scaled

#: Deep on purpose: ~2 rows per leaf at every scale, so the node arrays
#: dwarf any reasonable cache budget (at full scale: 2^18 - 1 nodes,
#: ~50 MB of arrays against the 4 MB default budget).
ROWS = 262_144

BUDGETS = {
    "1MB": 1 << 20,
    "4MB_default": 4 << 20,
    "16MB": 16 << 20,
}

#: Selective queries: node-page traffic, not bulk row fetch, is the
#: quantity under test.
SELECTIVITIES = [0.0005, 0.002, 0.01]
NUM_QUERIES = 12
TRIALS = 3


def _num_levels(n: int) -> int:
    """Depth giving ~2 rows per leaf (leaves = 2^(levels-1))."""
    return max(3, int(np.log2(max(8, n))))


def _run_pass(index, polyhedra) -> tuple[float, list[int]]:
    counts = []
    started = time.perf_counter()
    for poly in polyhedra:
        _, stats = index.query_polyhedron(poly)
        counts.append(stats.rows_returned)
    return time.perf_counter() - started, counts


def test_index_paging(benchmark):
    n = scaled(ROWS)
    sample = sdss_color_sample(n, seed=7)
    levels = _num_levels(n)
    db = Database.in_memory(buffer_pages=None)

    def build():
        started = time.perf_counter()
        index = KdTreeIndex.build(
            db,
            "pgbench",
            sample.columns(),
            list(BANDS),
            num_levels=levels,
            paged=False,
        )
        build_s = time.perf_counter() - started
        started = time.perf_counter()
        layout = write_paged_tree(db, index.table.physical_name, index.tree)
        serialize_s = time.perf_counter() - started
        return index, layout, build_s, serialize_s

    index, layout, build_s, serialize_s = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    tree = index.tree
    physical = index.table.physical_name
    arrays = tree.export_node_arrays()
    in_memory_bytes = int(sum(a.nbytes for a in arrays.values()))
    disk_bytes = sum(
        len(db.storage.read_page_bytes(PagedKdTree(db, physical, layout).namespace, p))
        for p in range(layout.num_pages)
    )

    workload = QueryWorkload(sample.magnitudes, seed=8)
    polyhedra = [
        q.polyhedron(list(BANDS))
        for q in workload.mixed(NUM_QUERIES, SELECTIVITIES)
    ]

    # In-memory warmup pass (data pages) + reference answer counts.
    _, truth_counts = _run_pass(index, polyhedra)

    # Cold phase: per budget, one pass with both pool levels invalidated.
    views: dict[str, tuple] = {}
    per_budget: dict[str, dict] = {}
    for label, budget in BUDGETS.items():
        paged_tree = PagedKdTree(db, physical, layout, node_cache_bytes=budget)
        paged_index = KdTreeIndex(db, index.table, paged_tree, list(BANDS))
        # Honest cold start per budget: node pages leave both pool levels.
        db.buffer_pool.invalidate(paged_tree.namespace)
        io0 = db.io_stats.as_dict()
        cold_s, counts = _run_pass(paged_index, polyhedra)
        assert counts == truth_counts, f"{label}: paged answers diverged"
        cold_io = db.io_stats.as_dict()
        views[label] = (paged_index, paged_tree)
        per_budget[label] = {
            "budget_bytes": budget,
            "cold_wall_s": cold_s,
            "cold_pages_decoded": cold_io["index_pages_decoded"]
            - io0["index_pages_decoded"],
            "warm_hits": 0,
            "warm_misses": 0,
            "evictions": cold_io["node_cache_evictions"]
            - io0["node_cache_evictions"],
        }

    # Warm phase, paired: each trial times the in-memory baseline and then
    # every budget back to back, and the overhead for a budget is the best
    # *within-trial* ratio against that trial's adjacent baseline pass.  A
    # load spike on a shared machine then either spans both passes of a
    # pair (and cancels in the ratio) or inflates one trial's ratio (and
    # the min over trials discards it); absolute walls stay reported.
    mem_warm_s = float("inf")
    warm_walls = {label: float("inf") for label in BUDGETS}
    warm_ratios = {label: float("inf") for label in BUDGETS}
    for _ in range(TRIALS):
        mem_trial_s = _run_pass(index, polyhedra)[0]
        mem_warm_s = min(mem_warm_s, mem_trial_s)
        for label, (paged_index, _) in views.items():
            before = db.io_stats.as_dict()
            wall, _counts = _run_pass(paged_index, polyhedra)
            after = db.io_stats.as_dict()
            warm_walls[label] = min(warm_walls[label], wall)
            warm_ratios[label] = min(warm_ratios[label], wall / mem_trial_s)
            per_budget[label]["warm_hits"] += (
                after["node_cache_hits"] - before["node_cache_hits"]
            )
            per_budget[label]["warm_misses"] += (
                after["node_cache_misses"] - before["node_cache_misses"]
            )
            per_budget[label]["evictions"] += (
                after["node_cache_evictions"] - before["node_cache_evictions"]
            )
    for label, (_, paged_tree) in views.items():
        r = per_budget[label]
        probes = r.pop("warm_hits") + r["warm_misses"]
        hits = probes - r.pop("warm_misses")
        r["warm_wall_s"] = warm_walls[label]
        r["warm_hit_rate"] = hits / probes if probes else 1.0
        r["max_resident_bytes"] = paged_tree.max_resident_bytes
        r["warm_overhead_vs_in_memory"] = warm_ratios[label] - 1.0

    # Cold start to first answer: lazy paging vs full deserialization,
    # i.e. eagerly reading and decoding *every* node page from storage
    # before the query runs (what a non-paged reload from disk must pay).
    eager_cold_s = float("inf")
    for _ in range(TRIALS):
        db.buffer_pool.invalidate(f"__kdindex__/{physical}")
        started = time.perf_counter()
        eager = PagedKdTree(
            db, physical, layout, node_cache_bytes=2 * in_memory_bytes
        )
        for page_id in range(layout.num_pages):
            eager._page_columns(page_id)
        KdTreeIndex(db, index.table, eager, list(BANDS)).query_polyhedron(
            polyhedra[0]
        )
        eager_cold_s = min(eager_cold_s, time.perf_counter() - started)
    paged_cold_s = float("inf")
    for _ in range(TRIALS):
        db.buffer_pool.invalidate(f"__kdindex__/{physical}")
        started = time.perf_counter()
        fresh = PagedKdTree(db, physical, layout)
        KdTreeIndex(db, index.table, fresh, list(BANDS)).query_polyhedron(
            polyhedra[0]
        )
        paged_cold_s = min(paged_cold_s, time.perf_counter() - started)

    default = per_budget["4MB_default"]
    memory_reduction = in_memory_bytes / max(1, default["max_resident_bytes"])
    rows = [
        [
            label,
            r["budget_bytes"] >> 20,
            r["cold_wall_s"],
            r["warm_wall_s"],
            r["cold_pages_decoded"],
            r["warm_hit_rate"],
            r["evictions"],
            r["max_resident_bytes"] >> 10,
            f"{r['warm_overhead_vs_in_memory']:+.1%}",
        ]
        for label, r in per_budget.items()
    ]
    rows.append(
        ["in_memory", "-", "-", mem_warm_s, 0, 1.0, 0, in_memory_bytes >> 10, "-"]
    )
    print_table(
        f"Paged kd-tree: {n} rows, {levels} levels, "
        f"{layout.num_pages} node pages ({disk_bytes >> 10} KB compressed)",
        [
            "config",
            "budget_mb",
            "cold_s",
            "warm_s",
            "cold_decodes",
            "warm_hits",
            "evictions",
            "peak_kb",
            "vs_mem",
        ],
        rows,
    )
    print(
        f"cold start: paged {paged_cold_s * 1e3:.1f} ms vs full "
        f"deserialization {eager_cold_s * 1e3:.1f} ms; default-budget peak "
        f"residency {memory_reduction:.1f}x below in-memory"
    )

    out = Path(__file__).resolve().parent.parent / "BENCH_index.json"
    out.write_text(
        json.dumps(
            {
                "rows": n,
                "num_levels": levels,
                "num_node_pages": layout.num_pages,
                "nodes_per_page": layout.nodes_per_page,
                "build_s": build_s,
                "serialize_s": serialize_s,
                "in_memory_bytes": in_memory_bytes,
                "compressed_disk_bytes": disk_bytes,
                "queries": len(polyhedra),
                "in_memory_warm_wall_s": mem_warm_s,
                "cold_start_paged_s": paged_cold_s,
                "cold_start_full_deserialize_s": eager_cold_s,
                "default_budget_memory_reduction": memory_reduction,
                "budgets": per_budget,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {out}")

    # Always-on sanity: paging actually happened and the budget bit.
    assert default["cold_pages_decoded"] > 0
    assert per_budget["1MB"]["evictions"] > 0
    page_bytes = in_memory_bytes // layout.num_pages
    for label, r in per_budget.items():
        assert r["max_resident_bytes"] <= r["budget_bytes"] + 2 * page_bytes, (
            f"{label}: resident {r['max_resident_bytes']} blew the budget"
        )
    # Acceptance gates hold at full scale; smoke runs only report (tiny
    # trees fit a page or two, so ratios there say nothing).
    if bench_scale() >= 1.0:
        assert memory_reduction >= 10.0, (
            f"default-budget residency only {memory_reduction:.1f}x below in-memory"
        )
        assert default["warm_overhead_vs_in_memory"] <= 0.25, (
            f"warm overhead {default['warm_overhead_vs_in_memory']:+.1%} > 25%"
        )
        assert paged_cold_s < eager_cold_s, (
            f"paged cold start {paged_cold_s:.3f}s not faster than "
            f"full deserialization {eager_cold_s:.3f}s"
        )
