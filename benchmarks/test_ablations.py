"""Ablations of the design choices DESIGN.md calls out.

* leaf sizing: the paper's √N rule vs shallower / deeper trees;
* k-NN frontier policy: boundary-point growth (paper) vs best-first;
* Voronoi seed count: walk length vs partial-cell residual cost;
* clustered vs unclustered row order -- why the in-database index
  needs clustering at all;
* space-filling curve: Morton vs Hilbert cell numbering locality.
"""

from __future__ import annotations

import numpy as np

from repro import (
    Database,
    KdTreeIndex,
    QueryWorkload,
    VoronoiIndex,
    knn_best_first,
    knn_boundary_points,
    polyhedron_full_scan,
)
from repro.datasets.sdss import BANDS
from repro.db.scan import range_scan

from .conftest import print_table, scaled


def test_ablation_leaf_size(benchmark, bench_sample):
    """Pages touched at 1% selectivity vs tree depth around the √N rule."""

    def run():
        db = Database.in_memory(buffer_pages=None)
        workload = QueryWorkload(bench_sample.magnitudes, seed=3)
        polys = [workload.box_query(0.01).polyhedron(list(BANDS)) for _ in range(5)]
        n = len(bench_sample.magnitudes)
        sqrt_levels = int(round(np.log2(np.sqrt(n)))) + 1
        rows = []
        for delta in (-3, -1, 0, 1, 3):
            levels = sqrt_levels + delta
            index = KdTreeIndex.build(
                db,
                f"abl_leaf_{levels}",
                bench_sample.columns(),
                list(BANDS),
                num_levels=levels,
            )
            pages = []
            for poly in polys:
                _, stats = index.query_polyhedron(poly)
                pages.append(stats.pages_touched)
            stats_summary = index.tree.leaf_statistics()
            rows.append(
                [
                    levels,
                    int(stats_summary["num_leaves"]),
                    stats_summary["mean_leaf_size"],
                    float(np.mean(pages)),
                ]
            )
        return rows, sqrt_levels

    rows, sqrt_levels = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Ablation: kd-tree depth (√N rule -> {sqrt_levels} levels)",
        ["levels", "leaves", "rows_per_leaf", "mean_pages@1%"],
        rows,
    )
    # Deeper trees prune better in page terms until leaves shrink below a
    # page; the shallow extreme must be clearly worse than the rule.
    by_levels = {row[0]: row[3] for row in rows}
    assert by_levels[sqrt_levels - 3] > by_levels[sqrt_levels]


def test_ablation_knn_strategy(benchmark, bench_kd, bench_sample):
    """Boundary-point growth vs best-first: boxes and pages per query."""

    def run():
        rng = np.random.default_rng(8)
        picks = rng.choice(len(bench_sample.magnitudes), 12, replace=False)
        queries = bench_sample.magnitudes[picks] + rng.normal(0, 0.05, (12, 5))
        rows = []
        for k in (5, 50):
            bp_boxes, bf_boxes, bp_pages, bf_pages = [], [], [], []
            for query in queries:
                bp = knn_boundary_points(bench_kd, query, k)
                bf = knn_best_first(bench_kd, query, k)
                assert np.allclose(bp.distances, bf.distances)
                bp_boxes.append(bp.stats.extra["boxes_examined"])
                bf_boxes.append(bf.stats.extra["boxes_examined"])
                bp_pages.append(bp.stats.pages_touched)
                bf_pages.append(bf.stats.pages_touched)
            rows.append(
                [
                    k,
                    float(np.mean(bp_boxes)),
                    float(np.mean(bf_boxes)),
                    float(np.mean(bp_pages)),
                    float(np.mean(bf_pages)),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: k-NN frontier policy",
        ["k", "boundary_boxes", "best_first_boxes", "boundary_pages", "best_first_pages"],
        rows,
    )
    # Best-first with tight boxes is the stronger pruner (it examines no
    # box the result does not require); the paper's scheme stays within a
    # small factor of it -- that factor is the cost of its simplicity.
    for row in rows:
        assert row[1] <= row[2] * 6.0


def test_ablation_voronoi_seed_count(benchmark, bench_sample):
    """Nseed trade-off: walk hops vs partial-cell residual filtering."""

    def run():
        workload = QueryWorkload(bench_sample.magnitudes, seed=5)
        polys = [workload.box_query(0.02).polyhedron(list(BANDS)) for _ in range(4)]
        rng = np.random.default_rng(6)
        rows = []
        for num_seeds in (scaled(128), scaled(512), scaled(2048)):
            db = Database.in_memory(buffer_pages=None)
            index = VoronoiIndex.build(
                db,
                f"abl_vor_{num_seeds}",
                bench_sample.columns(),
                list(BANDS),
                num_seeds=num_seeds,
            )
            hops = []
            for _ in range(25):
                point = bench_sample.magnitudes[rng.integers(index.table.num_rows)]
                _, hop = index.locate(point, start=0)
                hops.append(hop)
            pages, partial_fraction = [], []
            for poly in polys:
                _, stats = index.query_polyhedron(poly)
                pages.append(stats.pages_touched)
                touched = stats.cells_inside + stats.cells_partial
                partial_fraction.append(
                    stats.cells_partial / max(touched, 1)
                )
            rows.append(
                [
                    num_seeds,
                    float(np.mean(hops)),
                    float(np.mean(partial_fraction)),
                    float(np.mean(pages)),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: Voronoi seed count",
        ["num_seeds", "walk_hops", "partial_cell_fraction", "mean_pages@2%"],
        rows,
    )
    # More seeds = finer cells = fewer pages per query.
    pages = [row[3] for row in rows]
    assert pages[-1] < pages[0]


def test_ablation_clustering(benchmark, bench_sample):
    """Clustered vs random row order: the reason clustering exists.

    Build the same kd-tree twice: once over a table clustered on the
    leaf id (the paper's design) and once over a table left in random
    order, where each leaf's rows are fetched by scattered row ids.
    """

    def run():
        db = Database.in_memory(buffer_pages=None)
        # paged=False: the leaf-row map below needs tree.permutation.
        index = KdTreeIndex.build(
            db, "abl_clustered", bench_sample.columns(), list(BANDS), paged=False
        )
        tree = index.tree
        # Unclustered layout: the same rows, original (shuffled) order.
        unclustered = db.create_table("abl_unclustered", bench_sample.columns())
        # Map: clustered leaf -> original row ids.
        leaf_rows = {
            leaf: tree.permutation[slice(*tree.node_rows(leaf))]
            for leaf in range(tree.first_leaf, 2 * tree.first_leaf)
        }
        rng = np.random.default_rng(9)
        clustered_pages, unclustered_pages = [], []
        for _ in range(30):
            leaf = int(rng.integers(tree.first_leaf, 2 * tree.first_leaf))
            start, end = tree.node_rows(leaf)
            _, c_stats = range_scan(index.table, start, end)
            clustered_pages.append(c_stats.pages_touched)
            touched = {
                unclustered.page_of_row(int(r)) for r in leaf_rows[leaf]
            }
            unclustered_pages.append(len(touched))
        return float(np.mean(clustered_pages)), float(np.mean(unclustered_pages))

    clustered, unclustered = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nAblation clustering: pages per leaf fetch -- clustered={clustered:.1f}, "
        f"unclustered={unclustered:.1f} ({unclustered / clustered:.1f}x more)"
    )
    # Without clustering every leaf fetch degenerates to ~one page per row.
    assert unclustered > 10 * clustered


def test_ablation_sfc_curve(benchmark, bench_sample):
    """Morton vs Hilbert numbering: locality of multi-cell queries.

    Both curves produce the same per-cell ranges; the difference is how
    *contiguous* the set of touched cell ranges is for a spatial query --
    fewer, longer runs mean fewer seeks on a real disk.
    """

    def run():
        workload = QueryWorkload(bench_sample.magnitudes, seed=10)
        polys = [workload.box_query(0.05).polyhedron(list(BANDS)) for _ in range(6)]
        results = {}
        for curve in ("morton", "hilbert"):
            db = Database.in_memory(buffer_pages=None)
            index = VoronoiIndex.build(
                db,
                f"abl_sfc_{curve}",
                bench_sample.columns(),
                list(BANDS),
                num_seeds=scaled(512),
                curve=curve,
            )
            run_counts = []
            for poly in polys:
                _, stats = index.query_polyhedron(poly)
                pages = sorted(p for _, p in stats._pages)
                runs = 1 + sum(
                    1 for a, b in zip(pages, pages[1:]) if b != a + 1
                ) if pages else 0
                run_counts.append(runs)
            results[curve] = float(np.mean(run_counts))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nAblation SFC numbering: mean contiguous page runs per query -- "
        f"morton={results['morton']:.1f}, hilbert={results['hilbert']:.1f}"
    )
    # Hilbert should not be (much) worse; typically it is equal or better.
    assert results["hilbert"] <= results["morton"] * 1.3


def test_ablation_kd_vs_rtree(benchmark, bench_sample):
    """Kd-tree vs STR R-tree at matched leaf granularity.

    The paper's introduction positions the kd-tree against the classic
    R-tree family; this ablation runs both -- same engine, same clustered
    storage, same leaf size -- across the selectivity sweep, plus their
    leaf-shape statistics on the clustered color space.
    """
    from repro import RTreeIndex

    def run():
        db = Database.in_memory(buffer_pages=None)
        kd = KdTreeIndex.build(db, "cmp_kd", bench_sample.columns(), list(BANDS))
        leaf = int(kd.tree.leaf_statistics()["mean_leaf_size"])
        rtree = RTreeIndex.build(
            db, "cmp_rt", bench_sample.columns(), list(BANDS), leaf_capacity=leaf
        )
        workload = QueryWorkload(bench_sample.magnitudes, seed=11)
        rows = []
        for target in (0.002, 0.02, 0.15):
            kd_pages, rt_pages = [], []
            for _ in range(4):
                poly = workload.box_query(target).polyhedron(list(BANDS))
                _, kd_stats = kd.query_polyhedron(poly)
                _, rt_stats = rtree.query_polyhedron(poly)
                assert kd_stats.rows_returned == rt_stats.rows_returned
                kd_pages.append(kd_stats.pages_touched)
                rt_pages.append(rt_stats.pages_touched)
            rows.append(
                [target, float(np.mean(kd_pages)), float(np.mean(rt_pages))]
            )
        kd_shape = kd.tree.leaf_statistics()["mean_leaf_elongation"]
        rt_shape = rtree.leaf_statistics()["mean_leaf_elongation"]
        return rows, kd_shape, rt_shape

    rows, kd_shape, rt_shape = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: kd-tree vs STR R-tree (matched leaf size)",
        ["target_sel", "kd_pages", "rtree_pages"],
        rows,
    )
    print(f"mean leaf elongation: kd={kd_shape:.2f}, rtree={rt_shape:.2f}")
    # Both prune; results agree; either may win by small margins -- the
    # point is the comparison exists.  Sanity: both far below a scan.
    for row in rows[:2]:
        assert row[1] < 469
        assert row[2] < 469
