"""Benchmarks of the extension features (the paper's future-work items).

* The stored Delaunay edge structure (§3.4's "store only the edges ...
  a much more compact description"): out-of-core walk cost, storage
  footprint vs the full tessellation, density-proxy quality.
* Approximate Voronoi k-NN (ref [6]): recall / cost trade-off by ring.
* Seed selection: random (paper) vs stratified ("could be improved to
  follow better the underlying distribution, hence keep the cells
  balanced").
* Buffer-pool pressure: how the paper's RAM budget (8 GB + AWE) shows up
  as cache hit rates for a repeated query workload.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import spearmanr

from repro import (
    Database,
    DelaunayEdgeStore,
    DelaunayGraph,
    KdTreeIndex,
    QueryWorkload,
    VoronoiIndex,
    knn_brute_force,
    voronoi_volume_estimates,
)
from repro.datasets.sdss import BANDS

from .conftest import print_table, scaled


def test_ext_edge_store(benchmark, bench_sample):
    """Stored-edges walk cost + footprint vs the full tessellation."""

    def run():
        rng = np.random.default_rng(1)
        mags = bench_sample.magnitudes
        seeds = mags[rng.choice(len(mags), scaled(1000), replace=False)]
        graph = DelaunayGraph(seeds)
        db = Database.in_memory(buffer_pages=16)  # tight memory: out-of-core
        store = DelaunayEdgeStore.save(db, "tess_ext", graph)

        pages, hops = [], []
        for _ in range(30):
            point = mags[rng.integers(len(mags))]
            walk, stats = store.directed_walk(point)
            assert walk.seed == graph.nearest_seed_exact(point)
            pages.append(stats.pages_touched)
            hops.append(walk.hops)

        sizes = store.storage_bytes()
        # Full tessellation estimate: every cell stores its vertices
        # (incident circumcenters), ~vertex_count * d floats per cell.
        from repro.tessellation import VoronoiCells

        vertex_counts = VoronoiCells(graph).vertex_counts()
        full_bytes = int(vertex_counts.sum()) * graph.dim * 8

        proxy = store.approximate_volumes()
        exact = voronoi_volume_estimates(graph)
        mask = np.isfinite(proxy) & (exact > 0)
        corr = spearmanr(proxy[mask], exact[mask]).statistic
        return {
            "mean_walk_pages": float(np.mean(pages)),
            "mean_walk_hops": float(np.mean(hops)),
            "edge_store_bytes": sizes["total"],
            "full_tessellation_bytes": full_bytes,
            "compaction": full_bytes / sizes["total"],
            "volume_proxy_spearman": float(corr),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Extension: stored Delaunay edges (§3.4 future work)",
        ["metric", "value"],
        [[k, v] for k, v in result.items()],
    )
    # Walks touch a handful of pages, not the structure's size.
    assert result["mean_walk_pages"] < 40
    # Edges are the compact description the paper predicted.
    assert result["compaction"] > 3.0
    # The edge-only volume proxy still ranks densities faithfully.
    assert result["volume_proxy_spearman"] > 0.8


def test_ext_approximate_knn(benchmark, bench_sample):
    """Recall vs cells examined, by neighbor ring."""

    def run():
        db = Database.in_memory(buffer_pages=None)
        index = VoronoiIndex.build(
            db, "approx_vor", bench_sample.columns(), list(BANDS),
            num_seeds=scaled(800),
        )
        rng = np.random.default_rng(2)
        queries = bench_sample.magnitudes[
            rng.choice(len(bench_sample.magnitudes), 20, replace=False)
        ]
        rows = []
        for rings in (0, 1, 2):
            hits = total = cells = pages = 0
            for query in queries:
                exact = knn_brute_force(index.table, list(BANDS), query, 10)
                approx = index.knn_approximate(query, 10, rings=rings)
                hits += len(
                    set(approx.row_ids.tolist()) & set(exact.row_ids.tolist())
                )
                total += 10
                cells += approx.stats.extra["cells_examined"]
                pages += approx.stats.pages_touched
            rows.append(
                [rings, hits / total, cells / len(queries), pages / len(queries)]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Extension: approximate Voronoi k-NN",
        ["rings", "recall@10", "cells_examined", "pages"],
        rows,
    )
    recalls = [row[1] for row in rows]
    assert recalls == sorted(recalls)  # more rings, more recall
    assert recalls[1] > 0.85  # one ring is already near-exact


def test_ext_seed_strategy(benchmark, bench_sample):
    """Cell balance and query cost: random vs stratified seeds."""

    def run():
        workload = QueryWorkload(bench_sample.magnitudes, seed=3)
        polys = [workload.box_query(0.02).polyhedron(list(BANDS)) for _ in range(4)]
        rows = []
        for strategy in ("random", "stratified"):
            db = Database.in_memory(buffer_pages=None)
            index = VoronoiIndex.build(
                db,
                f"seed_{strategy}",
                bench_sample.columns(),
                list(BANDS),
                num_seeds=scaled(600),
                seed_strategy=strategy,
            )
            counts = index.cell_point_counts()
            pages = []
            for poly in polys:
                _, stats = index.query_polyhedron(poly)
                pages.append(stats.pages_touched)
            rows.append(
                [
                    strategy,
                    float(counts.std() / counts.mean()),
                    int(counts.max()),
                    float(np.mean(pages)),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Extension: Voronoi seed selection",
        ["strategy", "cell_count_cv", "max_cell", "mean_pages@2%"],
        rows,
    )
    random_cv = rows[0][1]
    stratified_cv = rows[1][1]
    assert stratified_cv < random_cv  # "keep the cells balanced"


def test_ext_buffer_pool_pressure(benchmark, bench_sample):
    """Cache hit rate vs buffer budget for a repeated query workload.

    The paper's server had 8 GB with AWE tricks; here the budget is the
    pool's page count.  A working set that fits is served from memory on
    repeat; one that doesn't thrashes -- the regime where the clustered
    indexes' small page footprints matter most.
    """

    def run():
        workload = QueryWorkload(bench_sample.magnitudes, seed=4)
        polys = [workload.box_query(0.02).polyhedron(list(BANDS)) for _ in range(6)]
        rows = []
        for budget in (16, 64, 256, None):
            db = Database.in_memory(buffer_pages=budget)
            index = KdTreeIndex.build(
                db, f"bp_{budget}", bench_sample.columns(), list(BANDS)
            )
            # Warm run then measured run of the same workload.
            for poly in polys:
                index.query_polyhedron(poly)
            db.reset_io_stats()
            for poly in polys:
                index.query_polyhedron(poly)
            stats = db.io_stats
            total = stats.cache_hits + stats.cache_misses
            rows.append(
                [
                    "unbounded" if budget is None else budget,
                    stats.cache_hits,
                    stats.cache_misses,
                    stats.cache_hits / max(total, 1),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Extension: buffer-pool pressure (repeat workload)",
        ["buffer_pages", "hits", "misses", "hit_rate"],
        rows,
    )
    hit_rates = [row[3] for row in rows]
    # Bigger budgets monotonically raise the repeat-workload hit rate,
    # reaching ~1.0 when everything fits.
    assert hit_rates == sorted(hit_rates)
    assert hit_rates[-1] > 0.95


def test_ext_recovery_mode(benchmark, bench_sample):
    """Full vs simple recovery while bulk-building an index.

    The paper: "recovery mode was set to simple in order to avoid huge /
    slow log processes" (§3).  Measured: write bytes and build time for
    the same kd-tree build under both models, plus the log's one virtue
    (replaying it reproduces the pages exactly).
    """
    import time

    from repro import KdTreeIndex, LoggedStorage
    from repro.db import Database as Db
    from repro.db import MemoryStorage
    from repro.db.pages import PageCodec

    def run():
        data = {
            k: v[: scaled(20_000)] for k, v in bench_sample.columns().items()
        }
        rows = []
        for mode in ("simple", "full"):
            storage = MemoryStorage()
            if mode == "full":
                storage = LoggedStorage(storage)
            db = Db(storage, buffer_pages=None)
            start = time.perf_counter()
            KdTreeIndex.build(db, "rec_kd", data, list(BANDS))
            elapsed = time.perf_counter() - start
            rows.append([mode, storage.stats.bytes_written, elapsed])
        # The log's payoff: replay rebuilds identical pages.
        storage = LoggedStorage(MemoryStorage())
        db = Db(storage, buffer_pages=None)
        index = KdTreeIndex.build(db, "rec_chk", data, list(BANDS))
        fresh = MemoryStorage()
        storage.replay(fresh)
        original = storage.inner.read_page("rec_chk", 0)
        rebuilt = fresh.read_page("rec_chk", 0)
        replay_ok = PageCodec.encode(original) == PageCodec.encode(rebuilt)
        return rows, replay_ok

    rows, replay_ok = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Extension: recovery mode during index bulk build",
        ["recovery", "bytes_written", "build_s"],
        rows,
    )
    print(f"log replay reproduces pages exactly: {replay_ok}")
    simple_bytes = rows[0][1]
    full_bytes = rows[1][1]
    # Full recovery roughly doubles the write traffic -- the cost the
    # paper's configuration avoids.
    assert full_bytes > 1.8 * simple_bytes
    assert replay_ok


def test_ext_selectivity_estimators(benchmark, bench_kd, bench_sample):
    """Histogram statistics vs page sampling as the planner's estimator.

    Histograms cost zero plan-time I/O but assume attribute independence;
    page sampling reads a few pages but sees the joint distribution.  On
    the heavily correlated color space the difference is measurable.
    """
    from repro import QueryPlanner
    from repro.db import HistogramStatistics

    def run():
        statistics = HistogramStatistics(bench_kd.table, list(BANDS))
        sampled = QueryPlanner(bench_kd, seed=0)
        histogrammed = QueryPlanner(bench_kd, statistics=statistics)
        workload = QueryWorkload(bench_sample.magnitudes, seed=14)
        rows = []
        for target in (0.01, 0.1, 0.4):
            errors = {"page_sample": [], "histogram": []}
            for _ in range(5):
                poly = workload.box_query(target).polyhedron(list(BANDS))
                truth = poly.contains_points(bench_sample.magnitudes).mean()
                est_s, _ = sampled.estimate_selectivity(poly)
                est_h, _ = histogrammed.estimate_selectivity(poly)
                errors["page_sample"].append(abs(est_s - truth))
                errors["histogram"].append(abs(est_h - truth))
            rows.append(
                [
                    target,
                    float(np.mean(errors["page_sample"])),
                    float(np.mean(errors["histogram"])),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Extension: selectivity estimators (mean |error|)",
        ["target_sel", "page_sample", "histogram"],
        rows,
    )
    # Both estimators stay within usable bounds at every selectivity.
    for row in rows:
        assert row[1] < 0.25
        assert row[2] < 0.45


def test_ext_projection_savings(benchmark, bench_sample):
    """Narrow materialized projections: page savings on covered scans."""
    from repro import Col
    from repro.db import ProjectionSet, create_projection

    def run():
        db = Database.in_memory(buffer_pages=None)
        data = dict(bench_sample.columns())
        rng = np.random.default_rng(15)
        # A wide table: the paper's 300+ columns, abridged.
        for extra in range(12):
            data[f"meta{extra}"] = rng.normal(size=len(bench_sample.magnitudes))
        base = db.create_table("wide_ext", data)
        projections = ProjectionSet(base)
        projections.add(create_projection(db, base, "narrow_gr_ext", ["g", "r"]))
        predicate = (Col("g") - Col("r")) > 1.0
        _, base_stats = __import__("repro").full_scan(base, predicate=predicate)
        _, proj_stats, used = projections.scan(predicate)
        return base_stats.pages_touched, proj_stats.pages_touched, used

    base_pages, projection_pages, used = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\nExtension: projection scan -- base {base_pages} pages vs "
        f"{used!r} {projection_pages} pages "
        f"({base_pages / projection_pages:.1f}x fewer)"
    )
    assert projection_pages < base_pages / 4
