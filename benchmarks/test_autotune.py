"""Auto-tuned divergent replicas vs a uniform default single table.

The tentpole loop, measured: a mixed workload (needle slabs and
IN-list membership probes on one band, plus classic Figure 2 mid
boxes) runs once on a *default-configured* single table -- that run
both sets the pages-decoded baseline and captures the workload trace.
The greedy tuner then replays the trace against candidate configs
(:mod:`repro.tune`), chooses two divergent replica configurations, the
replica set materializes, and the router replays the same workload.

Emits ``BENCH_autotune.json``.  Acceptance (full scale only): the
tuned divergent replica set decodes >= 25% fewer pages than the
uniform default table on the mixed workload, every answer is
oid-identical to the baseline's, and the router sends >= 80% of each
workload class to the replica the tuner specialized for it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import Database, KdTreeIndex, QueryPlanner, sdss_color_sample
from repro.bitmap import BitmapIndex
from repro.datasets.sdss import BANDS
from repro.db.table import DEFAULT_ROWS_PER_PAGE
from repro.geometry.halfspace import Halfspace, Polyhedron
from repro.tune import (
    CostReplayEvaluator,
    GreedyConfigSelector,
    ReplicaRouter,
    ReplicaSet,
    TableProfile,
    WorkloadTraceRecorder,
    default_config,
)

from .conftest import bench_scale, print_table, scaled

NUM_NEEDLES = 10
NUM_MEMBERS = 10
NUM_BOXES = 10


def _slab(dims: list[str], windows: dict[str, tuple[float, float]]) -> Polyhedron:
    halfspaces = []
    for axis, dim in enumerate(dims):
        if dim not in windows:
            continue
        low, high = windows[dim]
        e = np.zeros(len(dims))
        e[axis] = 1.0
        halfspaces.append(Halfspace(e, float(high)))
        halfspaces.append(Halfspace(-e, -float(low)))
    return Polyhedron(halfspaces)


def _trivial_polyhedron(dim: int) -> Polyhedron:
    e = np.zeros(dim)
    e[0] = 1.0
    return Polyhedron([Halfspace(e, np.inf)])


def _workload(columns: dict, rng: np.random.Generator) -> dict[str, list]:
    """Three classes over one band-heavy mixed workload.

    * ``needle`` -- ~0.5% slabs on the r band alone: one-dimensional
      precision cuts (bright-star windows) a fine-binned single-column
      bitmap eats for breakfast.
    * ``membership`` -- IN lists of ~50 r magnitudes from a 1% window:
      no box geometry at all, bitmap-only territory.
    * ``box`` -- classic 5-d mid boxes: a quantile window in *every*
      band at ~2-10% joint selectivity, where the widest-split kd-tree
      and zone maps do the work.
    """
    dims = list(BANDS)
    r_values = np.asarray(columns["r"])
    needles = []
    for _ in range(NUM_NEEDLES):
        q0 = rng.uniform(0.05, 0.9)
        low = float(np.quantile(r_values, q0))
        high = float(np.quantile(r_values, q0 + 0.005))
        needles.append((_slab(dims, {"r": (low, high)}), None))
    members = []
    trivial = _trivial_polyhedron(len(dims))
    for _ in range(NUM_MEMBERS):
        q0 = rng.uniform(0.05, 0.9)
        low = float(np.quantile(r_values, q0))
        high = float(np.quantile(r_values, q0 + 0.01))
        pool = r_values[(r_values >= low) & (r_values <= high)]
        picks = rng.choice(pool, size=min(50, len(pool)), replace=False)
        members.append((trivial, {"r": picks}))
    boxes = []
    for j in range(NUM_BOXES):
        per_axis = [0.02, 0.05, 0.1][j % 3] ** (1.0 / len(dims))
        windows = {}
        for dim in dims:
            values = np.asarray(columns[dim])
            q0 = rng.uniform(0.0, 1.0 - per_axis)
            windows[dim] = (
                float(np.quantile(values, q0)),
                float(np.quantile(values, q0 + per_axis)),
            )
        boxes.append((_slab(dims, windows), None))
    return {"needle": needles, "membership": members, "box": boxes}


def _run_queries(engine, queries: list) -> dict:
    pages = 0
    oid_sets = []
    replicas = []
    started = time.perf_counter()
    for polyhedron, memberships in queries:
        planned = engine.execute(polyhedron, memberships=memberships)
        pages += planned.stats.pages_touched
        oid_sets.append(frozenset(planned.rows["oid"].tolist()))
        replicas.append(planned.stats.extra.get("replica_id"))
    return {
        "pages_decoded": pages,
        "wall_s": time.perf_counter() - started,
        "_oid_sets": oid_sets,
        "_replicas": replicas,
    }


def test_autotuned_divergent_replicas(benchmark):
    rows = scaled(32_000)
    sample = sdss_color_sample(rows, seed=12)
    columns = dict(sample.columns())
    columns["oid"] = np.arange(rows, dtype=np.int64)
    rng = np.random.default_rng(13)

    classes = _workload(columns, rng)
    class_names = list(classes.keys())

    # -- baseline: uniform default single table, trace captured live ----
    base_config = default_config()
    db = Database.in_memory(buffer_pages=None)
    index = KdTreeIndex.build(db, "tuned_mag", dict(columns), list(BANDS))
    BitmapIndex.build(
        db, "tuned_mag", list(BANDS), num_bins=base_config.bitmap_bins
    )
    baseline_planner = QueryPlanner(index, seed=15)
    recorder = WorkloadTraceRecorder()
    baseline_planner.trace_recorder = recorder
    baseline = {
        name: _run_queries(baseline_planner, queries)
        for name, queries in classes.items()
    }
    trace = recorder.observations()
    assert len(trace) == sum(len(q) for q in classes.values())

    # -- tune: cost replay only, no queries executed --------------------
    profile = TableProfile(
        columns, list(BANDS), rows, DEFAULT_ROWS_PER_PAGE, seed=16
    )
    evaluator = CostReplayEvaluator(profile, trace=trace)
    selector = GreedyConfigSelector(evaluator)
    tune_started = time.perf_counter()
    plan = selector.select_divergent(trace, 2)
    tune_wall_s = time.perf_counter() - tune_started

    # Which replica did the tuner specialize for each benchmark class?
    # The trace preserves execution order, so class boundaries map
    # straight onto plan.assignment slices; specialization = majority.
    specialized: dict[str, int] = {}
    cursor = 0
    for name in class_names:
        owners = plan.assignment[cursor : cursor + len(classes[name])]
        cursor += len(classes[name])
        specialized[name] = max(
            sorted(set(owners)), key=lambda r: owners.count(r)
        )

    # -- materialize + routed replay ------------------------------------
    def build_and_replay() -> tuple[ReplicaRouter, dict]:
        replica_set = ReplicaSet.build(
            "tuned_mag",
            columns,
            list(BANDS),
            list(plan.configs),
            seed=17,
            key_column="oid",
        )
        router = ReplicaRouter(replica_set)
        return router, {
            name: _run_queries(router, queries)
            for name, queries in classes.items()
        }

    router, tuned = benchmark.pedantic(build_and_replay, rounds=1, iterations=1)

    # Identical answers, query for query, against the default baseline.
    for name in class_names:
        assert tuned[name]["_oid_sets"] == baseline[name]["_oid_sets"], (
            f"tuned replicas diverged from the default table on {name}"
        )

    baseline_pages = sum(cell["pages_decoded"] for cell in baseline.values())
    tuned_pages = sum(cell["pages_decoded"] for cell in tuned.values())
    savings = 1.0 - tuned_pages / max(baseline_pages, 1)
    shares = {}
    for name in class_names:
        served = tuned[name]["_replicas"]
        shares[name] = served.count(specialized[name]) / len(served)

    print_table(
        f"pages decoded: default table vs tuned divergent replicas "
        f"({rows} rows)",
        ["class", "default", "tuned", "specialized", "routed_share"],
        [
            [
                name,
                baseline[name]["pages_decoded"],
                tuned[name]["pages_decoded"],
                f"r{specialized[name]}",
                f"{shares[name]:.0%}",
            ]
            for name in class_names
        ],
    )
    print(
        f"total pages: {baseline_pages} -> {tuned_pages} "
        f"({savings:.1%} saved); tuner predicted "
        f"{plan.baseline_pages:.0f} -> {plan.predicted_pages:.0f} "
        f"in {tune_wall_s:.2f} s"
    )

    for cells in (baseline, tuned):
        for cell in cells.values():
            del cell["_oid_sets"]
            del cell["_replicas"]
    out = Path(__file__).resolve().parent.parent / "BENCH_autotune.json"
    out.write_text(
        json.dumps(
            {
                "workload": "mixed_needle_box_membership",
                "rows": rows,
                "classes": {n: len(q) for n, q in classes.items()},
                "baseline": baseline,
                "tuned": tuned,
                "baseline_pages": baseline_pages,
                "tuned_pages": tuned_pages,
                "pages_saved_fraction": savings,
                "routing_shares": shares,
                "specialized": {n: f"r{r}" for n, r in specialized.items()},
                "configs": [c.to_dict() for c in plan.configs],
                "tuner": {
                    "predicted_baseline_pages": plan.baseline_pages,
                    "predicted_pages": plan.predicted_pages,
                    "rounds": plan.rounds,
                    "wall_s": tune_wall_s,
                },
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {out}")

    # Tiny scaled-down tables have too few pages for the ratios to mean
    # anything; the gates below apply at full scale only.
    if bench_scale() >= 1.0:
        assert savings >= 0.25, (
            f"tuned divergent replicas should decode >=25% fewer pages "
            f"than the uniform default table, got {savings:.1%}"
        )
        for name, share in shares.items():
            assert share >= 0.8, (
                f"router should send >=80% of the {name} class to its "
                f"specialized replica r{specialized[name]}, got {share:.0%}"
            )
