"""E5 / §3.4 cell-shape statistics: the "roundness" of 5-D Voronoi cells.

Paper: "it turned out that Voronoi cells in five dimensions tend to have
about a thousand vertices compared to the 32 for 5D hyper-rectangles and
50 neighboring cells ('faces') compared to 10 for hyper-rectangles.  It
confirms our expectation about the 'roundness' of the cells."

We reproduce the per-dimension sweep of vertex/face counts for uniform
seed samples, plus the contrast with the elongation of real kd-tree
boxes over clustered data ("standard kd-trees produce very elongated
bounding boxes ... this problem usually does not arise with Voronoi
tessellation").
"""

from __future__ import annotations

import numpy as np

from repro.core.kdtree import KdTree
from repro.tessellation import DelaunayGraph, VoronoiCells

from .conftest import print_table, scaled


def test_sec34_cell_shape_by_dimension(benchmark):
    """Vertex and face counts per cell vs hyper-rectangles, d = 2..5."""

    def run():
        rng = np.random.default_rng(5)
        rows = []
        for dim, num_seeds in ((2, 400), (3, 400), (4, 300), (5, 250)):
            graph = DelaunayGraph(rng.uniform(size=(num_seeds, dim)))
            report = VoronoiCells(graph).roundness_report()
            rows.append(
                [
                    dim,
                    report["mean_vertices"],
                    report["box_vertices"],
                    report["mean_faces"],
                    report["box_faces"],
                    report["mean_vertices"] / report["box_vertices"],
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "§3.4 Voronoi cell shape vs hyper-rectangles",
        ["dim", "voronoi_vertices", "box_vertices", "voronoi_faces", "box_faces", "vertex_ratio"],
        rows,
    )
    five_d = rows[-1]
    # Paper's 5-D numbers: ~1000 vertices (vs 32) and ~50 faces (vs 10).
    assert five_d[1] > 100  # orders more vertices than a box
    assert five_d[3] > 25  # several times more faces than a box
    # The contrast grows with dimension.
    ratios = [row[5] for row in rows]
    assert ratios == sorted(ratios)


def test_sec34_kd_boxes_elongated_voronoi_round(benchmark, bench_sample):
    """Clustered data: kd boxes elongate, Voronoi balls stay round."""

    def run():
        mags = bench_sample.magnitudes[: scaled(20_000)]
        tree = KdTree(mags, num_levels=7)
        elongations = [
            tree.tight_box(leaf).elongation
            for leaf in range(tree.first_leaf, 2 * tree.first_leaf)
            if tree.leaf_size(leaf) > 1
        ]
        elongations = [e for e in elongations if np.isfinite(e)]
        return float(np.median(elongations))

    kd_elongation = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n§3.4 median kd-leaf elongation on SDSS colors: {kd_elongation:.2f}")
    # Real SDSS-shaped data produces clearly elongated kd boxes (>1.5x),
    # the effect the paper attributes to the uneven distribution.
    assert kd_elongation > 1.5
