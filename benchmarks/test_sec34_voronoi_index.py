"""E6 / §3.4: the sampled Voronoi index as a query accelerator.

Paper: "This index can be used to speed up polyhedron queries: for each
of the Nseed cells, we determine whether it is contained in the query or
outside of it - in which case we return or reject, respectively, all
points with that index -, or if it partially intersects, in which case
we run the polyhedron SQL query", and "to find the containing cell we
used a directed walk on the Delaunay graph, which on average takes
O(sqrt(Nseed)) steps."
"""

from __future__ import annotations

import numpy as np

from repro import Database, QueryWorkload, VoronoiIndex, polyhedron_full_scan
from repro.datasets.sdss import BANDS

from .conftest import print_table, scaled


def _build_index(bench_sample, num_seeds=None):
    db = Database.in_memory(buffer_pages=None)
    num_seeds = num_seeds or max(64, int(np.sqrt(len(bench_sample.magnitudes)) * 2))
    return VoronoiIndex.build(
        db, "vor34", bench_sample.columns(), list(BANDS), num_seeds=num_seeds
    )


def test_sec34_polyhedron_queries(benchmark, bench_sample):
    """Correctness + cell classification + I/O table across selectivity."""

    def run():
        index = _build_index(bench_sample)
        workload = QueryWorkload(bench_sample.magnitudes, seed=9)
        rows = []
        for target in (0.002, 0.02, 0.15):
            v_pages, s_pages, inside, outside, partial = [], [], [], [], []
            for _ in range(3):
                poly = workload.box_query(target).polyhedron(list(BANDS))
                _, v_stats = index.query_polyhedron(poly)
                _, s_stats = polyhedron_full_scan(index.table, list(BANDS), poly)
                assert v_stats.rows_returned == s_stats.rows_returned
                v_pages.append(v_stats.pages_touched)
                s_pages.append(s_stats.pages_touched)
                inside.append(v_stats.cells_inside)
                outside.append(v_stats.cells_outside)
                partial.append(v_stats.cells_partial)
            rows.append(
                [
                    target,
                    float(np.mean(inside)),
                    float(np.mean(outside)),
                    float(np.mean(partial)),
                    float(np.mean(v_pages)),
                    float(np.mean(s_pages)),
                    float(np.mean(s_pages)) / max(float(np.mean(v_pages)), 1e-9),
                ]
            )
        return index, rows

    index, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "§3.4 Voronoi index polyhedron queries",
        ["target_sel", "cells_in", "cells_out", "cells_partial", "vor_pages", "scan_pages", "page_speedup"],
        rows,
    )
    # Selective queries reject most cells outright and beat the scan.
    assert rows[0][2] > index.num_cells * 0.5
    assert rows[0][6] > 2.0


def test_sec34_walk_hops_scale(benchmark, bench_sample):
    """Directed-walk hop count grows like O(sqrt(Nseed))."""

    def run():
        rng = np.random.default_rng(10)
        rows = []
        for num_seeds in (scaled(128), scaled(512), scaled(2048)):
            index = _build_index(bench_sample, num_seeds=num_seeds)
            hops = []
            for _ in range(40):
                pick = rng.integers(len(bench_sample.magnitudes))
                point = bench_sample.magnitudes[pick] + rng.normal(0, 0.05, 5)
                _, hop_count = index.locate(point, start=0)
                hops.append(hop_count)
            rows.append([num_seeds, float(np.mean(hops)), float(np.sqrt(num_seeds))])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "§3.4 directed walk: hops vs sqrt(Nseed)",
        ["num_seeds", "mean_hops", "sqrt(Nseed)"],
        rows,
    )
    # 16x seeds -> hops grow far less than 16x (sublinear, ~4x expected).
    growth = rows[-1][1] / max(rows[0][1], 0.5)
    assert growth < 8.0


def test_sec34_voronoi_query_benchmark(benchmark, bench_sample):
    """Benchmark one selective polyhedron query through the index."""
    index = _build_index(bench_sample)
    workload = QueryWorkload(bench_sample.magnitudes, seed=12)
    poly = workload.box_query(0.01).polyhedron(list(BANDS))
    result = benchmark(lambda: index.query_polyhedron(poly))
    assert result[1].rows_returned >= 0
