"""E14 / Figure 1 and §2.1: the shape of the synthetic color space.

Paper, §2.1: "data points do not fill the parameter space uniformly;
this is typical for science data sets.  There are correlations, points
are clustered, they lie along (hyper)surfaces or subspaces ... there are
outliers ... These large variations in the density call for adaptive
binning."

This bench certifies that the generator standing in for the SDSS
magnitude table actually has those properties -- the properties every
index experiment depends on.
"""

from __future__ import annotations

import numpy as np

from repro import PrincipalComponents, sdss_color_sample
from repro.datasets.sdss import CLASS_NAMES, CLASS_OUTLIER

from .conftest import print_table, scaled


def test_fig1_distribution_shape(benchmark):
    """Density contrast, anisotropy, and class structure of the sample."""

    def run():
        sample = sdss_color_sample(scaled(100_000), seed=1)
        colors = sample.colors()

        # Density contrast over a uniform grid (the "adaptive binning"
        # motivation): occupancy ratio between the busiest and median
        # occupied cells.
        hist, *_ = np.histogramdd(colors[:, :3], bins=24)
        occupied = hist[hist > 0]
        contrast = float(occupied.max() / np.median(occupied))
        fill = float((hist > 0).mean())

        # Anisotropy: variance concentration along principal axes
        # (points near lower-dimensional structure).
        pca = PrincipalComponents(2, normalize=False).fit(colors)
        planarity = float(pca.explained_variance_ratio.sum())

        class_counts = np.bincount(sample.labels, minlength=4)
        rows = [
            ["points", sample.num_points],
            ["grid fill fraction", fill],
            ["density contrast (max/median cell)", contrast],
            ["variance in top 2 of 4 color PCs", planarity],
        ]
        for cls, name in CLASS_NAMES.items():
            rows.append([f"fraction {name}", class_counts[cls] / sample.num_points])
        return rows, contrast, fill, planarity, sample

    rows, contrast, fill, planarity, sample = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table("Figure 1 / §2.1: dataset shape", ["statistic", "value"], rows)
    # Highly non-uniform: enormous cell-occupancy contrast over a mostly
    # empty bounding box.
    assert contrast > 100.0
    assert fill < 0.2
    # Correlated: most color variance in a 2-D subspace of the 4 colors.
    assert planarity > 0.75
    # Outliers present but rare.
    outlier_fraction = (sample.labels == CLASS_OUTLIER).mean()
    assert 0.005 < outlier_fraction < 0.08


def test_fig1_sample_generation_benchmark(benchmark):
    """Benchmark drawing a Figure 1-sized (500K scaled) sample."""
    sample = benchmark.pedantic(
        lambda: sdss_color_sample(scaled(500_000), seed=2), rounds=1, iterations=2
    )
    assert sample.num_points == scaled(500_000)
