"""E11 / §5, Figures 11-16: the adaptive visualization pipeline.

Reproduced behaviours:

* adaptive LOD -- every camera position yields at least n points in view
  (Figure 14's "at least n = 100K objects in view", scaled);
* kd-box depth adaptation (Figure 15);
* multi-level Delaunay / Voronoi refinement (Figure 16);
* "when zooming in and then back out, the cache reduces time delay to
  zero" -- zero database queries on the cached path;
* the non-blocking threaded producer handshake (Figure 13).
"""

from __future__ import annotations

import numpy as np

from repro import (
    AdaptivePointCloudProducer,
    Database,
    DelaunayEdgeProducer,
    KdBoxProducer,
    KdTreeIndex,
    LayeredGridIndex,
    PluginHost,
    RecordingConsumer,
    VoronoiCellProducer,
)
from repro.ml import PrincipalComponents
from repro.tessellation import DelaunayGraph

from .conftest import print_table, scaled


def _viz_setup(bench_sample):
    """First three principal components of the magnitude table (§3.1)."""
    pca = PrincipalComponents(3, normalize=False)
    coords = pca.fit_transform(bench_sample.magnitudes)
    data = {"p1": coords[:, 0], "p2": coords[:, 1], "p3": coords[:, 2]}
    db = Database.in_memory(buffer_pages=None)
    grid = LayeredGridIndex.build(db, "viz_grid", data, ["p1", "p2", "p3"])
    kd = KdTreeIndex.build(db, "viz_kd", data, ["p1", "p2", "p3"])
    rng = np.random.default_rng(0)
    levels = [
        DelaunayGraph(coords[rng.choice(len(coords), n, replace=False)])
        for n in (scaled(100), scaled(1000), scaled(4000))
    ]
    dense_center = np.median(coords, axis=0)
    return grid, kd, levels, dense_center


def test_sec5_zoom_session(benchmark, bench_sample):
    """A full zoom-in/zoom-out session over all four producers."""

    def run():
        grid, kd, levels, dense_center = _viz_setup(bench_sample)
        target = scaled(1000)
        points = AdaptivePointCloudProducer(grid, target_points=target)
        boxes = KdBoxProducer(kd, target_boxes=50)
        delaunay = DelaunayEdgeProducer(levels, target_edges=200)
        voronoi = VoronoiCellProducer(levels, target_cells=30)
        screen = RecordingConsumer()
        host = PluginHost(
            [
                {"name": "points", "plugin": points},
                {"name": "boxes", "plugin": boxes},
                {"name": "delaunay", "plugin": delaunay},
                {"name": "voronoi", "plugin": voronoi},
                {
                    "name": "screen",
                    "plugin": screen,
                    "inputs": ["points", "boxes", "delaunay", "voronoi"],
                },
            ]
        )
        host.start()
        camera = host.suggest_initial_camera()
        rows = []
        zoom_path = [1.0, 0.5, 0.25, 0.125, 0.25, 0.5, 1.0]  # in and back out
        for factor in zoom_path:
            # Zoom toward the dense core of the distribution, as a user
            # exploring structure would.
            host.set_camera(camera.zoomed(factor).moved_to(dense_center))
            host.run_until_idle(max_frames=50)
            point_geom = points.get_output()
            box_geom = boxes.get_output()
            edge_geom = delaunay.get_output()
            rows.append(
                [
                    factor,
                    point_geom.num_points,
                    box_geom.num_boxes,
                    edge_geom.num_lines,
                    edge_geom.attributes["level"],
                    points.db_queries,
                ]
            )
        host.shutdown()
        return rows, points.cache.hits, points.db_queries, screen

    rows, cache_hits, db_queries, screen = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        "§5 adaptive zoom session (in and back out)",
        ["zoom", "points_in_view", "kd_boxes", "delaunay_edges", "lod_level", "cum_db_queries"],
        rows,
    )
    print(f"cache hits: {cache_hits}, total DB queries: {db_queries}")
    # LOD: every step keeps a healthy number of points in view.
    assert all(row[1] >= scaled(1000) * 0.5 for row in rows)
    # Deeper zooms never show fewer LOD layers' worth of detail than the
    # widest view did at the same point budget.
    # Zoom-out path replays cached views: the last three steps add no
    # database queries ("the cache reduces time delay to zero").
    assert rows[-1][5] == rows[-4][5] + 1 or rows[-1][5] == rows[-4][5]
    assert cache_hits >= 3


def test_sec5_threaded_vs_sync_handshake(benchmark, bench_sample):
    """Threaded producers deliver identical geometry without blocking."""

    def run():
        grid, _, _, _ = _viz_setup(bench_sample)
        outputs = {}
        for threaded in (False, True):
            producer = AdaptivePointCloudProducer(
                grid, target_points=500, threaded=threaded
            )
            screen = RecordingConsumer()
            host = PluginHost(
                [
                    {"name": "p", "plugin": producer},
                    {"name": "s", "plugin": screen, "inputs": ["p"]},
                ]
            )
            host.start()
            host.set_camera(producer.suggest_initial())
            frames = host.run_until_idle(max_frames=400)
            outputs[threaded] = (screen.frames[-1].points, frames)
            host.shutdown()
        return outputs

    outputs = benchmark.pedantic(run, rounds=1, iterations=1)
    sync_points, _ = outputs[False]
    threaded_points, _ = outputs[True]
    assert np.allclose(np.sort(sync_points, axis=0), np.sort(threaded_points, axis=0))


def test_sec5_camera_move_latency(benchmark, bench_sample):
    """Benchmark the per-camera-move production cost (uncached)."""
    grid, _, _, _ = _viz_setup(bench_sample)
    producer = AdaptivePointCloudProducer(grid, target_points=scaled(1000), cache_size=1)
    host = PluginHost([{"name": "p", "plugin": producer}])
    host.start()
    camera = producer.suggest_initial()
    state = {"flip": False}

    def move():
        state["flip"] = not state["flip"]
        host.set_camera(camera.zoomed(0.5 if state["flip"] else 0.7))
        host.frame()

    benchmark(move)
    host.shutdown()
