"""Process vs thread shard transports: Figure 2 workload at concurrency 32.

The thread-transport :class:`~repro.shard.ScatterGatherExecutor` runs
every shard under one GIL; the :class:`~repro.net.pool.ShardWorkerPool`
gives each kd-subtree shard its own worker *process*, so shard scans
execute with independent interpreters.  This benchmark replays the mixed
SkyServer-style workload through a :class:`~repro.service.QueryService`
at concurrency 32 over 1/2/4/8 shards on both transports, asserts
row-set identity against the unsharded planner everywhere, and emits
``BENCH_parallel.json`` so CI can track the process-vs-thread curve.

The headline ratio -- 8 process shards vs 8 thread shards -- only means
anything with real cores underneath; the gate is enforced at full
``REPRO_BENCH_SCALE`` on machines with >= 4 CPUs and recorded (never
enforced) elsewhere, so laptop and CI smoke runs stay honest but green.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro import (
    KdPartitioner,
    KdTreeIndex,
    QueryPlanner,
    QueryService,
    ScatterGatherExecutor,
    replay_workload,
)
from repro.datasets.sdss import BANDS
from repro.datasets.workload import QueryWorkload

from .conftest import bench_scale, print_table

SHARD_COUNTS = [1, 2, 4, 8]
CONCURRENCY = 32


def _workload_polyhedra(sample) -> list:
    workload = QueryWorkload(sample.magnitudes, seed=2006)
    queries = workload.mixed(18, [0.005, 0.02, 0.1])
    queries.append(workload.figure2_query())
    return [q.polyhedron(list(BANDS)) for q in queries]


def _same_answer(a: dict, b: dict) -> bool:
    """Row-set identity on layout-independent content, aligned on oid.

    ``_row_id`` and ``kd_leaf`` are clustering artifacts -- both change
    with the shard layout -- so identity means: same oids, and the same
    magnitudes for each oid.
    """
    ia, ib = np.argsort(a["oid"]), np.argsort(b["oid"])
    if not np.array_equal(a["oid"][ia], b["oid"][ib]):
        return False
    return all(np.array_equal(a[band][ia], b[band][ib]) for band in BANDS)


def _replay_through_service(engine, polyhedra):
    """Replay at concurrency 32; returns (wall_s, throughput, outcomes)."""
    with QueryService(
        None, engine, workers=CONCURRENCY, queue_depth=max(64, 2 * len(polyhedra))
    ) as service:
        report = replay_workload(service, polyhedra, concurrency=CONCURRENCY)
    assert not report.errors, f"replay errors: {report.errors[:3]}"
    assert report.completed == len(polyhedra)
    return report.wall_time_s, report.throughput_qps, report.outcomes


def test_process_vs_thread_shard_scaling(benchmark, bench_db, bench_sample):
    """1/2/4/8 shards, thread vs process transport, one identical answer."""
    columns = dict(bench_sample.columns())
    columns["oid"] = np.arange(len(bench_sample.magnitudes), dtype=np.int64)
    # The Figure 2 mix is replayed 3x so 32 clients have work to overlap.
    polyhedra = _workload_polyhedra(bench_sample) * 3

    baseline = QueryPlanner(
        KdTreeIndex.build(bench_db, "proc_bench_ref", dict(columns), list(BANDS))
    )
    base_rows = [baseline.execute(poly).rows for poly in polyhedra]

    def run():
        rows = []
        results = {}
        for count in SHARD_COUNTS:
            partitioner = KdPartitioner(count, buffer_pages=None)
            for transport in ("thread", "process"):
                if transport == "thread":
                    engine = ScatterGatherExecutor(
                        partitioner.partition("proc_bench", dict(columns), list(BANDS))
                    )
                else:
                    engine = ScatterGatherExecutor(
                        specs=partitioner.plan(
                            "proc_bench", dict(columns), list(BANDS)
                        ),
                        transport="process",
                    )
                try:
                    wall, qps, outcomes = _replay_through_service(engine, polyhedra)
                    for idx, outcome in enumerate(outcomes):
                        assert _same_answer(outcome.rows, base_rows[idx]), (
                            f"{transport}/{count}: rows diverged on query {idx}"
                        )
                    util = engine.worker_stats()
                    busy = sum(w["busy_s"] for w in util)
                finally:
                    engine.close()
                rows.append([transport, count, wall, qps, busy / max(wall, 1e-9)])
                results[f"{transport}_{count}"] = {
                    "wall_s": wall,
                    "throughput_qps": qps,
                    "busy_s": busy,
                }
        return rows, results

    rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Process vs thread shard transports (concurrency {CONCURRENCY})",
        ["transport", "shards", "wall_s", "qps", "shard_busy/wall"],
        rows,
    )

    cores = os.cpu_count() or 1
    speedup = (
        results["process_8"]["throughput_qps"]
        / max(results["thread_8"]["throughput_qps"], 1e-9)
    )
    payload = {
        "workload": "figure2_mixed_x3",
        "queries": len(polyhedra),
        "rows": len(columns["oid"]),
        "concurrency": CONCURRENCY,
        "cpu_count": cores,
        "bench_scale": bench_scale(),
        "process8_vs_thread8_speedup": speedup,
        "results": results,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out} (process8/thread8 = {speedup:.2f}x on {cores} cores)")

    # The scaling gate needs real cores and the full-size workload; on
    # smaller machines the ratio is recorded in the JSON, not enforced.
    if cores >= 4 and bench_scale() >= 1.0:
        assert speedup >= 2.5, (
            f"8 process shards only {speedup:.2f}x the 8-thread transport "
            f"at concurrency {CONCURRENCY} (need >= 2.5x on {cores} cores)"
        )
