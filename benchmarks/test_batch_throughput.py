"""Shared-work batching under concurrent Figure 2 traffic.

Replays the mixed Figure 2 workload through the query service at
concurrency 8 and 32, batched (micro-batches of up to 16 queries per
worker pull) against unbatched solo execution, over a deliberately small
buffer pool with the decoded-page cache off -- so every page fetch is a
real decode and the shared-work savings show up as hard I/O counters,
not just wall clock.  The result cache is disabled and every query is
unique: the numbers isolate what *batch formation* saves, with nothing
peeled off by result reuse.

Every replayed answer is compared row for row against a serial reference
run -- batching may only change how much work the answers cost, never
the answers.  Emits ``BENCH_batch.json`` next to the repo root.  The
acceptance gates at the bottom (full scale only): at concurrency 32 the
batched service must reach >= 1.5x the unbatched throughput and decode
>= 30% fewer pages.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import Database, KdTreeIndex, QueryPlanner, QueryService, sdss_color_sample
from repro.datasets.sdss import BANDS
from repro.datasets.workload import QueryWorkload
from repro.service.replay import replay_workload, rows_equal, run_serial

from .conftest import bench_scale, print_table, scaled

#: Pool holds about a third of the table: concurrent queries keep
#: missing into storage, which is exactly where shared decoding pays.
def _pool_pages(num_rows: int, rows_per_page: int = 128) -> int:
    return max(8, (num_rows // rows_per_page) // 3)


#: The 0.3 tail pushes some members onto the scan path, so batches mix
#: kd-tree and scan groups the way live traffic would.
SELECTIVITIES = [0.005, 0.02, 0.1, 0.3]

NUM_QUERIES = 96
WORKERS = 8
BATCH_SIZE = 16
BATCH_DELAY_S = 0.002
CONCURRENCIES = (8, 32)

MODES: dict[str, dict] = {
    "unbatched": dict(batch_size=1, batch_delay_s=0.0),
    "batched": dict(batch_size=BATCH_SIZE, batch_delay_s=BATCH_DELAY_S),
}


def _workload_polyhedra(sample) -> list:
    workload = QueryWorkload(sample.magnitudes, seed=2006)
    queries = workload.mixed(NUM_QUERIES - 1, SELECTIVITIES)
    queries.append(workload.figure2_query())
    return [q.polyhedron(list(BANDS)) for q in queries]


def _build_engine(columns: dict, pool_pages: int) -> tuple[Database, QueryPlanner]:
    # Decoded-page cache off: every buffer-pool miss is a full
    # read-verify-decode, so ``checksum_verifications`` counts exactly
    # the decodes each mode paid.
    db = Database.in_memory(buffer_pages=pool_pages, decoded_cache_bytes=0)
    index = KdTreeIndex.build(db, "batch_bench", dict(columns), list(BANDS))
    return db, QueryPlanner(index, seed=3)


def _replay_mode(
    columns: dict,
    polyhedra: list,
    pool_pages: int,
    concurrency: int,
    mode: dict,
    reference: list[dict],
) -> dict:
    db, planner = _build_engine(columns, pool_pages)
    db.cold_cache()
    db.reset_io_stats()
    service = QueryService(
        db,
        planner,
        workers=WORKERS,
        queue_depth=max(64, concurrency * 2),
        cache_entries=0,  # isolate batching from result reuse
        **mode,
    )
    with service:
        report = replay_workload(service, polyhedra, concurrency=concurrency)
    assert not report.errors, report.errors[:3]
    # Byte-identical per-query results, batched or not.
    for idx, ref_rows in enumerate(reference):
        assert rows_equal(ref_rows, report.rows(idx)), f"query {idx} diverged"
    io = db.io_stats.as_dict()
    summary = service.metrics.summary()
    return {
        "wall_s": report.wall_time_s,
        "throughput_qps": report.throughput_qps,
        "pages_decoded": io["checksum_verifications"],
        "pages_read": io["page_reads"],
        "batches": int(summary["batches"]),
        "mean_batch_occupancy": summary["mean_batch_occupancy"],
        "shared_decode_hits": int(summary["shared_decode_hits"]),
    }


def test_batched_vs_unbatched_throughput(benchmark):
    sample = sdss_color_sample(scaled(24_000), seed=5)
    columns = dict(sample.columns())
    columns["oid"] = np.arange(len(sample.magnitudes), dtype=np.int64)
    polyhedra = _workload_polyhedra(sample)
    pool_pages = _pool_pages(len(sample.magnitudes))

    ref_db, ref_planner = _build_engine(columns, pool_pages)
    reference = run_serial(ref_planner, polyhedra)

    def run_all() -> dict[str, dict]:
        results: dict[str, dict] = {}
        for concurrency in CONCURRENCIES:
            for name, mode in MODES.items():
                results[f"{name}@{concurrency}"] = _replay_mode(
                    columns, polyhedra, pool_pages, concurrency, mode, reference
                )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            key,
            r["throughput_qps"],
            r["wall_s"],
            r["pages_decoded"],
            r["batches"],
            r["mean_batch_occupancy"],
            r["shared_decode_hits"],
        ]
        for key, r in results.items()
    ]
    print_table(
        f"Figure 2 replay, {len(polyhedra)} queries, {pool_pages}-page pool",
        [
            "mode",
            "qps",
            "wall_s",
            "decoded",
            "batches",
            "occupancy",
            "shared_hits",
        ],
        rows,
    )

    solo32 = results["unbatched@32"]
    batch32 = results["batched@32"]
    speedup = batch32["throughput_qps"] / max(solo32["throughput_qps"], 1e-9)
    decode_cut = 1.0 - batch32["pages_decoded"] / max(solo32["pages_decoded"], 1)
    out = Path(__file__).resolve().parent.parent / "BENCH_batch.json"
    out.write_text(
        json.dumps(
            {
                "workload": "figure2_mixed",
                "queries": len(polyhedra),
                "rows": len(columns["oid"]),
                "pool_pages": pool_pages,
                "workers": WORKERS,
                "batch_size": BATCH_SIZE,
                "batch_delay_s": BATCH_DELAY_S,
                "results": results,
                "batched_speedup_at_32": speedup,
                "batched_decode_reduction_at_32": decode_cut,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {out}")

    # Batching demonstrably formed real batches and shared real work...
    assert batch32["batches"] > 0
    assert batch32["mean_batch_occupancy"] > 1.0
    assert batch32["shared_decode_hits"] > 0
    # ...and clears the acceptance bars at full scale.  Scaled-down
    # smoke runs (REPRO_BENCH_SCALE < 1) only report: on tiny tables the
    # fixed per-query service overhead dominates and the ratios say
    # nothing about shared-work execution.
    if bench_scale() >= 1.0:
        assert speedup >= 1.5, f"batched speedup {speedup:.2f}x < 1.5x"
        assert decode_cut >= 0.30, f"decode reduction {decode_cut:.1%} < 30%"
