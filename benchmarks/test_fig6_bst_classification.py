"""E7 / Figure 6 + §4: Basin Spanning Tree clustering.

Paper: "We used the volumes of Voronoi cells to find density peaks ...
and connected each cell to one neighbor, the one with the largest
density ... Comparing with the real classification for a subset where
this information is available, we found that these clusters contain
objects with the same spectral type (for 100K objects with a priori
spectral classes 92% of objects were classified correctly)."

Clustering runs in the whitened color space (class structure lives in
colors; overall brightness is a nuisance axis -- Figure 1 plots colors
for the same reason).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro import (
    DelaunayGraph,
    Whitener,
    basin_spanning_tree,
    cluster_class_agreement,
    clusters_from_parents,
    density_from_volumes,
    merge_small_clusters,
    sdss_color_sample,
    voronoi_volume_estimates,
)
from repro.datasets.sdss import CLASS_OUTLIER

from .conftest import print_table, scaled


def _run_bst(sample, num_seeds, seed=0):
    colors = Whitener(mode="std").fit_transform(sample.colors())
    rng = np.random.default_rng(seed)
    seeds_idx = rng.choice(len(colors), num_seeds, replace=False)
    graph = DelaunayGraph(colors[seeds_idx])
    volumes = voronoi_volume_estimates(graph)
    _, assign = cKDTree(colors[seeds_idx]).query(colors)
    counts = np.bincount(assign, minlength=num_seeds)
    densities = density_from_volumes(volumes, counts)
    parents = basin_spanning_tree(densities, graph.neighbors)
    labels = clusters_from_parents(parents)
    labels = merge_small_clusters(labels, densities, graph.neighbors, min_size=3)
    point_clusters = labels[assign]
    keep = sample.labels != CLASS_OUTLIER
    agreement = cluster_class_agreement(point_clusters[keep], sample.labels[keep])
    num_peaks = len(np.unique(labels))
    return agreement, num_peaks


def test_fig6_bst_agreement(benchmark):
    """Agreement with spectral classes at the paper's regime."""

    def run():
        sample = sdss_color_sample(scaled(30_000), seed=23)
        rows = []
        for num_seeds in (scaled(400), scaled(800), scaled(1500)):
            agreement, peaks = _run_bst(sample, num_seeds)
            rows.append([scaled(30_000), num_seeds, peaks, agreement])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Figure 6: BST cluster / spectral-class agreement (paper: 92%)",
        ["points", "voronoi_cells", "density_peaks", "agreement"],
        rows,
    )
    best = max(row[3] for row in rows)
    assert best > 0.85  # the paper's ~92% regime
    # Agreement improves (or holds) with tessellation resolution.
    assert rows[-1][3] >= rows[0][3] - 0.02


def test_fig6_bst_benchmark(benchmark):
    """Benchmark the full BST pipeline at a fixed size."""
    sample = sdss_color_sample(scaled(15_000), seed=29)
    result = benchmark.pedantic(
        lambda: _run_bst(sample, scaled(600)), rounds=2, iterations=1
    )
    assert result[0] > 0.7
