"""E10 / §3.5: vector data type scan overhead.

Paper: "UDTs require a custom serializer ... BinaryFormatter, which is
much slower than native serialization ... we decided to use the simple
binary data type and several unsafe C# functions ... The usage of unsafe
code outperforms the UDTs in native serialization mode and it only slows
down table scan queries by 20% compared to queries using only native SQL
data types."

We scan the same vectors stored three ways -- native scalar columns, a
binary column decoded by the zero-copy codec, and a pickle-backed UDT
column -- and report scan time ratios.
"""

from __future__ import annotations

import time

import numpy as np

from repro import Database, NativeBinaryCodec, UdtPickleCodec, VectorColumn

from .conftest import print_table, scaled


def _setup():
    rng = np.random.default_rng(42)
    vectors = rng.normal(size=(scaled(40_000), 5))
    db = Database.in_memory(buffer_pages=None)
    scalar = db.create_table(
        "scalar35", {f"c{i}": vectors[:, i] for i in range(5)}
    )
    native = NativeBinaryCodec(5)
    udt = UdtPickleCodec(5)
    native_table = db.create_table("native35", {"v": native.encode_rows(vectors)})
    udt_table = db.create_table("udt35", {"v": udt.encode_rows(vectors)})
    return vectors, scalar, VectorColumn(native_table, "v", native), VectorColumn(
        udt_table, "v", udt
    )


def _scan_scalar(table):
    total = 0.0
    for page in table.scan():
        for i in range(5):
            total += float(page.columns[f"c{i}"].sum())
    return total


def _scan_vector(column):
    total = 0.0
    for _, vectors in column.scan():
        total += float(vectors.sum())
    return total


def test_sec35_scan_overhead(benchmark):
    """The §3.5 table: relative scan cost of the three storage forms."""

    def run():
        vectors, scalar, native_col, udt_col = _setup()
        expected = float(vectors.sum())

        def timed(fn, arg):
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                value = fn(arg)
                best = min(best, time.perf_counter() - start)
            assert np.isclose(value, expected, rtol=1e-9)
            return best

        t_scalar = timed(_scan_scalar, scalar)
        t_native = timed(_scan_vector, native_col)
        t_udt = timed(_scan_vector, udt_col)
        return [
            ["native scalar columns", t_scalar * 1000, 1.0],
            ["binary + unsafe copy", t_native * 1000, t_native / t_scalar],
            ["UDT (BinaryFormatter)", t_udt * 1000, t_udt / t_scalar],
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "§3.5 vector storage: full-scan cost",
        ["storage", "scan_ms", "relative"],
        rows,
    )
    native_ratio = rows[1][2]
    udt_ratio = rows[2][2]
    # Paper: binary ~1.2x native scalars; UDT much slower than binary.
    assert native_ratio < 2.5
    assert udt_ratio > 3 * native_ratio


def test_sec35_native_decode_benchmark(benchmark):
    """Benchmark the zero-copy decode path alone."""
    rng = np.random.default_rng(1)
    codec = NativeBinaryCodec(5)
    raw = codec.encode_rows(rng.normal(size=(scaled(40_000), 5)))
    out = benchmark(lambda: codec.decode_rows(raw))
    assert out.shape[1] == 5


def test_sec35_udt_decode_benchmark(benchmark):
    """Benchmark the pickle (UDT) decode path alone."""
    rng = np.random.default_rng(1)
    codec = UdtPickleCodec(5)
    raw = codec.encode_rows(rng.normal(size=(scaled(8_000), 5)))
    out = benchmark(lambda: codec.decode_rows(raw))
    assert out.shape[1] == 5
