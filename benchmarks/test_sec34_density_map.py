"""E13 / §3.4 future work: the Voronoi density map.

Paper: "The obvious application of the Voronoi tessellation of the full
270M magnitude table is to use the inverse of the Voronoi cells' volume
as a density estimator.  This would give us a highly detailed,
parameter-free density map of the entire magnitude space."

Ground truth needs an evaluable pdf, so this experiment runs on the
Gaussian-mixture field: seed-cell densities (points per cell / estimated
cell volume) are compared against the true mixture density at the seeds.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree
from scipy.stats import spearmanr

from repro import (
    DelaunayGraph,
    GaussianMixtureField,
    density_from_volumes,
    voronoi_volume_estimates,
)
from repro.tessellation import VoronoiCells

from .conftest import print_table, scaled


def test_sec34_density_map_quality(benchmark):
    """Rank correlation of the Voronoi estimate with the true density."""

    def run():
        rows = []
        for dim in (2, 3):
            field = GaussianMixtureField.default(dim=dim, num_components=4, seed=dim)
            points, _ = field.sample(scaled(40_000), seed=1)
            rng = np.random.default_rng(2)
            num_seeds = scaled(800)
            seeds = points[rng.choice(len(points), num_seeds, replace=False)]
            graph = DelaunayGraph(seeds)
            volumes = voronoi_volume_estimates(graph)
            _, assign = cKDTree(seeds).query(points)
            counts = np.bincount(assign, minlength=num_seeds)
            estimated = density_from_volumes(volumes, counts)
            truth = field.pdf(seeds)
            interior = VoronoiCells(graph).bounded_mask()
            corr = spearmanr(estimated[interior], truth[interior]).statistic
            contrast = float(
                np.quantile(estimated[interior], 0.99)
                / max(np.quantile(estimated[interior], 0.01), 1e-12)
            )
            rows.append([dim, num_seeds, float(corr), contrast])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "§3.4 density map: inverse cell volume vs true density",
        ["dim", "cells", "spearman_corr", "density_contrast_99/1"],
        rows,
    )
    for row in rows:
        # Parameter-free, but strongly rank-faithful.
        assert row[2] > 0.85
        # And it resolves orders-of-magnitude density contrast.
        assert row[3] > 100.0


def test_sec34_density_outlier_detection(benchmark):
    """Low-density cells flag outliers (the §3.4 cluster/outlier claim)."""

    def run():
        field = GaussianMixtureField.default(dim=3, num_components=3, seed=9)
        inliers, _ = field.sample(scaled(20_000), seed=3)
        rng = np.random.default_rng(4)
        lo, hi = inliers.min(axis=0) - 2, inliers.max(axis=0) + 2
        outliers = rng.uniform(lo, hi, size=(scaled(200), 3))
        points = np.vstack([inliers, outliers])
        is_outlier = np.zeros(len(points), dtype=bool)
        is_outlier[len(inliers):] = True

        num_seeds = scaled(600)
        seeds_idx = rng.choice(len(points), num_seeds, replace=False)
        graph = DelaunayGraph(points[seeds_idx])
        volumes = voronoi_volume_estimates(graph)
        _, assign = cKDTree(points[seeds_idx]).query(points)
        counts = np.bincount(assign, minlength=num_seeds)
        densities = density_from_volumes(volumes, counts)
        point_density = densities[assign]
        # Flag the lowest-density percentile band as outliers.
        threshold = np.quantile(point_density, (is_outlier.mean()) * 2.0)
        flagged = point_density <= threshold
        recall = float(flagged[is_outlier].mean())
        precision = float(is_outlier[flagged].mean()) if flagged.any() else 0.0
        return recall, precision, float(is_outlier.mean())

    recall, precision, base_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    lift = precision / base_rate
    print(
        f"\n§3.4 density outlier detection: recall={recall:.2f} "
        f"precision={precision:.2f} (base rate {base_rate:.3f}, lift {lift:.0f}x)"
    )
    # Low-density cells concentrate outliers far above the base rate.
    assert recall > 0.4
    assert lift > 10.0
