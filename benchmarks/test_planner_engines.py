"""Engine x workload-class grid: kd-tree vs bitmap vs scan vs hybrid.

Replays three classes of Figure 2 traffic through each access path --
forced, so every engine answers every query -- and through the
cost-based planner in ``auto`` mode:

* ``needle_few_dim`` -- high-selectivity membership probes: an IN list
  of ~50 magnitudes drawn from a narrow window of a single band, with
  no box constraint at all.  The kd-tree and the zone maps are blind
  here (both prune on box geometry, and an IN list carries none), and
  the per-column bitmaps are strongest; this is the class the bitmap
  engine exists for.
* ``mid_box_5d`` -- the classic Figure 2 mixed box workload at ~5%
  selectivity, all five dimensions active.
* ``broad_box_5d`` -- wide boxes (~40% selectivity) where nothing beats
  the sequential scan.

Every engine must return the identical oid set for every query; the
grid then records pages decoded per engine per class.  Emits
``BENCH_planner.json`` next to the repo root.  Acceptance (full scale
only): on the needle class the bitmap engine decodes >= 5x fewer pages
than the kd-tree, and ``auto`` picks the bitmap family (bitmap or
hybrid) for the majority of needle queries.

Forced A/B runs of the same contrast from the shell:
``python -m repro replay --engine {auto,kd,bitmap,scan,hybrid}``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import Database, KdTreeIndex, QueryPlanner, sdss_color_sample
from repro.bitmap import BitmapIndex
from repro.datasets.sdss import BANDS
from repro.datasets.workload import QueryWorkload
from repro.geometry.halfspace import Halfspace, Polyhedron

from .conftest import bench_scale, print_table, scaled

ENGINES = ("kd", "scan", "bitmap", "hybrid", "auto")
NUM_NEEDLES = 8
NUM_BOXES = 8


def _slab(dims: list[str], windows: dict[str, tuple[float, float]]) -> Polyhedron:
    halfspaces = []
    for axis, dim in enumerate(dims):
        if dim not in windows:
            continue
        low, high = windows[dim]
        e = np.zeros(len(dims))
        e[axis] = 1.0
        halfspaces.append(Halfspace(e, float(high)))
        halfspaces.append(Halfspace(-e, -float(low)))
    return Polyhedron(halfspaces)


def _trivial_polyhedron(dim: int) -> Polyhedron:
    e = np.zeros(dim)
    e[0] = 1.0
    return Polyhedron([Halfspace(e, np.inf)])


def _needle_queries(
    columns: dict, rng: np.random.Generator
) -> list[tuple[Polyhedron, dict | None]]:
    """Membership probes: ~50 values from a 1% window of one band."""
    dims = list(BANDS)
    trivial = _trivial_polyhedron(len(dims))
    queries = []
    for i in range(NUM_NEEDLES):
        band = dims[i % len(dims)]
        values = np.asarray(columns[band])
        q0 = rng.uniform(0.05, 0.9)
        low = float(np.quantile(values, q0))
        high = float(np.quantile(values, q0 + 0.01))
        pool = values[(values >= low) & (values <= high)]
        picks = rng.choice(pool, size=min(50, len(pool)), replace=False)
        queries.append((trivial, {band: picks}))
    return queries


def _grid_cell(planner: QueryPlanner, queries: list) -> dict:
    pages = 0
    rows = 0
    paths: dict[str, int] = {}
    oid_sets = []
    started = time.perf_counter()
    for poly, memberships in queries:
        planned = planner.execute(poly, memberships=memberships)
        pages += planned.stats.pages_touched
        rows += planned.stats.rows_returned
        paths[planned.chosen_path] = paths.get(planned.chosen_path, 0) + 1
        oid_sets.append(frozenset(planned.rows["oid"].tolist()))
    return {
        "pages_decoded": pages,
        "rows_returned": rows,
        "wall_s": time.perf_counter() - started,
        "paths": paths,
        "_oid_sets": oid_sets,
    }


def test_engine_workload_grid(benchmark):
    sample = sdss_color_sample(scaled(32_000), seed=6)
    columns = dict(sample.columns())
    columns["oid"] = np.arange(len(sample.magnitudes), dtype=np.int64)
    rng = np.random.default_rng(7)

    db = Database.in_memory(buffer_pages=None)
    index = KdTreeIndex.build(db, "grid_mag", dict(columns), list(BANDS))
    BitmapIndex.build(db, "grid_mag", list(BANDS), num_bins=128)

    workload = QueryWorkload(sample.magnitudes, seed=8)
    classes = {
        "needle_few_dim": _needle_queries(columns, rng),
        "mid_box_5d": [
            (q.polyhedron(list(BANDS)), None)
            for q in workload.mixed(NUM_BOXES, selectivities=[0.02, 0.05])
        ],
        "broad_box_5d": [
            (q.polyhedron(list(BANDS)), None)
            for q in workload.mixed(NUM_BOXES, selectivities=[0.4])
        ],
    }

    def run_grid() -> dict:
        grid: dict[str, dict[str, dict]] = {}
        for class_name, queries in classes.items():
            grid[class_name] = {}
            for engine in ENGINES:
                planner = QueryPlanner(index, seed=9, engine=engine)
                grid[class_name][engine] = _grid_cell(planner, queries)
        return grid

    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    # Identical answers across every engine, per class per query.
    for class_name, cells in grid.items():
        reference = cells["scan"]["_oid_sets"]
        for engine, cell in cells.items():
            assert cell["_oid_sets"] == reference, (
                f"{engine} diverged from scan on {class_name}"
            )
        for cell in cells.values():
            del cell["_oid_sets"]

    print_table(
        f"pages decoded by engine x class ({scaled(32_000)} rows)",
        ["class"] + list(ENGINES),
        [
            [class_name] + [cells[e]["pages_decoded"] for e in ENGINES]
            for class_name, cells in grid.items()
        ],
    )

    needle = grid["needle_few_dim"]
    ratio = needle["kd"]["pages_decoded"] / max(
        needle["bitmap"]["pages_decoded"], 1
    )
    auto_paths = needle["auto"]["paths"]
    bitmap_family = auto_paths.get("bitmap", 0) + auto_paths.get("hybrid", 0)

    out = Path(__file__).resolve().parent.parent / "BENCH_planner.json"
    out.write_text(
        json.dumps(
            {
                "workload": "figure2_mixed_plus_membership_needles",
                "rows": len(columns["oid"]),
                "num_bins": 128,
                "engines": list(ENGINES),
                "grid": grid,
                "needle_kd_over_bitmap_pages": ratio,
                "needle_auto_paths": auto_paths,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {out}")
    print(
        f"needle class: kd decoded {ratio:.1f}x the bitmap's pages; "
        f"auto chose bitmap/hybrid on {bitmap_family}/{NUM_NEEDLES}"
    )

    # The grid ran every engine over every class with identical answers;
    # the acceptance bars below gate only at full scale (tiny scaled-down
    # tables have too few pages for the ratios to mean anything).
    if bench_scale() >= 1.0:
        assert ratio >= 5.0, (
            f"bitmap should decode >=5x fewer pages than kd on the "
            f"needle class, got {ratio:.2f}x"
        )
        assert bitmap_family > NUM_NEEDLES // 2, (
            f"auto should pick the bitmap family on most needle queries, "
            f"got {auto_paths}"
        )
        broad = grid["broad_box_5d"]
        assert (
            broad["auto"]["pages_decoded"]
            <= broad["kd"]["pages_decoded"] * 1.05
        ), "auto must not lose to a forced kd on broad boxes"
