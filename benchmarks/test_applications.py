"""Benchmarks of the application layer built on the indexes.

* Query planner: how often the §3.2 crossover rule (estimate
  selectivity, pick index below 0.25) picks the cheaper path.
* Outlier detection: kd-leaf density (the paper's ref [8] route) vs
  Voronoi cell density (§3.4's route) on labeled synthetic outliers.
* Spectrum archive: end-to-end similarity latency -- feature k-NN plus
  the fetch of the matching 3000-sample vectors.
"""

from __future__ import annotations

import numpy as np

from repro import (
    Database,
    KdTreeIndex,
    KdTreeOutlierDetector,
    QueryPlanner,
    QueryWorkload,
    SpectrumArchive,
    SpectrumTemplates,
    VoronoiOutlierDetector,
    polyhedron_full_scan,
    sdss_color_sample,
)
from repro.datasets.sdss import BANDS, CLASS_OUTLIER

from .conftest import print_table, scaled


def test_app_planner_accuracy(benchmark, bench_kd, bench_sample):
    """Planner choices vs the genuinely cheaper path, per selectivity."""

    import time

    def timed(fn):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def run():
        planner = QueryPlanner(bench_kd, seed=0)
        workload = QueryWorkload(bench_sample.magnitudes, seed=8)
        rows = []
        for target in (0.002, 0.02, 0.15, 0.5, 0.85):
            correct = 0
            trials = 4
            for _ in range(trials):
                poly = workload.box_query(target).polyhedron(list(BANDS))
                planned = planner.execute(poly)
                # The crossover rule is about execution *time* (a page
                # subset can still cost more CPU per row); judge against
                # measured time with slack for the near-tie zone.
                t_kd = timed(lambda: bench_kd.query_polyhedron(poly))
                t_scan = timed(
                    lambda: polyhedron_full_scan(bench_kd.table, list(BANDS), poly)
                )
                costs = {"kdtree": t_kd, "scan": t_scan}
                cheaper = min(costs, key=costs.get)
                if (
                    planned.chosen_path == cheaper
                    or costs[planned.chosen_path] <= 1.4 * costs[cheaper]
                ):
                    correct += 1
            rows.append([target, f"{correct}/{trials}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Application: planner choice vs measured-cheaper path",
        ["target_sel", "correct"],
        rows,
    )
    # The rule gets the easy extremes right.
    assert int(rows[0][1][0]) >= 3
    assert int(rows[-1][1][0]) >= 3


def test_app_outlier_detectors(benchmark):
    """kd vs Voronoi outlier detection on labeled synthetic outliers."""

    def run():
        sample = sdss_color_sample(scaled(30_000), seed=13)
        colors = sample.colors()
        truth = sample.labels == CLASS_OUTLIER
        rows = []
        detectors = {
            "kd-tree leaf density": KdTreeOutlierDetector(colors),
            "voronoi cell density": VoronoiOutlierDetector(
                colors, num_seeds=scaled(800)
            ),
        }
        for name, detector in detectors.items():
            flags = detector.flag(0.05)
            recall = float(flags[truth].mean())
            precision = float(truth[flags].mean())
            rows.append(
                [name, recall, precision, precision / truth.mean()]
            )
        return rows, float(truth.mean())

    rows, base_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Application: outlier detectors (5% flag rate, base rate {base_rate:.1%})",
        ["detector", "recall", "precision", "lift"],
        rows,
    )
    for row in rows:
        assert row[3] > 3.0  # both clearly beat chance
    # The paper pursued Voronoi density for a reason: irregular cells
    # track the distribution better than balanced axis-aligned leaves.
    voronoi_row = next(r for r in rows if "voronoi" in r[0])
    kd_row = next(r for r in rows if "kd" in r[0])
    assert voronoi_row[1] >= kd_row[1]


def test_app_spectrum_archive_similarity(benchmark):
    """Benchmark one end-to-end similarity query over the archive."""
    rng = np.random.default_rng(17)
    templates = SpectrumTemplates()
    spectra = []
    for _ in range(scaled(300)):
        z = rng.uniform(0.0, 0.25)
        kind = rng.integers(3)
        if kind == 0:
            spectra.append(templates.observe(templates.elliptical(z), 40, rng))
        elif kind == 1:
            spectra.append(templates.observe(templates.quasar(z), 40, rng))
        else:
            spectra.append(templates.observe(templates.starburst(z), 40, rng))
    spectra = np.array(spectra)
    db = Database.in_memory(buffer_pages=None)
    archive = SpectrumArchive.build(db, "bench_arch", spectra)
    query = spectra[0]
    matches = benchmark(lambda: archive.similar(query, k=2))
    assert len(matches) == 2
